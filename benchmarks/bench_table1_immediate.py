"""Experiment T1-R1-IR-ind / T1-R2-IR-ind: immediate relevance (Table 1, IR column).

Immediate relevance is DP-complete in combined complexity for both CQs and
PQs, and AC0 (here: polynomial, and empirically flat) in data complexity.
The benchmark times the IR procedure on growing query sizes (combined
complexity shape) for conjunctive and positive queries over independent
accesses.
"""

from __future__ import annotations

import pytest

from repro import Access, Configuration, is_immediately_relevant
from repro.workloads import random_cq, random_pq, random_schema, random_instance, random_configuration


def _setup(query_size: int, positive: bool, seed: int = 1):
    schema = random_schema(
        relations=4, max_arity=2, dependent_ratio=0.0, seed=seed
    )
    instance = random_instance(schema, tuples_per_relation=5, seed=seed)
    configuration = random_configuration(instance, fraction=0.4, seed=seed)
    if positive:
        query = random_pq(schema, disjuncts=2, atoms_per_disjunct=max(1, query_size // 2), seed=seed)
    else:
        query = random_cq(schema, atoms=query_size, variables=query_size, seed=seed)
    method = schema.access_methods[0]
    binding = tuple("d00" for _ in method.input_places)
    access = Access(method, binding)
    return query, access, configuration


@pytest.mark.experiment("T1-IR-ind")
@pytest.mark.parametrize("query_size", [2, 3, 4, 5])
def test_immediate_relevance_cq_scaling(benchmark, query_size):
    query, access, configuration = _setup(query_size, positive=False)
    result = benchmark(
        lambda: is_immediately_relevant(query, access, configuration)
    )
    assert result in (True, False)


@pytest.mark.experiment("T1-IR-ind-PQ")
@pytest.mark.parametrize("query_size", [2, 4])
def test_immediate_relevance_pq_scaling(benchmark, query_size):
    query, access, configuration = _setup(query_size, positive=True)
    result = benchmark(
        lambda: is_immediately_relevant(query, access, configuration)
    )
    assert result in (True, False)
