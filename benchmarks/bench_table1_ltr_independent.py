"""Experiment T1-R1/R2-LTR-ind: long-term relevance, independent accesses
(Table 1, LTR column, rows 1-2: Σ₂ᵖ-complete).

Times the Proposition 4.5 procedure on growing conjunctive and positive
queries, plus the polynomial Proposition 4.3 fast path for single-occurrence
queries (experiment P4.3-single lives in bench_single_occurrence.py).
"""

from __future__ import annotations

import pytest

from repro import Access
from repro.core import is_ltr_independent
from repro.workloads import (
    random_configuration,
    random_cq,
    random_instance,
    random_pq,
    random_schema,
)


def _setup(query_size: int, positive: bool, seed: int = 2):
    schema = random_schema(relations=4, max_arity=2, dependent_ratio=0.0, seed=seed)
    instance = random_instance(schema, tuples_per_relation=4, seed=seed)
    configuration = random_configuration(instance, fraction=0.3, seed=seed)
    if positive:
        query = random_pq(
            schema, disjuncts=2, atoms_per_disjunct=max(1, query_size // 2), seed=seed
        )
    else:
        query = random_cq(schema, atoms=query_size, variables=query_size, seed=seed)
    method = schema.access_methods[0]
    binding = tuple("d00" for _ in method.input_places)
    return query, Access(method, binding), configuration, schema


@pytest.mark.experiment("T1-LTR-ind-CQ")
@pytest.mark.parametrize("query_size", [2, 3, 4])
def test_ltr_independent_cq_scaling(benchmark, query_size):
    query, access, configuration, schema = _setup(query_size, positive=False)
    result = benchmark(
        lambda: is_ltr_independent(query, access, configuration, schema)
    )
    assert result in (True, False)


@pytest.mark.experiment("T1-LTR-ind-PQ")
@pytest.mark.parametrize("query_size", [2, 4])
def test_ltr_independent_pq_scaling(benchmark, query_size):
    query, access, configuration, schema = _setup(query_size, positive=True)
    result = benchmark(
        lambda: is_ltr_independent(query, access, configuration, schema)
    )
    assert result in (True, False)
