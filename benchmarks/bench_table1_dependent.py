"""Experiments T1-R3 / T1-R4: dependent accesses (Table 1, rows 3-4).

For conjunctive queries, long-term relevance is NEXPTIME-complete and
containment coNEXPTIME-complete; for positive queries they jump to
2NEXPTIME / co2NEXPTIME.  The benchmark exercises the dependent-chain
workload (Example 2.1 generalised): the cost grows with the chain length
because witnesses must thread values through longer dependent access chains.

Both the direct witness search and the Proposition 3.5 containment-oracle
procedure are timed, which doubles as the ablation called out in DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.core import (
    decide_containment,
    is_ltr_direct,
    is_ltr_via_containment_cq,
    is_ltr_via_containment_pq,
)
from repro.queries import PositiveQuery
from repro.workloads import dependent_chain_scenario


@pytest.mark.experiment("T1-R3-LTR-dep-CQ")
@pytest.mark.parametrize("length", [2, 3, 4])
def test_ltr_dependent_cq_direct(benchmark, length):
    scenario = dependent_chain_scenario(length)
    result = benchmark(
        lambda: is_ltr_direct(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )
    )
    assert result is True


@pytest.mark.experiment("T1-R3-LTR-dep-CQ-oracle")
@pytest.mark.parametrize("length", [2, 3])
def test_ltr_dependent_cq_via_containment(benchmark, length):
    scenario = dependent_chain_scenario(length)
    result = benchmark(
        lambda: is_ltr_via_containment_cq(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )
    )
    assert result is True


@pytest.mark.experiment("T1-R4-LTR-dep-PQ")
@pytest.mark.parametrize("length", [2, 3])
def test_ltr_dependent_pq(benchmark, length):
    scenario = dependent_chain_scenario(length)
    query = PositiveQuery.from_cq(scenario.query)
    result = benchmark(
        lambda: is_ltr_via_containment_pq(
            query, scenario.access, scenario.configuration, scenario.schema
        )
    )
    assert result is True


@pytest.mark.experiment("T1-R3-CONT-dep")
@pytest.mark.parametrize("length", [2, 3])
def test_containment_dependent_chain(benchmark, length):
    """Containment of the chain query in its last link: holds under access
    limitations (the last link can only be reached through the chain)."""
    from repro.queries import parse_cq

    scenario = dependent_chain_scenario(length)
    last_link = parse_cq(scenario.schema, f"L{length}(x, y)")
    result = benchmark(
        lambda: decide_containment(
            scenario.query, last_link, scenario.schema, scenario.configuration
        )
    )
    assert result is True
