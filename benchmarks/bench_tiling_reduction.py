"""Experiment T5.1-tiling: tiling -> containment lower-bound gadget.

Runs the Proposition 6.2 style reduction (the executable cousin of the
Theorem 5.1 gadget) on the sample corridor tiling problems and checks that
the containment answer matches the brute-force tiling solver: the corridor is
tilable iff the final-row query is NOT contained in the violation query.

The support-fact budget of the containment search is swept as the ablation
called out in DESIGN.md (witnesses for taller tilings need longer support
chains).
"""

from __future__ import annotations

import pytest

from repro.core import ContainmentOptions, decide_containment
from repro.reductions import has_tiling, sample_problems, tiling_to_containment


@pytest.mark.experiment("T5.1-tiling")
@pytest.mark.parametrize("name,problem", sample_problems(2))
def test_tiling_reduction_agrees_with_solver(benchmark, name, problem):
    instance = tiling_to_containment(problem)

    def decide():
        return decide_containment(
            instance.final_row_query,
            instance.violation_query,
            instance.schema,
            instance.configuration,
            ContainmentOptions(max_support_facts=0),
        )

    contained = benchmark(decide)
    assert (not contained) == has_tiling(problem), name


@pytest.mark.experiment("T5.1-tiling-width")
@pytest.mark.parametrize("width", [2, 3])
def test_tiling_reduction_width_scaling(benchmark, width):
    name, problem = sample_problems(width)[0]
    instance = tiling_to_containment(problem)

    def decide():
        return decide_containment(
            instance.final_row_query,
            instance.violation_query,
            instance.schema,
            instance.configuration,
            ContainmentOptions(max_support_facts=0),
        )

    contained = benchmark(decide)
    assert not contained
