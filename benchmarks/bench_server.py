"""Experiment SERVER-multiquery: the query-server runtime.

Measures the three claims of the multi-query answering server:

* **batch sharing** — answering N queries through one :class:`QueryServer`
  performs far fewer accesses (and far less search work) than N independent
  guided runs, with identical answers;
* **process-pool searches** — on a CPU-bound batch (zero source latency,
  fresh-LTR-search dominated), ``search_workers=4`` beats the single-process
  server ≥ 2× with identical answers and access sets.  The speedup assertion
  is enforced only on machines with ≥ 4 CPUs — process workers cannot beat
  the GIL on a single core — but the *equivalence* assertions always run;
* **persistent witness cache** — a warm restart against a populated cache
  file revalidates stored witness paths (nonzero ``witness.revalidated``)
  and runs strictly fewer fresh LTR searches than the cold run, with
  identical answers;
* **multi-process verdict sharing** — 4 concurrent server processes writing
  one SQLite-backed store, then a cold process warm-starting with the same
  fresh-search count as the single-process warm restart.

The guided-strategy benchmarks here are part of the CI regression gate
(``compare_bench.py --gate guided,server``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.planner import relevance_guided_strategy
from repro.runtime import QueryServer, RuntimeMetrics, Tracer
from repro.workloads import bank_multi_query_scenario, multi_query_scenario


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _cpu_scenario():
    """The CPU-bound batch: bank-query variants (fresh searches dominate)."""
    if _smoke():
        return bank_multi_query_scenario(8, employees=5, offices=3, states=4)
    return bank_multi_query_scenario(8, employees=6, offices=3, states=4)


def _run_server(scenario, workers: int):
    mediator = scenario.mediator()
    metrics = RuntimeMetrics()
    with QueryServer(mediator, search_workers=workers, metrics=metrics) as server:
        started = time.perf_counter()
        result = server.answer(scenario.queries)
        wall = time.perf_counter() - started
    accesses = sorted(
        (access.method.name, access.binding) for access, _n in mediator.access_log
    )
    return result, accesses, wall, metrics


@pytest.mark.experiment("SERVER-batch-sharing")
def test_server_guided_batch_vs_individual_runs(benchmark):
    """One server answering the batch vs. N independent guided runs."""
    scenario = multi_query_scenario(8, 6, 2, atoms_per_query=3, seed=3)
    singles = [
        relevance_guided_strategy(scenario.mediator(), query)
        for query in scenario.queries
    ]
    individual_accesses = sum(result.accesses_made for result in singles)

    def run():
        with QueryServer(scenario.mediator()) as server:
            return server.answer(scenario.queries)

    result = benchmark(run)
    assert list(result.boolean_answers) == [
        single.boolean_answer for single in singles
    ]
    assert result.accesses_made < individual_accesses
    benchmark.extra_info.update(
        {
            "batch_accesses": result.accesses_made,
            "individual_accesses": individual_accesses,
        }
    )


@pytest.mark.experiment("SERVER-guided-cpu-bound")
def test_server_guided_cpu_bound_batch(benchmark):
    """The gated headline number: single-process server on the CPU-bound batch."""
    scenario = _cpu_scenario()

    def run():
        result, _accesses, _wall, metrics = _run_server(scenario, 1)
        return result, metrics

    # Three rounds, not one: this benchmark feeds the 25% regression gate
    # through its ``min``, and a single noisy sample on a shared CI runner
    # must not be able to fail the job.
    result, metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    snapshot = metrics.snapshot()
    counters = snapshot["counters"]
    # The batch is genuinely search-bound: every query resolved, fresh
    # searches dominate the profile.
    assert counters.get("oracle.fresh_searches", 0) > 0
    assert result.outcomes[0].boolean_answer  # the motivating combination
    # Histogram-derived latency quantiles: the server records every answer
    # call and round into bounded histograms, so p50/p99 come straight from
    # the metrics surface rather than from post-processing raw samples.
    histograms = snapshot["histograms"]
    rounds = histograms.get("server.round_latency", {})
    benchmark.extra_info.update(
        {
            "fresh_searches": counters.get("oracle.fresh_searches", 0),
            "accesses": result.accesses_made,
            "round_p50_ms": round(rounds.get("p50", 0.0) * 1000, 3),
            "round_p99_ms": round(rounds.get("p99", 0.0) * 1000, 3),
            "query_p99_ms": round(
                histograms.get("server.query_latency", {}).get("p99", 0.0) * 1000, 3
            ),
        }
    )


@pytest.mark.experiment("SERVER-procpool-speedup")
def test_process_pool_speedup_and_equivalence():
    """Acceptance gate: ``search_workers=4`` vs. single-process on the
    CPU-bound batch — identical answers and access sets always; ≥ 2× faster
    on a full-size run with the cores to parallelise on.

    The wall-clock assertion is deliberately *not* enforced in smoke mode:
    the CI smoke job runs on shared runners where a noisy neighbour during
    the ~1 s pooled run could fail the job with no code change.  Smoke runs
    still assert the equivalence properties and that the pool actually ran
    searches; the speedup itself is reported either way.
    """
    scenario = _cpu_scenario()
    single, single_accesses, single_wall, single_metrics = _run_server(scenario, 1)
    pooled, pooled_accesses, pooled_wall, pooled_metrics = _run_server(scenario, 4)

    assert pooled.answers == single.answers
    assert pooled_accesses == single_accesses
    assert pooled_metrics.snapshot()["counters"].get("oracle.pool_searches", 0) > 0
    # The workload is genuinely the CPU-bound regime the gate is about:
    # fresh search time dominates the single-process wall-clock.
    fresh = single_metrics.snapshot()["timers"].get("oracle.long_term", 0.0)
    assert fresh >= 0.5 * single_wall, (
        f"batch not search-bound: {fresh:.3f}s of {single_wall:.3f}s"
    )

    cpus = os.cpu_count() or 1
    speedup = single_wall / pooled_wall
    print(
        f"\nsearch_workers=4 speedup: {speedup:.2f}x "
        f"({single_wall * 1000:.0f}ms -> {pooled_wall * 1000:.0f}ms, {cpus} CPUs)"
    )
    if cpus >= 4 and not _smoke():
        assert speedup >= 2.0, (
            f"4-worker server only {speedup:.2f}x faster "
            f"({single_wall * 1000:.0f}ms -> {pooled_wall * 1000:.0f}ms) "
            f"on {cpus} CPUs"
        )


@pytest.mark.experiment("SERVER-tracing-overhead")
def test_tracing_overhead_guided_batch():
    """Tracing-overhead smoke: a fully traced server run stays within 10%
    of the untraced run on the CPU-bound guided batch.

    Span recording must be cheap relative to real work — the guided batch
    spends its time in relevance searches, so per-span bookkeeping (a few
    dict ops and two clock reads) should disappear into the profile.  Both
    sides take the min of three runs, which is what keeps a noisy shared
    runner from failing the job: the *minima* are stable even when single
    samples are not.  The assertion is skipped in smoke mode (sub-second
    runs on shared runners make a 10% bound meaningless) but the ratio is
    always printed and the traced run must produce a span tree covering
    every layer of the hierarchy.
    """
    scenario = _cpu_scenario()

    def run(tracer):
        mediator = scenario.mediator()
        metrics = RuntimeMetrics()
        with QueryServer(mediator, metrics=metrics, tracer=tracer) as server:
            started = time.perf_counter()
            result = server.answer(scenario.queries)
            wall = time.perf_counter() - started
        return result, wall

    untraced_wall = float("inf")
    traced_wall = float("inf")
    spans = []
    for _ in range(3):
        plain, wall = run(None)
        untraced_wall = min(untraced_wall, wall)
        tracer = Tracer()
        traced, wall = run(tracer)
        traced_wall = min(traced_wall, wall)
        spans = tracer.spans()
        assert traced.answers == plain.answers

    names = {span.name for span in spans}
    assert {"answer", "round", "query", "verdicts", "oracle"} <= names
    assert "access-batch" in names and "source-call" in names

    ratio = traced_wall / untraced_wall
    print(
        f"\ntracing overhead: {ratio:.3f}x "
        f"({untraced_wall * 1000:.0f}ms -> {traced_wall * 1000:.0f}ms, "
        f"{len(spans)} spans)"
    )
    if not _smoke():
        assert ratio <= 1.10, (
            f"traced run {ratio:.3f}x slower than untraced "
            f"({untraced_wall * 1000:.0f}ms -> {traced_wall * 1000:.0f}ms)"
        )


@pytest.mark.experiment("SERVER-warm-restart")
def test_persistent_cache_warm_restart(benchmark, tmp_path):
    """Warm restart: revalidations fire, fresh searches strictly drop."""
    scenario = _cpu_scenario()
    path = os.fspath(tmp_path / "witness.jsonl")

    cold_metrics = RuntimeMetrics()
    with QueryServer(
        scenario.mediator(), cache_path=path, metrics=cold_metrics
    ) as cold_server:
        cold = cold_server.answer(scenario.queries)
    cold_counters = cold_metrics.snapshot()["counters"]
    assert cold_counters.get("persist.recorded", 0) > 0

    def warm_run():
        metrics = RuntimeMetrics()
        with QueryServer(
            scenario.mediator(), cache_path=path, metrics=metrics
        ) as warm_server:
            result = warm_server.answer(scenario.queries)
        return result, metrics

    warm, warm_metrics = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    warm_counters = warm_metrics.snapshot()["counters"]
    assert warm.answers == cold.answers
    assert warm_counters.get("witness.revalidated", 0) > 0
    assert warm_counters.get("oracle.fresh_searches", 0) < cold_counters.get(
        "oracle.fresh_searches", 0
    )
    benchmark.extra_info.update(
        {
            "cold_fresh_searches": cold_counters.get("oracle.fresh_searches", 0),
            "warm_fresh_searches": warm_counters.get("oracle.fresh_searches", 0),
            "warm_revalidated": warm_counters.get("witness.revalidated", 0),
        }
    )


def _mp_worker(path: str, out_path: str) -> None:
    """One server process of the fleet: answer the full CPU-bound batch
    against the shared SQLite-backed store, then report its counters.

    Module-level (not a closure) so the ``spawn`` start method can pickle
    it; each process rebuilds the deterministic scenario itself.
    """
    scenario = _cpu_scenario()
    metrics = RuntimeMetrics()
    with QueryServer(
        scenario.mediator(), cache_path=path, cache_backend="sqlite", metrics=metrics
    ) as server:
        result = server.answer(scenario.queries)
    counters = metrics.snapshot()["counters"]
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "answers": list(result.boolean_answers),
                "fresh_searches": counters.get("oracle.fresh_searches", 0),
                "revalidated": counters.get("witness.revalidated", 0),
                "recorded": counters.get("persist.recorded", 0),
                "sqlite_appends": counters.get("persist.sqlite.appends", 0),
            },
            handle,
        )


def _run_worker_processes(ctx, path, out_paths):
    procs = [
        ctx.Process(target=_mp_worker, args=(path, out))
        for out in out_paths
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=600)
        assert proc.exitcode == 0
    reports = []
    for out in out_paths:
        with open(out, "r", encoding="utf-8") as handle:
            reports.append(json.load(handle))
    return reports


@pytest.mark.experiment("SERVER-sqlite-multiprocess")
def test_sqlite_multiprocess_shared_store_warm_restart(tmp_path):
    """Acceptance gate: 4 concurrent server processes write one SQLite
    store; a cold process then warm-starts with the *same* fresh-search
    count as the single-process warm restart — multi-process sharing loses
    nothing relative to the one-writer contract the JSONL backend has.
    """
    ctx = multiprocessing.get_context("spawn")
    shared = os.fspath(tmp_path / "shared.sqlite")
    reference = os.fspath(tmp_path / "reference.sqlite")

    # Reference: one process populates its own store, a second (cold)
    # process warm-starts against it — the existing single-process bench,
    # run out-of-process so every probe sees identical process state.
    (ref_cold,) = _run_worker_processes(
        ctx, reference, [os.fspath(tmp_path / "ref-cold.json")]
    )
    (ref_warm,) = _run_worker_processes(
        ctx, reference, [os.fspath(tmp_path / "ref-warm.json")]
    )
    assert ref_cold["recorded"] > 0
    assert ref_warm["revalidated"] > 0
    assert ref_warm["fresh_searches"] < ref_cold["fresh_searches"]

    # The fleet: 4 concurrent processes, one shared store.
    fleet = _run_worker_processes(
        ctx,
        shared,
        [os.fspath(tmp_path / f"fleet-{index}.json") for index in range(4)],
    )
    assert all(report["answers"] == ref_cold["answers"] for report in fleet)
    # Every process recorded into the shared store without error; the store
    # deduplicates, so the fleet's effective appends cannot exceed one
    # process's record count.
    assert sum(report["sqlite_appends"] for report in fleet) >= ref_cold["recorded"]

    # A cold process warm-starts against the fleet's store with exactly the
    # reference warm fresh-search count: records landed by four concurrent
    # writers seed as well as records landed by one.
    (probe,) = _run_worker_processes(
        ctx, shared, [os.fspath(tmp_path / "probe.json")]
    )
    assert probe["answers"] == ref_cold["answers"]
    assert probe["revalidated"] > 0
    assert probe["fresh_searches"] == ref_warm["fresh_searches"]
    print(
        f"\nmulti-process warm restart: cold {ref_cold['fresh_searches']} -> "
        f"warm {probe['fresh_searches']} fresh searches "
        f"({probe['revalidated']} revalidations) via 4-writer SQLite store"
    )
