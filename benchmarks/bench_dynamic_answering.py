"""Experiment APP-mediator: exhaustive vs relevance-guided dynamic answering.

This is the application-level experiment motivated by the paper's
introduction: a federated engine answering the loan-officer query over the
bank sources.  The exhaustive strategy (the prior dynamic approach of
Li [18]) retrieves the whole accessible part; the relevance-guided strategy
only performs accesses that are long-term relevant and stops when the query
becomes certain.  Both must agree on the Boolean answer; the guided strategy
should make no more accesses than the exhaustive one.
"""

from __future__ import annotations

import os

import pytest

from repro.planner import exhaustive_strategy, relevance_guided_strategy
from repro.sources import build_bank_scenario


@pytest.fixture(scope="module")
def bank():
    if os.environ.get("REPRO_BENCH_SMOKE"):
        # CI smoke sizing: small enough to finish in seconds while still
        # exercising both strategies end to end.
        return build_bank_scenario(employees=3, offices=2, states=2, known_employees=1)
    return build_bank_scenario(employees=6, offices=3, states=3, known_employees=2)


@pytest.mark.experiment("APP-mediator-exhaustive")
def test_exhaustive_strategy(benchmark, bank):
    result = benchmark(lambda: exhaustive_strategy(bank.mediator(), bank.query))
    assert result.boolean_answer


@pytest.mark.experiment("APP-mediator-guided")
def test_relevance_guided_strategy(benchmark, bank):
    exhaustive = exhaustive_strategy(bank.mediator(), bank.query)

    def guided():
        return relevance_guided_strategy(bank.mediator(), bank.query)

    result = benchmark.pedantic(guided, rounds=1, iterations=1)
    assert result.boolean_answer == exhaustive.boolean_answer
    assert result.accesses_made <= exhaustive.accesses_made
