"""Experiment INC-engine: incremental verdict reuse across workload shapes.

The incremental relevance engine claims that, as a guided run's configuration
grows, most long-term relevance verdicts are *reused* — served by witness
revalidation (O(|path|)) or sound delta inheritance — instead of recomputed
by the direct search.  This module measures that claim across structurally
different workloads (chain, wide fanout, diamond reconvergence, and the bank
mediator), reporting the reuse rate alongside the timing, and checks the
engine's bookkeeping:

* every guided run answers exactly as the exhaustive strategy does;
* witness revalidation fires (nonzero hit count) on every shape;
* reused verdicts are *sound*: a fresh, cache-free oracle agrees with every
  verdict the incremental oracle served (spot-checked per run).
"""

from __future__ import annotations

import os

import pytest

from repro.planner import exhaustive_strategy, relevance_guided_strategy
from repro.runtime import RelevanceOracle, RuntimeMetrics
from repro.sources import build_bank_scenario
from repro.workloads import diamond_scenario, fanout_scenario


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _run_guided(scenario_mediator, query, metrics: RuntimeMetrics, schema):
    oracle = RelevanceOracle(query, schema, metrics=metrics)
    return relevance_guided_strategy(scenario_mediator, query, oracle=oracle)


def _reuse_counts(metrics: RuntimeMetrics) -> dict:
    counters = metrics.snapshot()["counters"]
    reused = (
        counters.get("witness.revalidated", 0)
        + counters.get("oracle.delta_hits", 0)
        + counters.get("oracle.hits", 0)
        + counters.get("oracle.adopted", 0)
    )
    computed = counters.get("oracle.misses", 0)
    return {
        "revalidated": counters.get("witness.revalidated", 0),
        "delta_hits": counters.get("oracle.delta_hits", 0),
        "adopted": counters.get("oracle.adopted", 0),
        "reused": reused,
        "computed": computed,
    }


@pytest.fixture(
    params=[
        ("fanout", 3),
        ("fanout", 6 if not _smoke() else 4),
        ("diamond", 2),
        ("diamond", 3),
    ],
    ids=lambda p: f"{p[0]}-{p[1]}",
)
def shaped(request):
    kind, size = request.param
    if kind == "fanout":
        return fanout_scenario(size)
    return diamond_scenario(size)


@pytest.mark.experiment("INC-engine-shapes")
def test_incremental_reuse_across_shapes(benchmark, shaped):
    metrics = RuntimeMetrics()

    def run():
        metrics.reset()
        return _run_guided(shaped.mediator(), shaped.query, metrics, shaped.schema)

    result = benchmark(run)
    exhaustive = exhaustive_strategy(shaped.mediator(), shaped.query)
    assert result.boolean_answer == exhaustive.boolean_answer
    assert result.accesses_made <= exhaustive.accesses_made
    counts = _reuse_counts(metrics)
    assert counts["revalidated"] > 0, counts
    benchmark.extra_info.update(counts)


@pytest.mark.experiment("INC-engine-bank")
def test_incremental_reuse_on_bank(benchmark):
    if _smoke():
        bank = build_bank_scenario(
            employees=3, offices=2, states=2, known_employees=1
        )
    else:
        bank = build_bank_scenario(
            employees=6, offices=3, states=3, known_employees=2
        )
    exhaustive = exhaustive_strategy(bank.mediator(), bank.query)
    metrics = RuntimeMetrics()

    def run():
        metrics.reset()
        return _run_guided(bank.mediator(), bank.query, metrics, bank.schema)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.boolean_answer == exhaustive.boolean_answer
    assert result.accesses_made <= exhaustive.accesses_made
    counts = _reuse_counts(metrics)
    assert counts["revalidated"] > 0, counts
    benchmark.extra_info.update(counts)


@pytest.mark.experiment("INC-engine-delta")
def test_delta_inheritance_on_irrelevant_growth(benchmark):
    """Audit facts (query-irrelevant relation, unconsumed value domain) must
    let verdicts transfer by the delta test, with no fresh search."""
    scenario = fanout_scenario(3, audit=True)
    schema = scenario.schema
    query = scenario.query
    probe = scenario.access

    def run():
        metrics = RuntimeMetrics()
        oracle = RelevanceOracle(query, schema, metrics=metrics)
        configuration = scenario.configuration.copy()
        first = oracle.long_term_relevant(probe, configuration)
        # An unsafe delta first (a new hub value, consumable as input):
        # served by witness revalidation, and its snapshot re-anchors there.
        configuration.add("Hub", ("start", "m0"))
        assert oracle.long_term_relevant(probe, configuration)
        # Ten query-irrelevant deltas: all inherited by the delta test.
        for index in range(10):
            configuration.add("Audit", ("m0", f"note{index}"))
            assert oracle.long_term_relevant(probe, configuration)
        return first, metrics

    first, metrics = benchmark(run)
    counters = metrics.snapshot()["counters"]
    assert first is True
    assert counters.get("oracle.delta_hits", 0) > 0, counters
    benchmark.extra_info.update(_reuse_counts(metrics))
