"""Experiment INC-engine: incremental verdict reuse across workload shapes.

The incremental relevance engine claims that, as a guided run's configuration
grows, most long-term relevance verdicts are *reused* — served by witness
revalidation (O(|path|)) or sound delta inheritance — instead of recomputed
by the direct search.  This module measures that claim across structurally
different workloads (chain, wide fanout, diamond reconvergence, and the bank
mediator), reporting the reuse rate alongside the timing, and checks the
engine's bookkeeping:

* every guided run answers exactly as the exhaustive strategy does;
* witness revalidation fires (nonzero hit count) on every shape;
* reused verdicts are *sound*: a fresh, cache-free oracle agrees with every
  verdict the incremental oracle served (spot-checked per run).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.planner import exhaustive_strategy, relevance_guided_strategy
from repro.runtime import (
    BreakerBoard,
    QueryServer,
    RelevanceOracle,
    RetryPolicy,
    RuntimeMetrics,
    SharedVerdictStore,
)
from repro.sources import build_bank_scenario
from repro.workloads import (
    diamond_scenario,
    fanout_scenario,
    flaky_scenario,
    wide_fanout_scenario,
)


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _run_guided(scenario_mediator, query, metrics: RuntimeMetrics, schema):
    oracle = RelevanceOracle(query, schema, metrics=metrics)
    return relevance_guided_strategy(scenario_mediator, query, oracle=oracle)


def _reuse_counts(metrics: RuntimeMetrics) -> dict:
    counters = metrics.snapshot()["counters"]
    reused = (
        counters.get("witness.revalidated", 0)
        + counters.get("oracle.delta_hits", 0)
        + counters.get("oracle.hits", 0)
        + counters.get("oracle.adopted", 0)
    )
    computed = counters.get("oracle.misses", 0)
    return {
        "revalidated": counters.get("witness.revalidated", 0),
        "delta_hits": counters.get("oracle.delta_hits", 0),
        "adopted": counters.get("oracle.adopted", 0),
        "reused": reused,
        "computed": computed,
    }


@pytest.fixture(
    params=[
        ("fanout", 3),
        ("fanout", 6 if not _smoke() else 4),
        ("diamond", 2),
        ("diamond", 3),
    ],
    ids=lambda p: f"{p[0]}-{p[1]}",
)
def shaped(request):
    kind, size = request.param
    if kind == "fanout":
        return fanout_scenario(size)
    return diamond_scenario(size)


@pytest.mark.experiment("INC-engine-shapes")
def test_incremental_reuse_across_shapes(benchmark, shaped):
    metrics = RuntimeMetrics()

    def run():
        metrics.reset()
        return _run_guided(shaped.mediator(), shaped.query, metrics, shaped.schema)

    result = benchmark(run)
    exhaustive = exhaustive_strategy(shaped.mediator(), shaped.query)
    assert result.boolean_answer == exhaustive.boolean_answer
    assert result.accesses_made <= exhaustive.accesses_made
    counts = _reuse_counts(metrics)
    assert counts["revalidated"] > 0, counts
    benchmark.extra_info.update(counts)


@pytest.mark.experiment("INC-engine-bank")
def test_incremental_reuse_on_bank(benchmark):
    if _smoke():
        bank = build_bank_scenario(
            employees=3, offices=2, states=2, known_employees=1
        )
    else:
        bank = build_bank_scenario(
            employees=6, offices=3, states=3, known_employees=2
        )
    exhaustive = exhaustive_strategy(bank.mediator(), bank.query)
    metrics = RuntimeMetrics()

    def run():
        metrics.reset()
        return _run_guided(bank.mediator(), bank.query, metrics, bank.schema)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.boolean_answer == exhaustive.boolean_answer
    assert result.accesses_made <= exhaustive.accesses_made
    counts = _reuse_counts(metrics)
    assert counts["revalidated"] > 0, counts
    benchmark.extra_info.update(counts)


@pytest.mark.experiment("INC-certainty-delta")
def test_certainty_delta_guided_bank(benchmark):
    """Acceptance gate for the delta-driven certainty engine: on the guided
    bank run, advancing the per-query fixpoint by each batch's facts must
    cut the total ``is_certain`` evaluation time (the ``oracle.certain``
    timer) at least 3× against the fingerprint-memo baseline
    (``certainty_fixpoint=False`` — LRU hits on repeated fingerprints, a
    from-scratch evaluation at every new one), with identical answers, and
    the delta path must actually fire (``certainty.advanced`` > 0)."""
    if _smoke():
        bank = build_bank_scenario(
            employees=3, offices=2, states=2, known_employees=1
        )
    else:
        bank = build_bank_scenario(
            employees=6, offices=3, states=3, known_employees=2
        )

    def run_guided(certainty_fixpoint: bool):
        metrics = RuntimeMetrics()
        oracle = RelevanceOracle(
            bank.query,
            bank.schema,
            metrics=metrics,
            certainty_fixpoint=certainty_fixpoint,
        )
        result = relevance_guided_strategy(
            bank.mediator(), bank.query, oracle=oracle
        )
        return result, metrics

    baseline_result, baseline_metrics = run_guided(False)
    baseline_certain_s = baseline_metrics.elapsed("oracle.certain")

    result, metrics = benchmark.pedantic(
        lambda: run_guided(True), rounds=1, iterations=1
    )
    assert result.boolean_answer == baseline_result.boolean_answer
    assert result.answers == baseline_result.answers

    counters = metrics.snapshot()["counters"]
    assert counters.get("certainty.advanced", 0) > 0, counters
    delta_certain_s = max(metrics.elapsed("oracle.certain"), 1e-9)
    ratio = baseline_certain_s / delta_certain_s
    assert ratio >= 3.0, (
        f"delta-driven certainty only {ratio:.1f}x faster "
        f"({baseline_certain_s * 1000:.2f}ms -> {delta_certain_s * 1000:.2f}ms)"
    )
    benchmark.extra_info.update(
        {
            "baseline_certain_ms": round(baseline_certain_s * 1000, 3),
            "delta_certain_ms": round(delta_certain_s * 1000, 3),
            "certain_speedup": round(ratio, 1),
            "advanced": counters.get("certainty.advanced", 0),
            "restarted": counters.get("certainty.restarted", 0),
            "exact": counters.get("certainty.exact", 0),
        }
    )


# --------------------------------------------------------------------------- #
# Experiment PAR-latency: the parallel answering runtime under source latency
# --------------------------------------------------------------------------- #
_LATENCY_S = 0.010  # ≥ 10 ms per access round-trip — the deep-Web regime


def _latency_scenario():
    if _smoke():
        return wide_fanout_scenario(6, 3)
    return wide_fanout_scenario(8, 4)


def _run_parallel(scenario, workers: int, latency_s: float = _LATENCY_S):
    mediator = scenario.mediator(latency_s=latency_s)
    started = time.perf_counter()
    result = relevance_guided_strategy(mediator, scenario.query, parallelism=workers)
    wall = time.perf_counter() - started
    accesses = sorted(
        (access.method.name, access.binding) for access, _n in mediator.access_log
    )
    return result, accesses, wall


_sequential_baseline = {}


def _baseline(scenario):
    """One sequential reference run per scenario (latency sleeps are pricey)."""
    if scenario.name not in _sequential_baseline:
        result, accesses, _wall = _run_parallel(scenario, 1)
        _sequential_baseline[scenario.name] = (result, accesses)
    return _sequential_baseline[scenario.name]


@pytest.mark.experiment("PAR-latency-workers")
@pytest.mark.parametrize("workers", [1, 4] if _smoke() else [1, 4, 16])
def test_parallel_latency_fanout(benchmark, workers):
    """Sequential vs. parallel relevance-guided answering with simulated
    source latency: wall-clock per worker count, identical results."""
    scenario = _latency_scenario()
    baseline, baseline_accesses = _baseline(scenario)

    def run():
        return _run_parallel(scenario, workers)

    result, accesses, _wall = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.answers == baseline.answers
    assert accesses == baseline_accesses
    benchmark.extra_info.update(
        {"workers": workers, "accesses": result.accesses_made}
    )


@pytest.mark.experiment("PAR-latency-speedup")
def test_parallel_latency_speedup_at_8_workers():
    """Acceptance gate: at ≥ 10 ms simulated latency, 8 workers beat the
    sequential run ≥ 3× on the fanout bench with identical answers and
    access sets (up to ordering).

    Uses the full-size fanout and 15 ms latency even in smoke mode: the
    sleep-dominated ideal ratio is then ~6×, so a loaded CI runner adding
    tens of milliseconds of compute to both sides cannot drag the measured
    ratio below the 3× gate.
    """
    scenario = wide_fanout_scenario(8, 4)
    latency = 0.015
    sequential, sequential_accesses, sequential_wall = _run_parallel(
        scenario, 1, latency
    )
    parallel, parallel_accesses, parallel_wall = _run_parallel(scenario, 8, latency)
    assert parallel.answers == sequential.answers
    assert parallel_accesses == sequential_accesses
    speedup = sequential_wall / parallel_wall
    assert speedup >= 3.0, (
        f"8-worker run only {speedup:.1f}x faster "
        f"({sequential_wall * 1000:.0f}ms -> {parallel_wall * 1000:.0f}ms)"
    )


@pytest.mark.experiment("PAR-shared-store")
def test_shared_store_amortises_searches_across_runs(benchmark):
    """Repeated guided runs over one (query, schema) pool their LTR history
    and witnesses through a SharedVerdictStore: later runs revalidate
    instead of searching afresh."""
    scenario = fanout_scenario(4, mids=2)
    store = SharedVerdictStore(scenario.query, scenario.schema)
    first = relevance_guided_strategy(scenario.mediator(), scenario.query, store=store)

    def run():
        metrics = RuntimeMetrics()
        oracle = RelevanceOracle(
            scenario.query, scenario.schema, metrics=metrics, store=store
        )
        result = relevance_guided_strategy(
            scenario.mediator(), scenario.query, oracle=oracle
        )
        return result, metrics

    result, metrics = benchmark(run)
    assert result.answers == first.answers
    counts = _reuse_counts(metrics)
    assert counts["revalidated"] + counts["delta_hits"] > 0, counts
    benchmark.extra_info.update(counts)


@pytest.mark.experiment("INC-engine-delta")
def test_delta_inheritance_on_irrelevant_growth(benchmark):
    """Audit facts (query-irrelevant relation, unconsumed value domain) must
    let verdicts transfer by the delta test, with no fresh search."""
    scenario = fanout_scenario(3, audit=True)
    schema = scenario.schema
    query = scenario.query
    probe = scenario.access

    def run():
        metrics = RuntimeMetrics()
        oracle = RelevanceOracle(query, schema, metrics=metrics)
        configuration = scenario.configuration.copy()
        first = oracle.long_term_relevant(probe, configuration)
        # An unsafe delta first (a new hub value, consumable as input):
        # served by witness revalidation, and its snapshot re-anchors there.
        configuration.add("Hub", ("start", "m0"))
        assert oracle.long_term_relevant(probe, configuration)
        # Ten query-irrelevant deltas: all inherited by the delta test.
        for index in range(10):
            configuration.add("Audit", ("m0", f"note{index}"))
            assert oracle.long_term_relevant(probe, configuration)
        return first, metrics

    first, metrics = benchmark(run)
    counters = metrics.snapshot()["counters"]
    assert first is True
    assert counters.get("oracle.delta_hits", 0) > 0, counters
    benchmark.extra_info.update(_reuse_counts(metrics))


@pytest.mark.experiment("INC-retry-overhead")
def test_retry_overhead_fault_free_bank():
    """Resilience-overhead smoke: the fault-free guided bank run with a retry
    policy and breaker board attached stays within 5% of the plain run.

    The fault-free access path through the retry/breaker plumbing is a few
    clock reads and dict lookups per source call; on the CPU-bound bank
    workload (relevance searches dominate) it must disappear into the
    profile.  Both sides take the min of three runs — the minima stay stable
    on noisy shared runners even when single samples do not — and the
    assertion is skipped in smoke mode (sub-second runs make a 5% bound
    meaningless) while the ratio is always printed.  Both runs must answer
    identically with nothing degraded: the policy objects may not change the
    fault-free behavior, only its cost.
    """
    scenario = flaky_scenario("bank", n_queries=4 if _smoke() else 6)

    def run(resilient: bool):
        mediator = scenario.mediator(
            chaos=False,
            retry_policy=RetryPolicy(max_attempts=3) if resilient else None,
            breakers=BreakerBoard(failure_threshold=5) if resilient else None,
        )
        with QueryServer(mediator) as server:
            started = time.perf_counter()
            result = server.answer(list(scenario.queries))
            wall = time.perf_counter() - started
        return result, wall

    plain_wall = float("inf")
    resilient_wall = float("inf")
    for _ in range(3):
        plain, wall = run(False)
        plain_wall = min(plain_wall, wall)
        resilient, wall = run(True)
        resilient_wall = min(resilient_wall, wall)
        assert resilient.answers == plain.answers
        assert resilient.accesses_made == plain.accesses_made
        assert not resilient.degraded

    ratio = resilient_wall / plain_wall
    print(
        f"\nretry overhead (fault-free bank): {ratio:.3f}x "
        f"({plain_wall * 1000:.0f}ms -> {resilient_wall * 1000:.0f}ms)"
    )
    if not _smoke():
        assert ratio <= 1.05, f"resilience overhead {ratio:.3f}x exceeds the 5% budget"
