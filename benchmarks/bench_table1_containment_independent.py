"""Experiment T1-R1/R2-CONT-ind: containment with independent accesses
(Table 1, containment column, rows 1-2: Π₂ᵖ-complete).

With independent (free-guess) accesses, containment under access limitations
coincides with classical containment; the benchmark times the access-aware
procedure against chain-in-edge containment instances of growing size and
checks the expected answers.
"""

from __future__ import annotations

import pytest

from repro import decide_containment
from repro.queries import parse_cq
from repro.workloads import chain_query, chain_schema


def _independent_chain(length: int):
    from repro.schema import SchemaBuilder

    builder = SchemaBuilder()
    builder.domain("D")
    for index in range(1, length + 1):
        relation = builder.relation(f"L{index}", [("src", "D"), ("dst", "D")])
        builder.access(f"accL{index}", relation, inputs=["src"], dependent=False)
    return builder.build()


@pytest.mark.experiment("T1-CONT-ind-positive")
@pytest.mark.parametrize("length", [2, 3, 4])
def test_containment_holds_chain_in_first_link(benchmark, length):
    schema = _independent_chain(length)
    query = chain_query(schema, length)
    link = parse_cq(schema, "L1(x, y)")
    result = benchmark(lambda: decide_containment(query, link, schema))
    assert result is True


@pytest.mark.experiment("T1-CONT-ind-negative")
@pytest.mark.parametrize("length", [2, 3, 4])
def test_containment_fails_first_link_in_chain(benchmark, length):
    schema = _independent_chain(length)
    query = chain_query(schema, length)
    link = parse_cq(schema, "L1(x, y)")
    result = benchmark(lambda: decide_containment(link, query, schema))
    assert result is False
