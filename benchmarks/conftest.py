"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one experiment of EXPERIMENTS.md (a row of
the paper's Table 1, a tractable-case proposition, a reduction, or the
application-level mediator comparison).  Benchmarks both *measure* (via
pytest-benchmark) and *check* the expected qualitative outcome, so a
benchmark run doubles as an end-to-end validation of the procedures on the
workloads it times.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): marks a benchmark as regenerating an experiment"
    )
