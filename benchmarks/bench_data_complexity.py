"""Experiments P4.1-data and P5.7-data: data complexity of IR, LTR, and
containment for a fixed query.

The paper shows that with the query fixed, immediate relevance is AC0 and
long-term relevance / containment are polynomial in the configuration.  The
benchmark fixes a query and sweeps the configuration size; the timings should
grow polynomially (close to linearly on this workload), in contrast to the
combined-complexity benchmarks where the query grows.
"""

from __future__ import annotations

import pytest

from repro import Access, Configuration, is_immediately_relevant
from repro.core import decide_containment, is_ltr_independent
from repro.queries import parse_cq
from repro.workloads import chain_schema


def _configuration(schema, size: int) -> Configuration:
    configuration = Configuration.empty(schema)
    for index in range(size):
        configuration.add("L1", (f"a{index}", f"b{index}"))
        configuration.add("L2", (f"b{index}", f"c{index}"))
    return configuration


def _independent_two_link():
    from repro.schema import SchemaBuilder

    builder = SchemaBuilder()
    builder.domain("D")
    for index in (1, 2):
        relation = builder.relation(f"L{index}", [("src", "D"), ("dst", "D")])
        builder.access(f"accL{index}", relation, inputs=["src"], dependent=False)
    return builder.build()


@pytest.mark.experiment("P4.1-data")
@pytest.mark.parametrize("size", [10, 40, 160])
def test_immediate_relevance_data_complexity(benchmark, size):
    schema = _independent_two_link()
    configuration = _configuration(schema, size)
    query = parse_cq(schema, "L1(x, y), L2(y, 'target')")
    access = Access(schema.access_method("accL2"), ("b0",))
    result = benchmark(lambda: is_immediately_relevant(query, access, configuration))
    assert result is True


@pytest.mark.experiment("P5.7-data-ltr")
@pytest.mark.parametrize("size", [10, 40, 160])
def test_ltr_data_complexity(benchmark, size):
    schema = _independent_two_link()
    configuration = _configuration(schema, size)
    query = parse_cq(schema, "L1(x, y), L2(y, 'target')")
    access = Access(schema.access_method("accL2"), ("b0",))
    result = benchmark(
        lambda: is_ltr_independent(query, access, configuration, schema)
    )
    assert result is True


@pytest.mark.experiment("P5.7-data-containment")
@pytest.mark.parametrize("size", [10, 40])
def test_containment_data_complexity(benchmark, size):
    schema = chain_schema(2)
    configuration = _configuration(schema, size)
    query = parse_cq(schema, "L1(x, y), L2(y, z)")
    link = parse_cq(schema, "L1(x, y)")
    result = benchmark(
        lambda: decide_containment(query, link, schema, configuration)
    )
    assert result is True
