"""Experiment P3.3-P3.4-red: the relevance <-> containment reductions.

Round-trips containment instances through the Proposition 3.3 reduction (to
non-LTR) and LTR instances through the Proposition 3.4 reduction (to
non-containment), timing the reduced problem and checking the answers agree
with the direct procedures.
"""

from __future__ import annotations

import pytest

from repro import Configuration, containment_to_ltr, decide_containment, ltr_to_containment, parse_cq
from repro.core import is_ltr_direct
from repro.workloads import containment_example_scenario, dependent_chain_scenario


@pytest.mark.experiment("P3.3-red")
@pytest.mark.parametrize("direction", ["contained", "not-contained"])
def test_prop33_roundtrip(benchmark, direction):
    schema, configuration, query_r, query_s = containment_example_scenario()
    if direction == "contained":
        query1, query2 = query_r, query_s
    else:
        query1, query2 = query_s, query_r
    expected = decide_containment(query1, query2, schema, configuration)
    instance = containment_to_ltr(query1, query2, configuration, schema)

    def reduced():
        return is_ltr_direct(
            instance.query, instance.access, instance.configuration, instance.schema
        )

    ltr = benchmark(reduced)
    assert ltr == (not expected)


@pytest.mark.experiment("P3.4-red")
@pytest.mark.parametrize("length", [2, 3])
def test_prop34_roundtrip(benchmark, length):
    scenario = dependent_chain_scenario(length)
    expected = is_ltr_direct(
        scenario.query, scenario.access, scenario.configuration, scenario.schema
    )
    instance = ltr_to_containment(
        scenario.query, scenario.access, scenario.configuration, scenario.schema
    )

    def reduced():
        return not decide_containment(
            instance.contained_query,
            instance.containing_query,
            instance.schema,
            instance.configuration,
        )

    non_containment = benchmark(reduced)
    assert non_containment == expected
