"""Compare a pytest-benchmark JSON artifact against a committed baseline.

Usage::

    python benchmarks/compare_bench.py BENCH_baseline.json BENCH_pr.json \
        [--threshold 0.25] [--gate guided,server]

Benchmarks are matched by ``fullname``.  Every matched pair is reported with
its best-time (``min``) ratio — ``min`` is far less noise-sensitive than
``mean`` for a gate.  Pairs whose name contains any *gate* substring
(comma-separated; default ``guided,server`` — the relevance-guided strategy
and the multi-query server, the headline numbers of this repository) are
enforced: a gated benchmark slower than ``baseline * (1 + threshold)`` fails
the comparison with exit status 1.  Ungated regressions and benchmarks
present on only one side are reported but do not fail, since machine noise
and newly added benchmarks should not block a PR.

The baseline is regenerated with the same command the CI smoke job runs
(``REPRO_BENCH_SMOKE=1``), so numbers are comparable like for like.  Caveat:
the committed baseline encodes the speed of the machine that produced it; a
distinctly slower CI runner can trip the gate without a code regression.
When that happens (or when a PR legitimately shifts the numbers), refresh
``BENCH_baseline.json`` from the smoke command and slim it to
``fullname``/``stats`` — or raise ``--threshold`` for the affected lane.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Tuple


def load_means(path: str) -> Dict[str, float]:
    """Map benchmark fullnames to best (min) seconds from a pytest-benchmark JSON.

    Falls back to ``mean`` when ``min`` is absent.
    """
    with open(path) as handle:
        payload = json.load(handle)
    means: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        best = stats.get("min", stats.get("mean"))
        if name and isinstance(best, (int, float)):
            means[name] = float(best)
    return means


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
    gate: str,
) -> Tuple[bool, str]:
    """Return (ok, report).  ``gate`` is a comma-separated substring list."""
    gates = [part.strip() for part in gate.split(",") if part.strip()]
    lines = []
    ok = True
    shared = sorted(set(baseline) & set(current))
    for name in shared:
        base = baseline[name]
        now = current[name]
        ratio = now / base if base > 0 else float("inf")
        gated = any(part in name for part in gates)
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION" if gated else "slower (ungated)"
            if gated:
                ok = False
        lines.append(
            f"{status:>18}  {ratio:6.2f}x  {base * 1000:10.2f}ms -> "
            f"{now * 1000:10.2f}ms  {name}"
        )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"{'new':>18}  {'':>8}  {current[name] * 1000:10.2f}ms  {name}")
    for name in sorted(set(baseline) - set(current)):
        lines.append(f"{'missing':>18}  {'':>8}  {'':>10}  {name}")
    if not shared:
        lines.append("no shared benchmarks between baseline and current run")
    gated_shared = [
        name for name in shared if any(part in name for part in gates)
    ]
    if not gated_shared:
        lines.append(
            f"warning: no shared benchmark matches gate {gate!r}; nothing enforced"
        )
    return ok, "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown for gated benchmarks (default 0.25)",
    )
    parser.add_argument(
        "--gate",
        default="guided,server",
        help=(
            "comma-separated substrings selecting the enforced benchmarks "
            "(default: guided,server)"
        ),
    )
    args = parser.parse_args(argv)
    ok, report = compare(
        load_means(args.baseline), load_means(args.current), args.threshold, args.gate
    )
    print(report)
    if not ok:
        print(
            f"\nFAIL: a gated benchmark regressed more than "
            f"{args.threshold * 100:.0f}% against {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print("\nbenchmark comparison passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
