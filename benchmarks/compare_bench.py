"""Compare a pytest-benchmark JSON artifact against a committed baseline.

Usage::

    python benchmarks/compare_bench.py BENCH_baseline.json BENCH_pr.json \
        [--threshold 0.25] [--gate guided,server]

Benchmarks are matched by ``fullname``.  Every matched pair is reported with
its best-time (``min``) ratio — ``min`` is far less noise-sensitive than
``mean`` for a gate.  Pairs whose name contains any *gate* substring
(comma-separated; default ``guided,server`` — the relevance-guided strategy
and the multi-query server, the headline numbers of this repository) are
enforced: a gated benchmark slower than ``baseline * (1 + threshold)`` fails
the comparison with exit status 1.  Ungated regressions and benchmarks
present on only one side are reported but do not fail, since machine noise
and newly added benchmarks should not block a PR.

The baseline is regenerated with the same command the CI smoke job runs
(``REPRO_BENCH_SMOKE=1``), so numbers are comparable like for like.  Caveat:
the committed baseline encodes the speed of the machine that produced it; a
distinctly slower CI runner can trip the gate without a code regression.
When that happens (or when a PR legitimately shifts the numbers), refresh
``BENCH_baseline.json`` from the smoke command and slim it to
``fullname``/``stats`` — or raise ``--threshold`` for the affected lane.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Tuple


def load_stats(path: str) -> Tuple[Dict[str, float], Dict[str, Dict[str, object]]]:
    """Load best (min) seconds and ``extra_info`` per benchmark fullname.

    Falls back to ``mean`` when ``min`` is absent.  ``extra_info`` is
    whatever the benchmark recorded (counter totals, histogram-derived
    p50/p99 latencies, …) and is passed through to the report verbatim so
    the gate output is readable without re-opening the JSON artifacts.
    """
    with open(path) as handle:
        payload = json.load(handle)
    means: Dict[str, float] = {}
    extras: Dict[str, Dict[str, object]] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        best = stats.get("min", stats.get("mean"))
        if name and isinstance(best, (int, float)):
            means[name] = float(best)
            info = bench.get("extra_info")
            if isinstance(info, dict) and info:
                extras[name] = info
    return means, extras


def load_means(path: str) -> Dict[str, float]:
    """Back-compat wrapper around :func:`load_stats`."""
    return load_stats(path)[0]


def _format_extras(info: Dict[str, object]) -> str:
    parts = []
    for key in sorted(info):
        value = info[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value}")
    return ", ".join(parts)


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
    gate: str,
    extras: Optional[Dict[str, Dict[str, object]]] = None,
) -> Tuple[bool, str]:
    """Return (ok, report).  ``gate`` is a comma-separated substring list.

    ``extras`` maps fullnames to the current run's ``extra_info``; when
    present each benchmark line is followed by an indented key=value line.
    """
    gates = [part.strip() for part in gate.split(",") if part.strip()]
    extras = extras or {}
    lines = []
    ok = True
    shared = sorted(set(baseline) & set(current))
    for name in shared:
        base = baseline[name]
        now = current[name]
        ratio = now / base if base > 0 else float("inf")
        gated = any(part in name for part in gates)
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION" if gated else "slower (ungated)"
            if gated:
                ok = False
        lines.append(
            f"{status:>18}  {ratio:6.2f}x  {base * 1000:10.2f}ms -> "
            f"{now * 1000:10.2f}ms  {name}"
        )
        if name in extras:
            lines.append(f"{'':>18}  extra: {_format_extras(extras[name])}")
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"{'new':>18}  {'':>8}  {current[name] * 1000:10.2f}ms  {name}")
        if name in extras:
            lines.append(f"{'':>18}  extra: {_format_extras(extras[name])}")
    for name in sorted(set(baseline) - set(current)):
        lines.append(f"{'missing':>18}  {'':>8}  {'':>10}  {name}")
    if not shared:
        lines.append("no shared benchmarks between baseline and current run")
    gated_shared = [
        name for name in shared if any(part in name for part in gates)
    ]
    if not gated_shared:
        lines.append(
            f"warning: no shared benchmark matches gate {gate!r}; nothing enforced"
        )
    return ok, "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown for gated benchmarks (default 0.25)",
    )
    parser.add_argument(
        "--gate",
        default="guided,server",
        help=(
            "comma-separated substrings selecting the enforced benchmarks "
            "(default: guided,server)"
        ),
    )
    args = parser.parse_args(argv)
    current_means, current_extras = load_stats(args.current)
    ok, report = compare(
        load_means(args.baseline),
        current_means,
        args.threshold,
        args.gate,
        extras=current_extras,
    )
    print(report)
    if not ok:
        print(
            f"\nFAIL: a gated benchmark regressed more than "
            f"{args.threshold * 100:.0f}% against {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print("\nbenchmark comparison passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
