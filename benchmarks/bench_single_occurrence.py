"""Experiment P4.3-single: the single-occurrence tractable case.

Proposition 4.3 gives a polynomial algorithm when the accessed relation
occurs once in a conjunctive query; the benchmark compares it head-to-head
with the general Σ₂ᵖ procedure on the same instances (the fast path should be
clearly cheaper and must agree).
"""

from __future__ import annotations

import pytest

from repro import Access, Configuration
from repro.core import is_ltr_independent, is_ltr_single_occurrence
from repro.queries import parse_cq
from repro.schema import SchemaBuilder


def _setup(width: int):
    builder = SchemaBuilder()
    builder.domain("D")
    names = []
    for index in range(width):
        name = f"R{index}"
        builder.relation(name, [("a", "D"), ("b", "D")])
        builder.access(f"m{index}", name, inputs=["b"], dependent=False)
        names.append(name)
    schema = builder.build()
    body = ", ".join(f"R{index}(x{index}, x{index + 1})" for index in range(width))
    query = parse_cq(schema, body)
    configuration = Configuration(schema, {"R1": [("u", "v")]} if width > 1 else {})
    access = Access(schema.access_method("m0"), ("w",))
    return query, access, configuration, schema


@pytest.mark.experiment("P4.3-single-fast-path")
@pytest.mark.parametrize("width", [3, 5, 7])
def test_single_occurrence_algorithm(benchmark, width):
    query, access, configuration, schema = _setup(width)
    result = benchmark(lambda: is_ltr_single_occurrence(query, access, configuration))
    assert result == is_ltr_independent(query, access, configuration, schema)


@pytest.mark.experiment("P4.3-single-general")
@pytest.mark.parametrize("width", [3, 5])
def test_general_procedure_on_same_instances(benchmark, width):
    query, access, configuration, schema = _setup(width)
    result = benchmark(
        lambda: is_ltr_independent(query, access, configuration, schema)
    )
    assert result in (True, False)
