"""Experiment T6.1-arity: the small-arity (binary, dependent) case.

Theorem 6.1 places long-term relevance in PSPACE when relations are at most
binary, accesses are dependent, and the query is connected.  The benchmark
sweeps the chain length of a binary dependent-chain workload and the
chain-length budget of the procedure (the ablation knob of DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro.core import is_ltr_small_arity
from repro.workloads import small_arity_scenario


@pytest.mark.experiment("T6.1-arity")
@pytest.mark.parametrize("length", [2, 3, 4])
def test_small_arity_chain_scaling(benchmark, length):
    scenario = small_arity_scenario(length)
    result = benchmark(
        lambda: is_ltr_small_arity(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )
    )
    assert result is True


@pytest.mark.experiment("T6.1-arity-budget")
@pytest.mark.parametrize("chain_bound", [2, 4, 8])
def test_chain_budget_ablation(benchmark, chain_bound):
    scenario = small_arity_scenario(3)
    result = benchmark(
        lambda: is_ltr_small_arity(
            scenario.query,
            scenario.access,
            scenario.configuration,
            scenario.schema,
            chain_length_bound=chain_bound,
        )
    )
    assert result is True
