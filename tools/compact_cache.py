#!/usr/bin/env python3
"""Maintain persistent witness cache stores from the command line.

Subcommands:

``compact PATH``
    Rewrite a store to its live record set.  For JSONL this drops every
    superseded line (last record per ``(query, schema, access)`` key wins);
    for SQLite it checkpoints the WAL and vacuums.

``migrate SRC DST``
    Copy every live record from one store into another — typically JSONL →
    SQLite when a deployment moves to multi-process serving.  With
    ``--verify``, both stores are re-opened afterwards and their decoded
    record sets compared; any difference is a non-zero exit.

``stats PATH``
    Print a store's record count, size, and operational counters as JSON.

Backends are inferred from the path (``.sqlite`` / ``.sqlite3`` / ``.db``
or SQLite magic bytes → SQLite, else JSONL); override with ``--backend`` /
``--from-backend`` / ``--to-backend``.

Examples::

    python tools/compact_cache.py compact /var/cache/witness.jsonl
    python tools/compact_cache.py migrate witness.jsonl witness.sqlite --verify
    python tools/compact_cache.py stats witness.sqlite
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Tuple

_REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
try:  # pragma: no cover - import bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - running from a source checkout
    sys.path.insert(0, _REPO_SRC)

from repro.runtime.serialize import record_digest  # noqa: E402
from repro.runtime.storage import open_witness_store  # noqa: E402


def _digest_map(path: str, backend: str) -> Dict[Tuple[str, str, str], str]:
    """Every live record's content digest, keyed by its full token triple."""
    with open_witness_store(path, backend) as store:
        digests: Dict[Tuple[str, str, str], str] = {}
        for (qtoken, stoken), pair in store.load_all().items():
            for atoken, payload in pair.items():
                digests[(qtoken, stoken, atoken)] = record_digest(payload)
        return digests


def _cmd_compact(args: argparse.Namespace) -> int:
    with open_witness_store(args.path, args.backend) as store:
        result = store.compact()
    print(
        json.dumps(
            {
                "backend": result.backend,
                "records_before": result.records_before,
                "records_after": result.records_after,
                "bytes_before": result.bytes_before,
                "bytes_after": result.bytes_after,
            },
            indent=2,
        )
    )
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    if os.path.abspath(args.src) == os.path.abspath(args.dst):
        print("migrate: SRC and DST are the same file", file=sys.stderr)
        return 2
    copied = skipped = 0
    with open_witness_store(args.src, args.from_backend) as src:
        with open_witness_store(args.dst, args.to_backend) as dst:
            for pair in src.load_all().values():
                for payload in pair.values():
                    if dst.append(payload):
                        copied += 1
                    else:
                        skipped += 1
    print(
        json.dumps({"copied": copied, "already_present": skipped}, indent=2)
    )
    if args.verify:
        src_digests = _digest_map(args.src, args.from_backend)
        dst_digests = _digest_map(args.dst, args.to_backend)
        missing = sorted(
            key for key in src_digests if dst_digests.get(key) != src_digests[key]
        )
        if missing:
            print(
                f"verify: {len(missing)} record(s) differ or are missing in DST",
                file=sys.stderr,
            )
            for qtoken, stoken, atoken in missing[:10]:
                print(f"  {qtoken}/{stoken}/{atoken}", file=sys.stderr)
            return 1
        print(f"verify: all {len(src_digests)} record(s) match")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with open_witness_store(args.path, args.backend) as store:
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="compact_cache",
        description="Compact, migrate, or inspect persistent witness cache stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compact = sub.add_parser("compact", help="rewrite a store to its live records")
    compact.add_argument("path", help="store file to compact")
    compact.add_argument(
        "--backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="storage backend (default: inferred from the path)",
    )
    compact.set_defaults(func=_cmd_compact)

    migrate = sub.add_parser("migrate", help="copy live records between stores")
    migrate.add_argument("src", help="source store file")
    migrate.add_argument("dst", help="destination store file (created if absent)")
    migrate.add_argument(
        "--from-backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="source backend (default: inferred)",
    )
    migrate.add_argument(
        "--to-backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="destination backend (default: inferred)",
    )
    migrate.add_argument(
        "--verify",
        action="store_true",
        help="re-open both stores and assert identical decoded record sets",
    )
    migrate.set_defaults(func=_cmd_migrate)

    stats = sub.add_parser("stats", help="print a store's stats as JSON")
    stats.add_argument("path", help="store file to inspect")
    stats.add_argument(
        "--backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="storage backend (default: inferred from the path)",
    )
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
