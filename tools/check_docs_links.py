#!/usr/bin/env python3
"""Check the documentation's relative links and anchors (stdlib only).

Scans ``README.md`` and every ``docs/*.md`` for Markdown links:

* **relative file links** must point at a file or directory that exists in
  the repository (external ``http(s):``/``mailto:`` links are skipped — CI
  must not flake on the network);
* **anchor links** (``file.md#section`` or bare ``#section``) must match a
  heading in the target file, using GitHub's slugification (lowercase,
  spaces to dashes, punctuation dropped);
* **code references** of the form ```` `path/to/file.py` ```` in the
  checked files are validated when they look like repository paths.

Exit status 0 when everything resolves; 1 with one line per broken link.

Run from the repository root:  python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_PATH = re.compile(r"`((?:src|docs|tests|tools|examples|benchmarks)/[A-Za-z0-9_./-]+)`")
EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor slugification (close enough for ASCII docs)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    slugs = set()
    counts = {}
    for match in HEADING.finditer(path.read_text(encoding="utf-8")):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(doc: Path, root: Path) -> List[Tuple[Path, str, str]]:
    problems = []
    text = doc.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(0)[match.group(0).index("(") + 1 : -1]
        if target.startswith(EXTERNAL):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append((doc, target, "file does not exist"))
                continue
        else:
            resolved = doc
        if anchor:
            if resolved.suffix != ".md":
                continue
            if anchor not in anchors_of(resolved):
                problems.append((doc, target, f"no heading for #{anchor}"))
    for match in CODE_PATH.finditer(text):
        candidate = match.group(1).rstrip("/")
        if not (root / candidate).exists():
            problems.append((doc, f"`{candidate}`", "referenced path missing"))
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    documents = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    problems = []
    for doc in documents:
        if doc.exists():
            problems.extend(check_file(doc, root))
    for doc, target, why in problems:
        print(f"{doc.relative_to(root)}: broken link {target!r}: {why}")
    checked = ", ".join(str(d.relative_to(root)) for d in documents if d.exists())
    if problems:
        print(f"{len(problems)} broken link(s) across {checked}")
        return 1
    print(f"all links OK in {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
