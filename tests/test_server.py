"""Query-server runtime tests.

Covers the multi-query mediator end to end: agreement with the single-query
strategies, access sharing across a batch, determinism across
``search_workers`` counts (the load-bearing property: a pooled run returns
the same answers and performs the same access set as a single-process run),
the persistent witness cache across simulated restarts, the store registry
across ``answer`` calls, and the new metrics surfaces (timer call counts,
per-shard cache gauges).
"""

from __future__ import annotations

import os

import pytest

from repro.exceptions import QueryError
from repro.planner import exhaustive_strategy, relevance_guided_strategy
from repro.runtime import (
    PersistentWitnessCache,
    QueryServer,
    RuntimeMetrics,
    ShardedLRUCache,
)
from repro.workloads import (
    bank_multi_query_scenario,
    multi_query_scenario,
    star_join_scenario,
)


def _access_set(mediator):
    return sorted(
        (access.method.name, access.binding) for access, _n in mediator.access_log
    )


@pytest.fixture(
    params=["multi", "star"],
    ids=["multi-query", "star-join"],
)
def scenario(request):
    if request.param == "multi":
        return multi_query_scenario(6, 5, 2, atoms_per_query=3, seed=3)
    return star_join_scenario(6, 5, 3, atoms_per_query=3, seed=1)


# --------------------------------------------------------------------------- #
# Scenario sanity
# --------------------------------------------------------------------------- #
class TestScenarios:
    def test_queries_are_boolean_and_distinct_stores(self, scenario):
        assert len(scenario.queries) == 6
        assert all(query.is_boolean for query in scenario.queries)
        server = QueryServer(scenario.mediator())
        stores = {id(server.store_for(query)) for query in scenario.queries}
        # Distinct queries get distinct stores; equal queries share.
        assert len(stores) == len(set(scenario.queries))
        assert server.store_for(scenario.queries[0]) is server.store_for(
            scenario.queries[0]
        )

    def test_scenario_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            multi_query_scenario(2, 3, 1, atoms_per_query=9)
        with pytest.raises(ValueError):
            star_join_scenario(2, 3, 2, atoms_per_query=1)

    def test_bank_scenario_mixes_satisfiable_and_not(self):
        scenario = bank_multi_query_scenario(6, employees=5, offices=3, states=3)
        results = [
            relevance_guided_strategy(scenario.mediator(), query)
            for query in scenario.queries
        ]
        answers = [result.boolean_answer for result in results]
        assert answers[0] is True  # the guaranteed motivating combination
        assert len(answers) == 6


# --------------------------------------------------------------------------- #
# Agreement with the single-query strategies
# --------------------------------------------------------------------------- #
class TestServerAgreement:
    def test_server_matches_per_query_guided_runs(self, scenario):
        singles = [
            relevance_guided_strategy(scenario.mediator(), query)
            for query in scenario.queries
        ]
        with QueryServer(scenario.mediator()) as server:
            result = server.answer(scenario.queries)
        assert list(result.boolean_answers) == [
            single.boolean_answer for single in singles
        ]
        assert [outcome.answers for outcome in result.outcomes] == [
            single.answers for single in singles
        ]
        # The batch shares accesses: the server performs no more than the
        # per-query runs combined, and each outcome reports its certainty.
        assert result.accesses_made <= sum(s.accesses_made for s in singles)
        for outcome, single in zip(result.outcomes, singles):
            assert outcome.certain == single.boolean_answer

    def test_server_matches_exhaustive_strategy(self, scenario):
        exhaustives = [
            exhaustive_strategy(scenario.mediator(), query)
            for query in scenario.queries
        ]
        with QueryServer(scenario.mediator()) as server:
            result = server.answer(scenario.queries, strategy="exhaustive")
        assert list(result.boolean_answers) == [
            ex.boolean_answer for ex in exhaustives
        ]

    def test_guided_server_not_worse_than_exhaustive_on_accesses(self, scenario):
        with QueryServer(scenario.mediator()) as guided:
            guided_result = guided.answer(scenario.queries)
        with QueryServer(scenario.mediator()) as exhaustive:
            exhaustive_result = exhaustive.answer(
                scenario.queries, strategy="exhaustive"
            )
        assert guided_result.accesses_made <= exhaustive_result.accesses_made
        assert list(guided_result.boolean_answers) == list(
            exhaustive_result.boolean_answers
        )

    def test_unknown_strategy_and_empty_batch(self, scenario):
        with QueryServer(scenario.mediator()) as server:
            with pytest.raises(QueryError):
                server.answer(scenario.queries, strategy="psychic")
            result = server.answer([])
            assert result.outcomes == () and result.accesses_made == 0

    def test_rejects_no_relevance_notion(self, scenario):
        with pytest.raises(QueryError):
            QueryServer(
                scenario.mediator(), use_immediate=False, use_long_term=False
            )


# --------------------------------------------------------------------------- #
# Determinism across search worker counts
# --------------------------------------------------------------------------- #
class TestSearchWorkerDeterminism:
    def test_pooled_server_matches_single_process(self, scenario):
        baseline_mediator = scenario.mediator()
        with QueryServer(baseline_mediator) as baseline_server:
            baseline = baseline_server.answer(scenario.queries)
        mediator = scenario.mediator()
        with QueryServer(mediator, search_workers=4) as pooled_server:
            pooled = pooled_server.answer(scenario.queries)
        assert pooled.answers == baseline.answers
        assert _access_set(mediator) == _access_set(baseline_mediator)
        assert pooled.accesses_made == baseline.accesses_made

    def test_guided_strategy_search_workers_matches_single_process(self):
        scenario = bank_multi_query_scenario(2, employees=5, offices=3, states=3)
        query = scenario.queries[0]
        baseline_mediator = scenario.mediator()
        baseline = relevance_guided_strategy(baseline_mediator, query)
        mediator = scenario.mediator()
        pooled = relevance_guided_strategy(mediator, query, search_workers=2)
        assert pooled.answers == baseline.answers
        assert _access_set(mediator) == _access_set(baseline_mediator)

    def test_prebuilt_oracle_rejects_pool_knobs(self, scenario):
        from repro.runtime import RelevanceOracle

        query = scenario.queries[0]
        mediator = scenario.mediator()
        oracle = RelevanceOracle(query, mediator.schema)
        with pytest.raises(QueryError):
            relevance_guided_strategy(
                mediator, query, oracle=oracle, search_workers=2
            )
        with pytest.raises(QueryError):
            relevance_guided_strategy(
                mediator, query, oracle=oracle, cache_path="unused.jsonl"
            )


# --------------------------------------------------------------------------- #
# Persistent witness cache: warm restarts
# --------------------------------------------------------------------------- #
class TestPersistentCache:
    def test_warm_restart_revalidates_instead_of_searching(self, tmp_path, scenario):
        path = os.fspath(tmp_path / "witness.jsonl")
        cold_metrics = RuntimeMetrics()
        with QueryServer(
            scenario.mediator(), cache_path=path, metrics=cold_metrics
        ) as cold_server:
            cold = cold_server.answer(scenario.queries)
        cold_counters = cold_metrics.snapshot()["counters"]
        assert cold_counters.get("persist.recorded", 0) > 0
        assert os.path.exists(path)

        # A fresh server (fresh stores, fresh oracles) simulates a restart:
        # nothing in memory survives except the JSONL file.
        warm_metrics = RuntimeMetrics()
        with QueryServer(
            scenario.mediator(), cache_path=path, metrics=warm_metrics
        ) as warm_server:
            warm = warm_server.answer(scenario.queries)
        warm_counters = warm_metrics.snapshot()["counters"]
        assert warm.answers == cold.answers
        assert warm_counters.get("witness.revalidated", 0) > 0
        assert warm_counters.get("oracle.fresh_searches", 0) < cold_counters.get(
            "oracle.fresh_searches", 0
        )

    def test_warm_restart_on_guided_strategy(self, tmp_path):
        scenario = bank_multi_query_scenario(2, employees=5, offices=3, states=3)
        query = scenario.queries[0]
        path = os.fspath(tmp_path / "bank.jsonl")
        cold_metrics = RuntimeMetrics()
        cold = relevance_guided_strategy(
            scenario.mediator(), query, cache_path=path, metrics=cold_metrics
        )
        warm_metrics = RuntimeMetrics()
        warm = relevance_guided_strategy(
            scenario.mediator(), query, cache_path=path, metrics=warm_metrics
        )
        assert warm.answers == cold.answers
        warm_counters = warm_metrics.snapshot()["counters"]
        assert warm_counters.get("witness.revalidated", 0) > 0
        assert warm_counters.get("oracle.fresh_searches", 0) < cold_metrics.snapshot()[
            "counters"
        ].get("oracle.fresh_searches", 0)

    def test_appends_are_deduplicated_across_runs(self, tmp_path, scenario):
        path = os.fspath(tmp_path / "witness.jsonl")
        for _ in range(2):
            with QueryServer(scenario.mediator(), cache_path=path) as server:
                server.answer(scenario.queries)
        first_size = os.path.getsize(path)
        with QueryServer(scenario.mediator(), cache_path=path) as server:
            server.answer(scenario.queries)
        # A warm run re-derives the same witnesses; identical paths are not
        # appended again (the file may still gain *new* paths, but a fully
        # warmed run adds nothing).
        assert os.path.getsize(path) == first_size

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path, scenario):
        path = os.fspath(tmp_path / "witness.jsonl")
        with QueryServer(scenario.mediator(), cache_path=path) as server:
            server.answer(scenario.queries)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{truncated\n")
            handle.write('{"query": "x"}\n')
        cache = PersistentWitnessCache(path)
        query = scenario.queries[0]
        witnesses = cache.witnesses_for(query, scenario.schema)
        assert cache.stats["skipped_undecodable"] >= 1
        # The well-formed records still load.
        with QueryServer(scenario.mediator(), persist=cache) as server:
            result = server.answer(scenario.queries)
        assert len(result.outcomes) == len(scenario.queries)
        assert isinstance(witnesses, dict)

    def test_cache_path_and_persist_are_exclusive(self, tmp_path, scenario):
        cache = PersistentWitnessCache(os.fspath(tmp_path / "w.jsonl"))
        with pytest.raises(QueryError):
            QueryServer(
                scenario.mediator(),
                cache_path=os.fspath(tmp_path / "w.jsonl"),
                persist=cache,
            )


# --------------------------------------------------------------------------- #
# The store registry: a server is a server
# --------------------------------------------------------------------------- #
class TestStoreRegistry:
    def test_second_answer_call_reuses_stores(self, scenario):
        metrics = RuntimeMetrics()
        with QueryServer(scenario.mediator(), metrics=metrics) as server:
            first = server.answer(scenario.queries)
            before = metrics.snapshot()["counters"]
            second = server.answer(scenario.queries)
            after = metrics.snapshot()["counters"]
        assert second.answers == first.answers
        # The second call performs no new access (the shared configuration
        # already holds everything) and reuses the stores' LTR history.
        assert second.accesses_made == 0
        reused = (
            after.get("witness.revalidated", 0)
            + after.get("oracle.delta_hits", 0)
            + after.get("oracle.hits", 0)
        ) - (
            before.get("witness.revalidated", 0)
            + before.get("oracle.delta_hits", 0)
            + before.get("oracle.hits", 0)
        )
        assert reused > 0

    def test_store_registry_is_bounded(self, scenario):
        """A server streaming distinct queries evicts least-recently-used
        stores instead of pinning one per query ever seen."""
        server = QueryServer(scenario.mediator(), max_stores=2)
        stores = [server.store_for(query) for query in scenario.queries[:4]]
        assert len(server._stores) == 2
        # The most recent two survive; re-requesting an evicted query
        # builds a fresh store (reuse lost, correctness unaffected).
        assert server.store_for(scenario.queries[3]) is stores[3]
        assert server.store_for(scenario.queries[0]) is not stores[0]

    def test_rounds_exhausted_is_flagged(self):
        # The fanout shape needs a hub round before any branch round, so a
        # one-round budget genuinely starves it (the star-join scenario, by
        # contrast, completes in one round — finishing exactly at the budget
        # is not exhaustion).
        deep = multi_query_scenario(6, 5, 2, atoms_per_query=3, seed=3)
        with QueryServer(deep.mediator()) as server:
            starved = server.answer(deep.queries, max_rounds=1)
        assert starved.rounds_exhausted
        assert any(outcome.rounds_exhausted for outcome in starved.outcomes)
        # Certain-in-one-round queries are not flagged.
        for outcome in starved.outcomes:
            if outcome.certain:
                assert not outcome.rounds_exhausted

        shallow = star_join_scenario(6, 5, 3, atoms_per_query=3, seed=1)
        with QueryServer(shallow.mediator()) as server:
            complete = server.answer(shallow.queries, max_rounds=1)
        assert not complete.rounds_exhausted


# --------------------------------------------------------------------------- #
# Metrics satellites: timer call counts and per-shard cache gauges
# --------------------------------------------------------------------------- #
class TestMetricsSurfaces:
    def test_timer_calls_are_counted(self):
        metrics = RuntimeMetrics()
        for _ in range(3):
            with metrics.timer("t"):
                pass
        assert metrics.timer_calls("t") == 3
        snap = metrics.snapshot()
        assert snap["timer_calls"]["t"] == 3
        assert snap["timers"]["t"] >= 0.0
        metrics.reset()
        assert metrics.timer_calls("t") == 0

    def test_sharded_cache_stats_expose_per_shard_rates(self):
        cache = ShardedLRUCache(max_entries=64, n_shards=4)
        for index in range(32):
            cache.put(("k", index), index)
            cache.get(("k", index))
        cache.get("absent")
        stats = cache.stats()
        assert stats["hits"] == 32 and stats["misses"] == 1
        assert 0.9 < stats["hit_rate"] < 1.0
        assert len(stats["per_shard"]) == 4
        assert sum(shard["hits"] for shard in stats["per_shard"]) == 32
        assert sum(shard["entries"] for shard in stats["per_shard"]) == 32
        # An unprobed cache reports an unknown (None) rate, not zero.
        assert ShardedLRUCache(n_shards=2).stats()["hit_rate"] is None

    def test_server_metrics_include_cache_gauges(self, scenario):
        metrics = RuntimeMetrics()
        with QueryServer(scenario.mediator(), metrics=metrics) as server:
            server.answer(scenario.queries)
            snap = metrics.snapshot()
        # The store-backed caches outlive the per-call oracles and stay
        # visible, sharded with per-shard gauges.
        sharded = [
            stats
            for name, stats in snap["caches"].items()
            if name.startswith("oracle.witnesses")
            or name.startswith("oracle.ltr_history")
        ]
        assert sharded and all("per_shard" in stats for stats in sharded)
        assert snap["timer_calls"].get("oracle.certain", 0) > 0

    def test_cache_registry_stays_bounded_across_answer_calls(self, scenario):
        """Oracles register their caches weakly: repeated answer calls must
        not accumulate dead per-call cache registrations in the shared sink
        (the long-lived-server memory-leak regression)."""
        metrics = RuntimeMetrics()
        with QueryServer(scenario.mediator(), metrics=metrics) as server:
            server.answer(scenario.queries)
            first = len(metrics.snapshot()["caches"])
            for _ in range(3):
                server.answer(scenario.queries)
            after = len(metrics.snapshot()["caches"])
        assert after <= first

    def test_dead_cache_registrations_are_pruned(self):
        metrics = RuntimeMetrics()
        cache = ShardedLRUCache(n_shards=2)
        name = metrics.register_cache("probe", cache)
        assert name in metrics.snapshot()["caches"]
        del cache
        import gc

        gc.collect()
        assert "probe" not in metrics.snapshot()["caches"]
        # The name is reusable once the old cache is gone.
        keep = ShardedLRUCache(n_shards=2)
        assert metrics.register_cache("probe", keep) == "probe"
