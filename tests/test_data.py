"""Unit tests for repro.data: instances, configurations, access paths."""

from __future__ import annotations

import pytest

from repro import (
    Access,
    AccessPath,
    AccessResponse,
    Configuration,
    Fact,
    Instance,
    apply_access,
    enumerate_well_formed_accesses,
    is_well_formed,
    response_from_instance,
)
from repro.exceptions import AccessError, ConsistencyError, SchemaError


class TestInstance:
    def test_add_and_contains(self, binary_schema):
        instance = Instance(binary_schema)
        assert instance.add("R", (1, 2))
        assert not instance.add("R", (1, 2))
        assert instance.contains("R", (1, 2))
        assert not instance.contains("R", (2, 2))
        assert instance.size() == 1

    def test_arity_validated(self, binary_schema):
        instance = Instance(binary_schema)
        with pytest.raises(SchemaError):
            instance.add("R", (1,))

    def test_unknown_relation_rejected(self, binary_schema):
        instance = Instance(binary_schema)
        with pytest.raises(SchemaError):
            instance.add("Z", (1,))
        with pytest.raises(SchemaError):
            instance.tuples("Z")

    def test_facts_roundtrip(self, binary_instance):
        facts = list(binary_instance.facts())
        clone = Instance(binary_instance.schema, facts)
        assert clone == binary_instance

    def test_union_and_subset(self, binary_schema):
        left = Instance(binary_schema, {"R": [(1, 2)]})
        right = Instance(binary_schema, {"S": [(2, 3)]})
        merged = left.union(right)
        assert left.issubset(merged)
        assert right.issubset(merged)
        assert merged.size() == 2

    def test_remove(self, binary_schema):
        instance = Instance(binary_schema, {"R": [(1, 2)]})
        assert instance.remove("R", (1, 2))
        assert not instance.remove("R", (1, 2))
        assert instance.is_empty()

    def test_active_domain_pairs_domains(self, mixed_schema):
        instance = Instance(mixed_schema, {"A": [("d1", "e1")]})
        adom = instance.active_domain()
        names = {(value, domain.name) for value, domain in adom}
        assert names == {("d1", "D"), ("e1", "E")}

    def test_active_values_by_domain(self, mixed_schema):
        instance = Instance(mixed_schema, {"A": [("d1", "e1")], "C": [("d2",)]})
        domain_d = mixed_schema.relation("C").domain_of(0)
        assert instance.active_values(domain_d) == frozenset({"d1", "d2"})

    def test_instances_unhashable(self, binary_schema):
        with pytest.raises(TypeError):
            hash(Instance(binary_schema))


class TestConfiguration:
    def test_consistency(self, binary_schema, binary_instance):
        configuration = Configuration(binary_schema, {"R": [(1, 2)]})
        assert configuration.is_consistent_with(binary_instance)
        configuration.add("R", (9, 9))
        assert not configuration.is_consistent_with(binary_instance)
        with pytest.raises(ConsistencyError):
            configuration.check_consistent_with(binary_instance)

    def test_seed_constants_in_active_domain(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        domain = binary_schema.relation("R").domain_of(0)
        configuration.add_constant("seed", domain)
        assert ("seed", domain) in configuration.active_domain()

    def test_with_constants_is_non_destructive(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        domain = binary_schema.relation("R").domain_of(0)
        extended = configuration.with_constants([("c", domain)])
        assert ("c", domain) in extended.active_domain()
        assert ("c", domain) not in configuration.active_domain()

    def test_extended_with_copies(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        extended = configuration.extended_with([Fact("R", (1, 2))])
        assert extended.contains("R", (1, 2))
        assert not configuration.contains("R", (1, 2))

    def test_union_merges_constants(self, binary_schema):
        domain = binary_schema.relation("R").domain_of(0)
        left = Configuration.empty(binary_schema)
        left.add_constant("a", domain)
        right = Configuration.empty(binary_schema)
        right.add_constant("b", domain)
        merged = left.union(right)
        values = {value for value, _ in merged.active_domain()}
        assert values == {"a", "b"}


class TestWellFormedness:
    def test_independent_always_well_formed(self, binary_schema):
        access = Access(binary_schema.access_method("mR"), (42,))
        assert is_well_formed(access, Configuration.empty(binary_schema))

    def test_dependent_requires_active_domain(self, dependent_schema):
        access = Access(dependent_schema.access_method("accR"), ("v",))
        empty = Configuration.empty(dependent_schema)
        assert not is_well_formed(access, empty)
        domain = dependent_schema.relation("R").domain_of(0)
        known = empty.with_constants([("v", domain)])
        assert is_well_formed(access, known)

    def test_free_dependent_access_always_well_formed(self, dependent_schema):
        access = Access(dependent_schema.access_method("accS"), ())
        assert is_well_formed(access, Configuration.empty(dependent_schema))


class TestResponsesAndPaths:
    def test_response_must_match_binding(self, binary_schema):
        access = Access(binary_schema.access_method("mR"), (2,))
        with pytest.raises(AccessError):
            AccessResponse(access, ((1, 3),))
        response = AccessResponse(access, ((1, 2),))
        assert len(response) == 1
        assert response.as_facts()[0] == Fact("R", (1, 2))

    def test_response_from_instance_exact_and_subset(self, binary_schema, binary_instance):
        access = Access(binary_schema.access_method("mS"), (2,))
        exact = response_from_instance(access, binary_instance)
        assert set(exact.facts) == {(2, 5)}
        partial = response_from_instance(access, binary_instance, subset=[])
        assert partial.is_empty()
        with pytest.raises(AccessError):
            response_from_instance(access, binary_instance, subset=[(9, 9)])

    def test_apply_access_grows_configuration(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mR"), (2,))
        response = AccessResponse(access, ((1, 2),))
        successor = apply_access(configuration, response)
        assert successor.contains("R", (1, 2))
        assert not configuration.contains("R", (1, 2))

    def test_apply_access_checks_well_formedness(self, dependent_schema):
        configuration = Configuration.empty(dependent_schema)
        access = Access(dependent_schema.access_method("accR"), ("v",))
        response = AccessResponse(access, (("v",),))
        with pytest.raises(AccessError):
            apply_access(configuration, response)

    def test_path_final_configuration_and_well_formedness(self, dependent_schema):
        configuration = Configuration.empty(dependent_schema)
        free_access = Access(dependent_schema.access_method("accS"), ())
        boolean_access = Access(dependent_schema.access_method("accR"), ("v",))
        path = AccessPath(
            configuration,
            [
                AccessResponse(free_access, (("v",),)),
                AccessResponse(boolean_access, (("v",),)),
            ],
        )
        assert path.is_well_formed()
        final = path.final_configuration()
        assert final.contains("R", ("v",))
        assert final.contains("S", ("v",))
        assert len(list(path.configurations())) == 3

    def test_truncation_drops_dependent_suffix(self, dependent_schema):
        """Removing the first access invalidates accesses that needed its output."""
        configuration = Configuration.empty(dependent_schema)
        free_access = Access(dependent_schema.access_method("accS"), ())
        boolean_access = Access(dependent_schema.access_method("accR"), ("v",))
        path = AccessPath(
            configuration,
            [
                AccessResponse(free_access, (("v",),)),
                AccessResponse(boolean_access, (("v",),)),
            ],
        )
        truncated = path.truncation()
        assert len(truncated) == 0
        assert truncated.final_configuration().is_empty()

    def test_truncation_keeps_independent_suffix(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        first = Access(binary_schema.access_method("mR"), (2,))
        second = Access(binary_schema.access_method("mS"), (7,))
        path = AccessPath(
            configuration,
            [
                AccessResponse(first, ((1, 2),)),
                AccessResponse(second, ((7, 8),)),
            ],
        )
        truncated = path.truncation()
        assert len(truncated) == 1
        assert truncated.final_configuration().contains("S", (7, 8))

    def test_path_soundness_check(self, binary_schema, binary_instance):
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mR"), (2,))
        sound = AccessPath(configuration, [AccessResponse(access, ((1, 2),))])
        unsound = AccessPath(configuration, [AccessResponse(access, ((9, 2),))])
        assert sound.is_sound_for(binary_instance)
        assert not unsound.is_sound_for(binary_instance)

    def test_added_facts_deduplicated(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mR"), (2,))
        path = AccessPath(
            configuration,
            [
                AccessResponse(access, ((1, 2),)),
                AccessResponse(access, ((1, 2),)),
            ],
        )
        assert path.added_facts() == (Fact("R", (1, 2)),)


class TestEnumerateAccesses:
    def test_dependent_bindings_come_from_active_domain(self, dependent_schema):
        domain = dependent_schema.relation("R").domain_of(0)
        configuration = Configuration.empty(dependent_schema).with_constants(
            [("v", domain)]
        )
        accesses = list(enumerate_well_formed_accesses(dependent_schema, configuration))
        rendered = {(a.method.name, a.binding) for a in accesses}
        assert ("accR", ("v",)) in rendered
        assert ("accS", ()) in rendered

    def test_independent_bindings_use_extra_pool(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        accesses = list(
            enumerate_well_formed_accesses(
                binary_schema, configuration, independent_values=["z"]
            )
        )
        rendered = {(a.method.name, a.binding) for a in accesses}
        assert ("mR", ("z",)) in rendered
        assert ("mS", ("z",)) in rendered
