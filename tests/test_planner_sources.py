"""Tests for the planner (static plans, inverse rules, dynamic strategies) and
the simulated deep-Web sources, including the bank scenario end to end."""

from __future__ import annotations

import pytest

from repro import Access, Configuration, Instance, parse_cq
from repro.exceptions import AccessError, QueryError, SchemaError
from repro.planner import (
    exhaustive_strategy,
    find_executable_order,
    is_feasible,
    maximally_contained_answers,
    query_plan_program,
    relevance_guided_strategy,
)
from repro.schema import SchemaBuilder
from repro.sources import DataSource, Mediator, build_bank_scenario, build_bank_schema
from repro.workloads import chain_query, chain_schema


@pytest.fixture(scope="module")
def small_bank():
    return build_bank_scenario(employees=6, offices=3, states=3, known_employees=2)


class TestStaticPlans:
    def test_chain_query_is_feasible_with_seeded_start(self):
        schema = chain_schema(3)
        query = chain_query(schema, 3)
        # x0 is unbound, and every access method needs its first attribute:
        # no static plan exists (the classic motivating example).
        assert not is_feasible(query, schema)

    def test_constant_start_makes_chain_feasible(self):
        schema = chain_schema(2)
        query = parse_cq(schema, "L1('start', y), L2(y, z)")
        plan = find_executable_order(query, schema)
        assert plan is not None
        assert plan.methods_used() == ("accL1", "accL2")

    def test_independent_methods_are_always_feasible(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        assert is_feasible(query, binary_schema)

    def test_bank_query_not_statically_feasible(self, small_bank):
        # The query engine only knows EmpIds at run time; no static plan binds
        # the Employee access's input from the query alone.
        assert not is_feasible(small_bank.query, small_bank.schema)

    def test_positive_query_rejected(self, binary_schema):
        from repro import parse_pq

        with pytest.raises(QueryError):
            find_executable_order(parse_pq(binary_schema, "R(x, y) | S(x, y)"), binary_schema)


class TestInverseRules:
    def test_plan_program_has_answer_rule(self):
        schema = chain_schema(2)
        query = chain_query(schema, 2)
        program = query_plan_program(query, schema)
        assert "answer__" in program.idb_predicates()

    def test_maximally_contained_answers_on_chain(self):
        schema = chain_schema(2)
        query = chain_query(schema, 2)
        instance = Instance(
            schema,
            {"L1": [("a", "b"), ("x", "y")], "L2": [("b", "c"), ("y", "z")]},
        )
        configuration = Configuration.empty(schema)
        domain = schema.relation("L1").domain_of(0)
        configuration.add_constant("a", domain)
        # Only the a -> b -> c chain is reachable, and it satisfies the query.
        assert maximally_contained_answers(query, instance, configuration)

    def test_unreachable_data_gives_empty_answer(self):
        schema = chain_schema(2)
        query = chain_query(schema, 2)
        instance = Instance(schema, {"L1": [("x", "y")], "L2": [("y", "z")]})
        configuration = Configuration.empty(schema)
        domain = schema.relation("L1").domain_of(0)
        configuration.add_constant("a", domain)
        assert not maximally_contained_answers(query, instance, configuration)


class TestSources:
    def test_source_checks_method(self, binary_schema, binary_instance):
        source = DataSource(binary_schema.access_method("mR"), binary_instance)
        wrong = Access(binary_schema.access_method("mS"), (2,))
        with pytest.raises(AccessError):
            source.respond(wrong)

    def test_exact_source_returns_all_matches(self, binary_schema, binary_instance):
        source = DataSource(binary_schema.access_method("mS"), binary_instance)
        response = source.respond(Access(binary_schema.access_method("mS"), (2,)))
        assert set(response.facts) == {(2, 5)}
        assert source.calls == 1

    def test_partial_source_is_sound(self, binary_schema, binary_instance):
        source = DataSource(
            binary_schema.access_method("mS"), binary_instance, completeness=0.0
        )
        response = source.respond(Access(binary_schema.access_method("mS"), (2,)))
        assert response.is_empty()

    def test_invalid_completeness_rejected(self, binary_schema, binary_instance):
        with pytest.raises(AccessError):
            DataSource(
                binary_schema.access_method("mS"), binary_instance, completeness=2.0
            )

    def test_mediator_rejects_ill_formed_access(self):
        schema = chain_schema(1)
        instance = Instance(schema, {"L1": [("a", "b")]})
        mediator = Mediator(
            schema, [DataSource(schema.access_method("accL1"), instance)]
        )
        with pytest.raises(AccessError):
            mediator.perform(Access(schema.access_method("accL1"), ("a",)))

    def test_mediator_grows_configuration_and_logs(self):
        schema = chain_schema(1)
        instance = Instance(schema, {"L1": [("a", "b")]})
        mediator = Mediator(
            schema, [DataSource(schema.access_method("accL1"), instance)]
        )
        domain = schema.relation("L1").domain_of(0)
        mediator.seed_constants([("a", domain)])
        response = mediator.perform(Access(schema.access_method("accL1"), ("a",)))
        assert len(response) == 1
        assert mediator.configuration.contains("L1", ("a", "b"))
        assert mediator.access_count == 1
        assert mediator.access_log[0][1] == 1

    def test_duplicate_sources_rejected(self, binary_schema, binary_instance):
        source = DataSource(binary_schema.access_method("mR"), binary_instance)
        with pytest.raises(SchemaError):
            Mediator(binary_schema, [source, source])

    def test_bank_schema_shape(self):
        schema = build_bank_schema()
        assert {m.name for m in schema.access_methods} == {
            "EmpOffAcc",
            "EmpManAcc",
            "OfficeInfoAcc",
            "StateApprAcc",
        }
        assert schema.all_dependent()


class TestDynamicStrategies:
    def test_exhaustive_retrieves_accessible_answer(self, small_bank):
        mediator = small_bank.mediator()
        result = exhaustive_strategy(mediator, small_bank.query)
        expected = maximally_contained_answers(
            small_bank.query,
            small_bank.hidden_instance,
            small_bank.initial_configuration(),
        )
        assert result.answers == expected
        assert result.boolean_answer

    def test_relevance_guided_matches_exhaustive_with_fewer_accesses(self, small_bank):
        exhaustive = exhaustive_strategy(small_bank.mediator(), small_bank.query)
        guided = relevance_guided_strategy(small_bank.mediator(), small_bank.query)
        assert guided.boolean_answer == exhaustive.boolean_answer
        assert guided.accesses_made <= exhaustive.accesses_made
        assert guided.relevance_checks > 0

    def test_relevance_guided_requires_a_notion(self, small_bank):
        with pytest.raises(QueryError):
            relevance_guided_strategy(
                small_bank.mediator(),
                small_bank.query,
                use_immediate=False,
                use_long_term=False,
            )

    def test_chain_scenario_strategies_agree(self):
        schema = chain_schema(2)
        query = chain_query(schema, 2)
        instance = Instance(
            schema,
            {"L1": [("start", "m"), ("x", "y")], "L2": [("m", "end"), ("y", "z")]},
        )
        configuration = Configuration.empty(schema)
        domain = schema.relation("L1").domain_of(0)
        configuration.add_constant("start", domain)
        sources = [
            DataSource(method, instance) for method in schema.access_methods
        ]
        exhaustive = exhaustive_strategy(
            Mediator(schema, sources, configuration), query
        )
        guided = relevance_guided_strategy(
            Mediator(schema, sources, configuration), query
        )
        assert exhaustive.boolean_answer
        assert guided.boolean_answer
        assert guided.accesses_made <= exhaustive.accesses_made
