"""Tests for containment under access limitations (Definition 3.1, Section 5)."""

from __future__ import annotations

import pytest

from repro import (
    Configuration,
    ContainmentOptions,
    cq_contained_in,
    decide_cm_containment,
    decide_containment,
    find_non_containment_witness,
    parse_cq,
    parse_pq,
)
from repro.exceptions import QueryError
from repro.workloads import containment_example_scenario


class TestExample32:
    """Example 3.2: containment under access limitations is weaker than classical."""

    def test_contained_under_access_limitations(self):
        schema, configuration, query_r, query_s = containment_example_scenario()
        assert decide_containment(query_r, query_s, schema, configuration)

    def test_not_classically_contained(self):
        _, _, query_r, query_s = containment_example_scenario()
        assert not cq_contained_in(query_r, query_s)

    def test_reverse_direction_not_contained(self):
        schema, configuration, query_r, query_s = containment_example_scenario()
        witness = find_non_containment_witness(query_s, query_r, schema, configuration)
        assert witness is not None
        # The witness configuration satisfies S but not R.
        from repro import evaluate_boolean

        assert evaluate_boolean(query_s, witness.configuration)
        assert not evaluate_boolean(query_r, witness.configuration)


class TestBasicProperties:
    def test_classical_containment_implies_access_containment(self, binary_schema):
        specific = parse_cq(binary_schema, "R(x, y), R(y, z)")
        general = parse_cq(binary_schema, "R(u, v)")
        assert cq_contained_in(specific, general)
        assert decide_containment(specific, general, binary_schema)

    def test_non_containment_with_free_accesses_matches_classical(self, binary_schema):
        specific = parse_cq(binary_schema, "R(x, y), R(y, z)")
        general = parse_cq(binary_schema, "R(u, v)")
        # With independent accesses, containment under access limitations
        # coincides with classical containment.
        assert not decide_containment(general, specific, binary_schema)

    def test_reflexivity(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        assert decide_containment(query, query, binary_schema)

    def test_configuration_facts_matter(self, dependent_schema):
        # Q1 = R(x), Q2 = S(x).  Starting from a configuration that already
        # contains an R fact, Q1 holds while Q2 does not: non-containment.
        query_r = parse_cq(dependent_schema, "R(x)")
        query_s = parse_cq(dependent_schema, "S(x)")
        configuration = Configuration(dependent_schema, {"R": [("v",)]})
        assert not decide_containment(query_r, query_s, dependent_schema, configuration)
        # From the empty configuration, containment holds (Example 3.2).
        assert decide_containment(query_r, query_s, dependent_schema)

    def test_inaccessible_relation_limits_witnesses(self):
        from repro import SchemaBuilder

        builder = SchemaBuilder()
        builder.domain("D")
        builder.relation("R", [("a", "D")])
        builder.relation("Fixed", [("a", "D")])
        builder.access("accR", "R", inputs=[], dependent=True)
        schema = builder.build()
        query_fixed = parse_cq(schema, "Fixed(x)")
        query_r = parse_cq(schema, "R(x)")
        # Fixed never grows, so from the empty configuration Fixed(x) never
        # becomes true: it is (vacuously) contained in anything.
        assert decide_containment(query_fixed, query_r, schema)
        # R can become true while Fixed stays empty: non-containment.
        assert not decide_containment(query_r, query_fixed, schema)

    def test_positive_queries(self, binary_schema):
        union = parse_pq(binary_schema, "R(x, y) | S(x, y)")
        left = parse_cq(binary_schema, "R(x, y)")
        assert decide_containment(left, union, binary_schema)
        assert not decide_containment(union, left, binary_schema)

    def test_non_boolean_rejected(self, binary_schema):
        unary = parse_cq(binary_schema, "Q(x) :- R(x, y)")
        boolean = parse_cq(binary_schema, "R(x, y)")
        with pytest.raises(QueryError):
            decide_containment(unary, boolean, binary_schema)

    def test_witness_reports_new_facts(self, binary_schema):
        specific = parse_cq(binary_schema, "R(x, y)")
        general = parse_cq(binary_schema, "S(x, y)")
        witness = find_non_containment_witness(specific, general, binary_schema)
        assert witness is not None
        assert any(fact.relation == "R" for fact in witness.new_facts)


class TestQueryConstants:
    def test_query_constants_available_for_dependent_bindings(self, dependent_schema):
        # Q1 = R('c'): the paper assumes query constants are present in the
        # configuration, so the dependent Boolean access R('c')? is
        # well-formed without any prior S access.  The Example 3.2 containment
        # therefore breaks as soon as a constant of the right domain is known:
        # R('c') can become true while S stays empty.
        query_r = parse_cq(dependent_schema, "R('c')")
        query_s = parse_cq(dependent_schema, "S(x)")
        assert not decide_containment(query_r, query_s, dependent_schema)
        # The variable version from the *empty* configuration is still
        # contained, because only an S access can generate a value.
        query_r_var = parse_cq(dependent_schema, "R(x)")
        assert decide_containment(query_r_var, query_s, dependent_schema)


class TestCMContainment:
    def test_single_method_per_relation_enforced(self):
        from repro import SchemaBuilder

        builder = SchemaBuilder()
        builder.domain("D")
        builder.relation("R", [("a", "D")])
        builder.access("m1", "R", inputs=[], dependent=True)
        builder.access("m2", "R", inputs=["a"], dependent=True)
        schema = builder.build()
        query = parse_cq(schema, "R(x)")
        with pytest.raises(QueryError):
            decide_cm_containment(query, query, schema)

    def test_cm_containment_with_constants(self, dependent_schema):
        query_r = parse_cq(dependent_schema, "R(x)")
        query_s = parse_cq(dependent_schema, "S(x)")
        domain = dependent_schema.relation("R").domain_of(0)
        # With a pre-existing constant of the right domain, R(x) can be made
        # true by the Boolean access on that constant without touching S:
        # CM-containment, unlike the empty-constant case, fails.
        assert not decide_cm_containment(
            query_r, query_s, dependent_schema, constants=[("c", domain)]
        )

    def test_cm_equals_config_containment_on_empty_configuration(self, dependent_schema):
        query_r = parse_cq(dependent_schema, "R(x)")
        query_s = parse_cq(dependent_schema, "S(x)")
        assert decide_cm_containment(query_r, query_s, dependent_schema) == (
            decide_containment(query_r, query_s, dependent_schema)
        )


class TestBudgets:
    def test_support_budget_affects_completeness(self, dependent_schema):
        """With no support facts allowed, the R-needs-S witness is not even
        attempted, but the answer stays on the sound (contained) side."""
        query_r = parse_cq(dependent_schema, "R(x)")
        query_s = parse_cq(dependent_schema, "S(x)")
        options = ContainmentOptions(max_support_facts=0)
        assert decide_containment(
            query_r, query_s, dependent_schema, options=options
        )
