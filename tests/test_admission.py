"""Admission-control and fairness-budget tests.

Unit-level: the token bucket's refill arithmetic, the controller's decision
order (drain → queue → pool → quota → rate) and accounting, the pool
saturation probe, and the new metrics gauges.  Integration-level: the
:meth:`QueryServer.answer` round/access budgets — a budgeted query retires
with ``rounds_exhausted`` while its batchmates' rounds (and answers) are
untouched.
"""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.runtime import (
    AdmissionController,
    ProcessRelevancePool,
    QueryServer,
    RuntimeMetrics,
    TokenBucket,
    prometheus_text,
)
from repro.workloads import bank_multi_query_scenario, multi_query_scenario


class FakeClock:
    """A monotonic clock the tests step by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------------- #
# Token bucket
# --------------------------------------------------------------------------- #
class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        for _ in range(3):
            ok, wait = bucket.try_acquire(now=0.0)
            assert ok and wait == 0.0
        ok, wait = bucket.try_acquire(now=0.0)
        assert not ok
        assert wait == pytest.approx(1.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_acquire(2.0, now=0.0)[0]
        assert not bucket.try_acquire(now=0.0)[0]
        # Half a second at 2 tokens/s buys one token back.
        ok, _ = bucket.try_acquire(now=0.5)
        assert ok
        assert not bucket.try_acquire(now=0.5)[0]

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        bucket.try_acquire(now=0.0)
        bucket.try_acquire(now=1000.0)  # long idle: refill clamps at burst
        assert bucket.tokens <= 2.0

    def test_oversized_request_reports_bounded_wait(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        ok, wait = bucket.try_acquire(10.0, now=0.0)
        assert not ok
        # The wait is to fill the whole burst, not the impossible request.
        assert wait == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


# --------------------------------------------------------------------------- #
# Admission controller
# --------------------------------------------------------------------------- #
class TestAdmissionController:
    def test_accept_and_release_accounting(self):
        clock = FakeClock()
        controller = AdmissionController(clock=clock)
        decision = controller.admit("alice", 3)
        assert decision.admitted
        assert controller.queued == 3
        assert controller.inflight == 3
        assert controller.client_inflight("alice") == 3
        controller.started(3)
        assert controller.queued == 0
        assert controller.inflight == 3
        controller.resolved("alice", 3)
        assert controller.inflight == 0
        assert controller.client_inflight("alice") == 0

    def test_rate_limit_rejects_429_with_honest_retry_after(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=2.0, clock=clock)
        assert controller.admit("alice", 2).admitted
        decision = controller.admit("alice", 1)
        assert not decision.admitted
        assert decision.status == 429
        assert decision.reason == "rate_limited"
        assert decision.retry_after == pytest.approx(1.0)
        # The bucket refills: a second later the same client is admitted.
        clock.advance(1.0)
        assert controller.admit("alice", 1).admitted

    def test_rate_limit_is_per_client(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=1.0, clock=clock)
        assert controller.admit("alice", 1).admitted
        assert not controller.admit("alice", 1).admitted
        assert controller.admit("bob", 1).admitted

    def test_inflight_quota_rejects_429(self):
        controller = AdmissionController(
            max_inflight_per_client=2, clock=FakeClock()
        )
        assert controller.admit("alice", 2).admitted
        decision = controller.admit("alice", 1)
        assert (not decision.admitted) and decision.status == 429
        assert decision.reason == "inflight_quota"
        # Another client is unaffected; releasing frees the quota.
        assert controller.admit("bob", 2).admitted
        controller.resolved("alice", 2)
        assert controller.admit("alice", 1).admitted

    def test_full_queue_rejects_503(self):
        controller = AdmissionController(max_queued=4, clock=FakeClock())
        assert controller.admit("alice", 4).admitted
        decision = controller.admit("bob", 1)
        assert (not decision.admitted) and decision.status == 503
        assert decision.reason == "queue_full"
        assert decision.retry_after > 0.0
        # Batch pickup empties the queue; admission resumes.
        controller.started(4)
        assert controller.admit("bob", 1).admitted

    def test_saturated_pool_rejects_503(self):
        class FakePool:
            def __init__(self):
                self.full = False

            def saturated(self, *, backlog_factor):
                return self.full

        pool = FakePool()
        controller = AdmissionController(pool=pool, clock=FakeClock())
        assert controller.admit("alice", 1).admitted
        pool.full = True
        decision = controller.admit("alice", 1)
        assert (not decision.admitted) and decision.status == 503
        assert decision.reason == "pool_saturated"

    def test_drain_rejects_everything_503(self):
        metrics = RuntimeMetrics()
        controller = AdmissionController(metrics=metrics, clock=FakeClock())
        controller.begin_drain()
        decision = controller.admit("alice", 1)
        assert (not decision.admitted) and decision.status == 503
        assert decision.reason == "draining"
        assert metrics.count("admission.rejected.draining") == 1
        assert metrics.gauge("service.draining") == 1

    def test_reject_counters_and_gauges(self):
        metrics = RuntimeMetrics()
        controller = AdmissionController(
            rate=1.0, burst=1.0, max_queued=2, metrics=metrics, clock=FakeClock()
        )
        controller.admit("alice", 1)
        controller.admit("alice", 1)  # rate-limited
        assert metrics.count("admission.accepted") == 1
        assert metrics.count("admission.rejected.rate_limited") == 1
        assert metrics.gauge("service.queue_depth") == 1
        assert metrics.gauge("service.inflight_queries") == 1

    def test_budgets_for_shapes(self):
        unlimited = AdmissionController(clock=FakeClock())
        assert unlimited.budgets_for(3) == (None, None)
        budgeted = AdmissionController(
            round_budget=5, access_budget=40, clock=FakeClock()
        )
        rounds, accesses = budgeted.budgets_for(2)
        assert rounds == [5, 5]
        assert accesses == [40, 40]

    def test_client_table_is_bounded(self):
        controller = AdmissionController(
            rate=10.0, max_clients=4, clock=FakeClock()
        )
        for index in range(10):
            client = f"client{index}"
            assert controller.admit(client, 1).admitted
            controller.resolved(client, 1)
        assert len(controller._clients) <= 4


# --------------------------------------------------------------------------- #
# Pool saturation probe
# --------------------------------------------------------------------------- #
class TestPoolSaturation:
    def test_idle_pool_is_not_saturated(self):
        pool = ProcessRelevancePool(2)
        assert pool.inflight == 0
        assert not pool.saturated()

    def test_saturation_threshold(self):
        pool = ProcessRelevancePool(2)
        pool._inflight = 4  # workers × factor: boundary is not saturated
        assert not pool.saturated(backlog_factor=2.0)
        pool._inflight = 5
        assert pool.saturated(backlog_factor=2.0)
        assert pool.saturated(backlog_factor=1.0)
        assert not pool.saturated(backlog_factor=10.0)


# --------------------------------------------------------------------------- #
# Metrics gauges (new surface this PR)
# --------------------------------------------------------------------------- #
class TestGauges:
    def test_set_read_snapshot_reset(self):
        metrics = RuntimeMetrics()
        assert metrics.gauge("service.queue_depth") is None
        metrics.set_gauge("service.queue_depth", 7)
        metrics.set_gauge("service.queue_depth", 3)  # last write wins
        assert metrics.gauge("service.queue_depth") == 3
        assert metrics.snapshot()["gauges"] == {"service.queue_depth": 3}
        metrics.reset()
        assert metrics.gauge("service.queue_depth") is None

    def test_gauges_export_as_prometheus_gauge_family(self):
        metrics = RuntimeMetrics()
        metrics.set_gauge("service.queue_depth", 5)
        text = prometheus_text(metrics)
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 5" in text


# --------------------------------------------------------------------------- #
# Server-side fairness budgets
# --------------------------------------------------------------------------- #
class TestServerBudgets:
    def test_round_budget_retires_query_without_starving_batchmates(self):
        scenario = bank_multi_query_scenario(4, employees=4, offices=2, states=3)
        reference = QueryServer(scenario.mediator()).answer(scenario.queries)
        assert reference.rounds > 1  # the budget below genuinely bites

        metrics = RuntimeMetrics()
        server = QueryServer(scenario.mediator(), metrics=metrics)
        budgeted = server.answer(
            scenario.queries,
            round_budgets=[1] + [None] * (len(scenario.queries) - 1),
        )
        # The budgeted query participated in exactly one round and is
        # flagged; everyone else ran the full rounds and answers match the
        # unbudgeted reference (including the budgeted query's answer set,
        # which stays sound at whatever configuration was reached).
        outcomes = budgeted.outcomes
        assert outcomes[0].rounds_exhausted
        assert outcomes[0].rounds_used == 1
        assert budgeted.rounds_exhausted
        assert metrics.count("server.budget_exhausted") == 1
        for outcome, expected in list(
            zip(budgeted.boolean_answers, reference.boolean_answers)
        )[1:]:
            assert outcome == expected
        for outcome in outcomes[1:]:
            assert not outcome.rounds_exhausted
            assert outcome.rounds_used == reference.rounds

    def test_access_budget_retires_query(self):
        scenario = multi_query_scenario(4, 4, 2, atoms_per_query=3, seed=3)
        server = QueryServer(scenario.mediator())
        result = server.answer(
            scenario.queries,
            access_budgets=[1] + [None] * (len(scenario.queries) - 1),
        )
        first = result.outcomes[0]
        # Charged its first round of accesses, then retired at the next.
        assert first.accesses_charged >= 1
        assert first.rounds_exhausted or first.certain

    def test_unbudgeted_answers_unchanged(self):
        scenario = multi_query_scenario(4, 4, 2, atoms_per_query=3, seed=5)
        plain = QueryServer(scenario.mediator()).answer(scenario.queries)
        explicit = QueryServer(scenario.mediator()).answer(
            scenario.queries,
            round_budgets=[None] * len(scenario.queries),
            access_budgets=[None] * len(scenario.queries),
        )
        assert plain.boolean_answers == explicit.boolean_answers
        assert plain.rounds == explicit.rounds
        assert not explicit.rounds_exhausted

    def test_budget_alignment_validated(self):
        scenario = multi_query_scenario(4, 4, 2, atoms_per_query=3, seed=3)
        server = QueryServer(scenario.mediator())
        with pytest.raises(QueryError):
            server.answer(scenario.queries, round_budgets=[1, 2])
        with pytest.raises(QueryError):
            server.answer(scenario.queries, access_budgets=[1])

    def test_outcome_accounting_present_without_budgets(self):
        scenario = multi_query_scenario(4, 4, 2, atoms_per_query=3, seed=3)
        result = QueryServer(scenario.mediator()).answer(scenario.queries)
        for outcome in result.outcomes:
            assert outcome.rounds_used >= 1
            assert outcome.accesses_charged >= 0
