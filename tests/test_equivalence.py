"""Equivalence properties for the indexed evaluation core.

The indexed paths introduced for performance must be *observationally
identical* to the naive reference implementations they replaced:

* indexed homomorphism search over an :class:`Instance` /
  :class:`CanonicalInstance` returns exactly the assignments a scan-based
  search returns;
* indexed semi-naive Datalog evaluation computes the same fixpoint as the
  naive evaluator, on the accessible-part program and on recursive programs;
* the incremental caches of :class:`Instance` (active domain, fingerprint,
  per-domain pools) agree with recomputation from scratch after arbitrary
  add/remove sequences;
* the incremental relevance engine (fingerprint memoization, delta
  inheritance, witness revalidation, screening adoption) serves exactly the
  verdict a fresh, cache-free ``is_long_term_relevant`` run computes on the
  same configuration, across arbitrary growth sequences.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Access, Configuration, Instance, SchemaBuilder
from repro.core import is_long_term_relevant
from repro.datalog import accessible_program
from repro.datalog.engine import evaluate_program, evaluate_program_naive
from repro.queries import find_homomorphisms
from repro.runtime import RelevanceOracle, RuntimeMetrics
from repro.workloads import fanout_scenario, random_cq


def _schema():
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D"), ("b", "D")])
    builder.relation("S", [("a", "D"), ("b", "D")])
    builder.access("mR", "R", inputs=["b"], dependent=True)
    builder.access("mS", "S", inputs=[], dependent=False)
    return builder.build()


SCHEMA = _schema()
VALUES = st.sampled_from(["v0", "v1", "v2", "v3"])
PAIRS = st.tuples(VALUES, VALUES)
FACTSETS = st.fixed_dictionaries(
    {
        "R": st.lists(PAIRS, max_size=6),
        "S": st.lists(PAIRS, max_size=6),
    }
)
QUERIES = st.integers(min_value=0, max_value=300).map(
    lambda seed: random_cq(SCHEMA, atoms=3, variables=3, seed=seed)
)

common_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class _ScanStore:
    """A fact store exposing only ``tuples``: forces the scan fallback."""

    def __init__(self, instance: Instance) -> None:
        self._instance = instance

    def tuples(self, relation):
        return self._instance.tuples(relation)


def _assignment_set(assignments):
    return {frozenset(assignment.items()) for assignment in assignments}


@common_settings
@given(facts=FACTSETS, query=QUERIES)
def test_indexed_homomorphisms_match_scan_search(facts, query):
    instance = Instance(SCHEMA, facts)
    indexed = _assignment_set(find_homomorphisms(query.atoms, instance))
    scanned = _assignment_set(find_homomorphisms(query.atoms, _ScanStore(instance)))
    assert indexed == scanned


@common_settings
@given(facts=FACTSETS, seeds=st.lists(VALUES, min_size=1, max_size=2))
def test_semi_naive_accessible_program_matches_naive(facts, seeds):
    instance = Instance(SCHEMA, facts)
    configuration = Configuration.empty(SCHEMA)
    domain = SCHEMA.relation("R").domain_of(0)
    for seed in seeds:
        configuration.add_constant(seed, domain)
    program = accessible_program(SCHEMA)
    edb = {relation.name: instance.tuples(relation) for relation in SCHEMA.relations}
    for value, dom in configuration.active_domain():
        edb.setdefault(f"acc_dom__{dom.name}", set()).add((value,))
    fast = evaluate_program(program, edb)
    slow = evaluate_program_naive(program, edb)
    assert {k: v for k, v in fast.items() if v} == {k: v for k, v in slow.items() if v}


@common_settings
@given(edges=st.lists(PAIRS, max_size=8))
def test_semi_naive_transitive_closure_matches_naive(edges):
    from repro.datalog.program import Literal, Program, Rule
    from repro.queries.terms import Variable

    x, y, z = Variable("x"), Variable("y"), Variable("z")
    program = Program(
        [
            Rule(Literal("t", (x, y)), (Literal("e", (x, y)),)),
            Rule(Literal("t", (x, z)), (Literal("t", (x, y)), Literal("e", (y, z)))),
        ]
    )
    edb = {"e": set(edges)}
    fast = evaluate_program(program, edb)
    slow = evaluate_program_naive(program, edb)
    assert fast.get("t", set()) == slow.get("t", set())


@common_settings
@given(
    facts=FACTSETS,
    removals=st.lists(st.tuples(st.sampled_from(["R", "S"]), PAIRS), max_size=4),
    additions=st.lists(st.tuples(st.sampled_from(["R", "S"]), PAIRS), max_size=4),
)
def test_incremental_caches_agree_with_recomputation(facts, removals, additions):
    instance = Instance(SCHEMA, facts)
    for relation, row in removals:
        instance.remove(relation, row)
    for relation, row in additions:
        instance.add(relation, row)

    rebuilt = Instance(SCHEMA)
    for fact in instance.facts():
        rebuilt.add_fact(fact)

    assert instance.active_domain() == rebuilt.active_domain()
    assert instance.fingerprint() == rebuilt.fingerprint()
    assert instance.size() == rebuilt.size()
    assert instance.active_values_by_domain() == rebuilt.active_values_by_domain()
    # Index consistency: every bound lookup equals a filtered scan.
    for relation in ("R", "S"):
        for row in instance.tuples(relation):
            for place, value in enumerate(row):
                via_index = set(instance.tuples_matching(relation, {place: value}))
                via_scan = {
                    other
                    for other in instance.tuples(relation)
                    if other[place] == value
                }
                assert via_index == via_scan


_FANOUT = fanout_scenario(2)
_M = _FANOUT.schema.relation("Hub").domain_of(1)
_GROWTH_FACTS = st.sampled_from(
    [
        ("Hub", ("start", "m0")),
        ("Hub", ("start", "m1")),
        ("B1", ("m0", "p")),
        ("B1", ("m1", "q")),
        ("B2", ("m0", "r")),
        ("B2", ("m1", "r")),
        ("Audit", ("m0", "n0")),
        ("Audit", ("m1", "n1")),
    ]
)
_PROBES = [
    Access(_FANOUT.schema.access_method("accHub"), ("start",)),
    Access(_FANOUT.schema.access_method("accB1"), ("m0",)),
    Access(_FANOUT.schema.access_method("accB2"), ("m1",)),
    Access(_FANOUT.schema.access_method("accAudit"), ("m0",)),
]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(growth=st.lists(_GROWTH_FACTS, max_size=5))
def test_incremental_ltr_verdicts_match_fresh_search(growth):
    """Every oracle answer — memoized, delta-inherited, or served by witness
    revalidation — equals a fresh ``is_long_term_relevant`` run on the same
    configuration content."""
    schema = _FANOUT.schema
    query = _FANOUT.query
    oracle = RelevanceOracle(query, schema, metrics=RuntimeMetrics())
    configuration = _FANOUT.configuration.copy()
    steps = [None] + list(growth)
    for step in steps:
        if step is not None:
            configuration.add(*step)
        for probe in _PROBES:
            incremental = oracle.long_term_relevant(probe, configuration)
            fresh = is_long_term_relevant(query, probe, configuration, schema)
            assert incremental == fresh
            # Asking again is an exact-fingerprint hit and must not flip.
            assert oracle.long_term_relevant(probe, configuration) == fresh


def test_fingerprint_distinguishes_minus_one_from_minus_two():
    """Regression: CPython's hash(-1) == hash(-2) must not collide
    fingerprints of configurations over ordinary integer data."""
    builder = SchemaBuilder()
    builder.domain("N")
    builder.relation("T", [("a", "N")])
    schema = builder.build()
    one = Instance(schema, {"T": [(-1,)]})
    two = Instance(schema, {"T": [(-2,)]})
    assert one.fingerprint() != two.fingerprint()

    domain = schema.relation("T").domain_of(0)
    c1 = Configuration(schema)
    c1.add_constant(-1, domain)
    c2 = Configuration(schema)
    c2.add_constant(-2, domain)
    assert c1.fingerprint() != c2.fingerprint()


@common_settings
@given(facts=FACTSETS, extra=PAIRS)
def test_fingerprint_is_content_based(facts, extra):
    one = Instance(SCHEMA, facts)
    # Same content inserted in a different order fingerprints identically.
    other = Instance(SCHEMA)
    for fact in reversed(list(one.facts())):
        other.add_fact(fact)
    assert one.fingerprint() == other.fingerprint()

    changed = one.copy()
    if changed.add("R", extra):
        assert changed.fingerprint() != one.fingerprint()
        changed.remove("R", extra)
        assert changed.fingerprint() == one.fingerprint()
