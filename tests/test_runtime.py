"""Tests for the runtime layer: RelevanceOracle, AccessExecutor, metrics.

The load-bearing property is that memoization is *invisible*: a cache hit
returns exactly the verdict the underlying procedure computes, for every
reachable configuration content.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Access,
    Configuration,
    Instance,
    RelevanceOracle,
    RuntimeMetrics,
    SchemaBuilder,
    is_immediately_relevant,
    is_long_term_relevant,
)
from repro.runtime import AccessExecutor, CandidateScreen, LRUCache
from repro.sources import DataSource, Mediator
from repro.workloads import fanout_scenario, random_cq


def _schema():
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D"), ("b", "D")])
    builder.relation("S", [("a", "D"), ("b", "D")])
    builder.access("mR", "R", inputs=["b"], dependent=False)
    builder.access("mS", "S", inputs=["a"], dependent=False)
    return builder.build()


SCHEMA = _schema()
VALUES = st.sampled_from(["v0", "v1", "v2"])
PAIRS = st.tuples(VALUES, VALUES)
FACTSETS = st.fixed_dictionaries(
    {
        "R": st.lists(PAIRS, max_size=4),
        "S": st.lists(PAIRS, max_size=4),
    }
)
QUERIES = st.integers(min_value=0, max_value=150).map(
    lambda seed: random_cq(SCHEMA, atoms=2, variables=2, seed=seed)
)

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@common_settings
@given(query=QUERIES, facts=FACTSETS, binding=VALUES, extra=PAIRS)
def test_oracle_cache_hits_never_change_a_verdict(query, facts, binding, extra):
    configuration = Configuration(SCHEMA, facts)
    access = Access(SCHEMA.access_method("mR"), (binding,))
    oracle = RelevanceOracle(query, SCHEMA)

    first_ir = oracle.immediately_relevant(access, configuration)
    first_ltr = oracle.long_term_relevant(access, configuration)
    first_certain = oracle.is_certain(configuration)

    # Repeats are cache hits and must return the same verdicts.
    hits_before = oracle.cache_hits
    assert oracle.immediately_relevant(access, configuration) == first_ir
    assert oracle.long_term_relevant(access, configuration) == first_ltr
    assert oracle.is_certain(configuration) == first_certain
    assert oracle.cache_hits == hits_before + 3

    # And they agree with the unmemoized procedures.
    boolean_query = oracle.query
    assert first_ir == is_immediately_relevant(boolean_query, access, configuration)
    assert first_ltr == is_long_term_relevant(
        boolean_query, access, configuration, SCHEMA
    )

    # Mutating the configuration changes the fingerprint: verdicts are
    # recomputed for the new content, and remain correct.
    mutated = configuration.extended_with([])
    mutated.add("R", extra)
    assert oracle.immediately_relevant(access, mutated) == is_immediately_relevant(
        boolean_query, access, mutated
    )


@common_settings
@given(facts=FACTSETS, extra=PAIRS)
def test_fingerprint_distinguishes_mutations_and_restores(facts, extra):
    configuration = Configuration(SCHEMA, facts)
    before = configuration.fingerprint()
    if configuration.add("R", extra):
        assert configuration.fingerprint() != before
        configuration.remove("R", extra)
    assert configuration.fingerprint() == before

    domain = SCHEMA.relation("R").domain_of(0)
    configuration.add_constant("seeded", domain)
    assert configuration.fingerprint() != before


def test_fingerprint_copy_equality():
    configuration = Configuration(SCHEMA, {"R": [("a", "b")]})
    domain = SCHEMA.relation("R").domain_of(0)
    configuration.add_constant("c", domain)
    clone = configuration.copy()
    assert clone.fingerprint() == configuration.fingerprint()
    clone.add("S", ("x", "y"))
    assert clone.fingerprint() != configuration.fingerprint()


def test_executor_deduplicates_accesses():
    instance = Instance(SCHEMA, {"R": [("a", "b"), ("c", "b")], "S": [("b", "d")]})
    mediator = Mediator(
        SCHEMA,
        [DataSource(method, instance) for method in SCHEMA.access_methods],
    )
    metrics = RuntimeMetrics()
    executor = AccessExecutor(mediator, metrics=metrics)
    access = Access(SCHEMA.access_method("mR"), ("b",))

    first = executor.execute(access)
    assert first is not None and len(first) == 2
    assert executor.already_performed(access)
    assert executor.execute(access) is None
    assert mediator.access_count == 1
    assert metrics.count("executor.performed") == 1
    assert metrics.count("executor.skipped") == 1
    assert metrics.count("executor.facts") == 2


def test_executor_batch_reports_progress():
    instance = Instance(SCHEMA, {"R": [("a", "b")], "S": []})
    mediator = Mediator(
        SCHEMA,
        [DataSource(method, instance) for method in SCHEMA.access_methods],
    )
    executor = AccessExecutor(mediator)
    batch = executor.execute_batch(
        [
            Access(SCHEMA.access_method("mR"), ("b",)),
            Access(SCHEMA.access_method("mS"), ("b",)),
            Access(SCHEMA.access_method("mR"), ("b",)),  # duplicate
        ]
    )
    assert batch.performed == 2
    assert batch.skipped == 1
    assert batch.progressed
    assert batch.facts_returned == 1


def test_mediator_view_tracks_and_snapshot_does_not():
    instance = Instance(SCHEMA, {"R": [("a", "b")]})
    mediator = Mediator(
        SCHEMA,
        [DataSource(method, instance) for method in SCHEMA.access_methods],
    )
    view = mediator.configuration_view
    snapshot = mediator.configuration
    mediator.perform(Access(SCHEMA.access_method("mR"), ("b",)))
    assert view.contains("R", ("a", "b"))
    assert not snapshot.contains("R", ("a", "b"))
    assert mediator.fingerprint == view.fingerprint()


def test_lazy_iteration_survives_live_view_mutation():
    """Regression: iterating answers over the live view while the mediator
    merges new facts must not raise (tuples_matching snapshots)."""
    from repro.queries import satisfying_assignments

    instance = Instance(SCHEMA, {"R": [("a", "b"), ("c", "b"), ("d", "e")]})
    mediator = Mediator(
        SCHEMA,
        [DataSource(method, instance) for method in SCHEMA.access_methods],
    )
    mediator.perform(Access(SCHEMA.access_method("mR"), ("b",)))
    query = random_cq(SCHEMA, atoms=1, variables=2, seed=5)
    iterator = satisfying_assignments(query, mediator.configuration_view)
    next(iterator, None)
    mediator.perform(Access(SCHEMA.access_method("mR"), ("e",)))
    list(iterator)  # must not raise RuntimeError


def test_guided_strategy_rejects_mismatched_oracle_and_reports_per_run_hits():
    import pytest

    from repro.exceptions import QueryError
    from repro.planner import relevance_guided_strategy
    from repro.sources import build_bank_scenario

    bank = build_bank_scenario(employees=3, offices=2, states=2, known_employees=1)
    other_query = random_cq(SCHEMA, atoms=2, variables=2, seed=9)
    wrong_oracle = RelevanceOracle(other_query, SCHEMA)
    with pytest.raises(QueryError):
        relevance_guided_strategy(bank.mediator(), bank.query, oracle=wrong_oracle)

    wrong_schema_oracle = RelevanceOracle(bank.query, SCHEMA)  # not the mediator's schema
    with pytest.raises(QueryError):
        relevance_guided_strategy(
            bank.mediator(), bank.query, oracle=wrong_schema_oracle
        )

    oracle = RelevanceOracle(bank.query, bank.schema)
    first = relevance_guided_strategy(bank.mediator(), bank.query, oracle=oracle)
    second = relevance_guided_strategy(bank.mediator(), bank.query, oracle=oracle)
    # cache_hits is per run: the second run's count must not include the
    # first run's hits (the shared oracle's lifetime counter keeps growing).
    assert oracle.cache_hits >= first.cache_hits + second.cache_hits
    assert second.answers == first.answers


def test_mediator_merge_is_atomic_on_invalid_response():
    """A response that fails validation part-way must leave the
    configuration untouched (no partially merged facts)."""
    import pytest

    from repro import AccessResponse
    from repro.exceptions import SchemaError

    class RogueSource:
        def __init__(self, method):
            self.method = method

        def respond(self, access):
            # Second tuple has the wrong arity; bypass response validation
            # the way a buggy duck-typed source could.
            return AccessResponse.trusted(access, (("ok", "b"), ("bad",)))

    mediator = Mediator(SCHEMA, [RogueSource(SCHEMA.access_method("mR"))])
    before = mediator.configuration_view.fingerprint()
    with pytest.raises(SchemaError):
        mediator.perform(Access(SCHEMA.access_method("mR"), ("b",)))
    assert mediator.configuration_view.fingerprint() == before
    assert mediator.access_count == 0


def test_lru_cache_evicts_oldest():
    cache = LRUCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"
    cache.put("c", 3)  # evicts "b"
    assert "b" not in cache
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert len(cache) == 2


def test_metrics_counters_and_timers():
    metrics = RuntimeMetrics()
    metrics.incr("x")
    metrics.incr("x", 4)
    with metrics.timer("t"):
        pass
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["x"] == 5
    assert snapshot["timers"]["t"] >= 0.0
    metrics.reset()
    assert metrics.count("x") == 0


def test_oracle_requires_nothing_but_query_and_schema():
    query = random_cq(SCHEMA, atoms=2, variables=2, seed=1)
    oracle = RelevanceOracle(query, SCHEMA)
    assert oracle.query.is_boolean
    stats = oracle.stats()
    assert stats == {"hits": 0, "misses": 0, "entries": 0}


# --------------------------------------------------------------------------- #
# Incremental relevance engine: witness reuse, delta inheritance, screening
# --------------------------------------------------------------------------- #
def test_witness_revalidation_reuses_positive_verdicts():
    scenario = fanout_scenario(2)
    metrics = RuntimeMetrics()
    oracle = RelevanceOracle(scenario.query, scenario.schema, metrics=metrics)
    configuration = scenario.configuration.copy()

    assert oracle.long_term_relevant(scenario.access, configuration)
    assert oracle.witness_for(scenario.access) is not None

    # Growth that invalidates the fingerprint but not the witness path.
    configuration.add("Hub", ("start", "m9"))
    assert oracle.long_term_relevant(scenario.access, configuration)
    counters = metrics.snapshot()["counters"]
    assert counters.get("witness.revalidated", 0) >= 1

    # The reused verdict agrees with a fresh search on the same content.
    assert is_long_term_relevant(
        oracle.query, scenario.access, configuration, scenario.schema
    )


def test_revalidate_truncation_matches_fresh_search_exactly():
    """Regression for the truncation semantics of ``LtrWitness.revalidate``.

    The fresh search truncates a candidate path by dropping the probed access
    and keeping the longest *well-formed prefix* of the rest: a middle step
    that is only well-formed given the probed access's outputs ends the
    truncation there, and every later step is dropped with it — even one
    that does not depend on the probed access.  ``revalidate`` must apply the
    identical rule (it now literally shares the implementation through
    ``AccessPath.truncation_final_configuration``); a skip-the-ill-formed-step
    variant would keep the later step and flip the verdict on this path.
    """
    from repro import AccessResponse, parse_cq
    from repro.core import find_ltr_witness_steps
    from repro.data import AccessPath
    from repro.runtime import LtrWitness

    builder = SchemaBuilder()
    builder.domain("S")
    builder.domain("M")
    builder.domain("L")
    builder.relation("Hub", [("src", "S"), ("mid", "M")])
    builder.relation("Next", [("mid", "M"), ("leaf", "L")])
    builder.access("accHub", "Hub", inputs=["src"], dependent=True)
    builder.access("accNext", "Next", inputs=["mid"], dependent=True)
    # A second, input-free method over Next: well-formed at any
    # configuration, so its step never depends on the probed access.
    builder.access("accNextAll", "Next", inputs=[], dependent=True)
    schema = builder.build()
    query = parse_cq(schema, "Next(m, l)", name="reach")

    configuration = Configuration(schema)
    configuration.add_constant("start", schema.relation("Hub").domain_of(0))

    probed = Access(schema.access_method("accHub"), ("start",))
    steps = (
        AccessResponse.trusted(probed, (("start", "m0"),)),
        # Middle step: well-formed only once the probed access exposed m0.
        AccessResponse.trusted(
            Access(schema.access_method("accNext"), ("m0",)), (("m0", "leaf0"),)
        ),
        # Later step: independent of the probed access, and its fact alone
        # satisfies the query — kept, it would invalidate the witness.
        AccessResponse.trusted(
            Access(schema.access_method("accNextAll"), ()), (("m1", "leaf1"),)
        ),
    )
    witness = LtrWitness(steps)

    # The shared truncation drops the middle step AND the later independent
    # step with it; a skip variant would keep Next(m1, leaf1).
    truncated = AccessPath(configuration, list(steps)).truncation_final_configuration()
    assert not truncated.contains("Next", ("m1", "leaf1"))
    assert len(truncated) == 0

    assert witness.revalidate(query, configuration)
    # ... which matches the fresh search's verdict for the probed access.
    assert find_ltr_witness_steps(query, probed, configuration, schema) is not None

    # Once the query is certain the truncation satisfies it, and both the
    # revalidation and the fresh search refuse the witness.
    certain = configuration.copy()
    certain.add("Next", ("m9", "leaf9"))
    assert not witness.revalidate(query, certain)
    assert find_ltr_witness_steps(query, probed, certain, schema) is None


def test_captured_witness_is_a_valid_path():
    scenario = fanout_scenario(2)
    oracle = RelevanceOracle(scenario.query, scenario.schema)
    configuration = scenario.configuration.copy()
    assert oracle.long_term_relevant(scenario.access, configuration)
    witness = oracle.witness_for(scenario.access)
    assert witness.access.method.name == scenario.access.method.name
    assert witness.steps[0].access.binding == scenario.access.binding
    assert witness.revalidate(oracle.query, configuration)


def test_delta_inheritance_on_query_irrelevant_growth():
    scenario = fanout_scenario(2, audit=True)
    metrics = RuntimeMetrics()
    oracle = RelevanceOracle(scenario.query, scenario.schema, metrics=metrics)
    configuration = scenario.configuration.copy()
    configuration.add("Hub", ("start", "m0"))

    first = oracle.long_term_relevant(scenario.access, configuration)
    # Audit facts touch no query relation, and their fresh Note values lie in
    # a domain no dependent method consumes: the verdict is inherited.
    configuration.add("Audit", ("m0", "n0"))
    assert oracle.long_term_relevant(scenario.access, configuration) == first
    configuration.add("Audit", ("m0", "n1"))
    assert oracle.long_term_relevant(scenario.access, configuration) == first
    counters = metrics.snapshot()["counters"]
    assert counters.get("oracle.delta_hits", 0) >= 2
    assert first == is_long_term_relevant(
        oracle.query, scenario.access, configuration, scenario.schema
    )


def test_delta_inheritance_refuses_consumable_values():
    """A delta adding a value of a dependent-input domain must NOT be
    inherited: it can genuinely flip a verdict."""
    scenario = fanout_scenario(2)
    metrics = RuntimeMetrics()
    oracle = RelevanceOracle(scenario.query, scenario.schema, metrics=metrics)
    configuration = scenario.configuration.copy()
    probe = Access(scenario.schema.access_method("accB1"), ("m0",))

    # Ill-formed at first (m0 unknown) — not relevant.
    assert not oracle.long_term_relevant(probe, configuration)
    # m0 enters the active domain: the old verdict must not transfer.
    configuration.add("Hub", ("start", "m0"))
    assert oracle.long_term_relevant(probe, configuration)


def test_screen_prefilter_drops_unfeedable_relations():
    scenario = fanout_scenario(2, audit=True)
    screen = CandidateScreen(scenario.query, scenario.schema)
    assert "Hub" in screen.closure
    assert "B1" in screen.closure and "B2" in screen.closure
    assert "Audit" not in screen.closure

    audit = Access(scenario.schema.access_method("accAudit"), ("m0",))
    kept = screen.prefilter([scenario.access, audit])
    assert kept == [scenario.access]
    # ...and the dropped access is indeed never long-term relevant.
    configuration = scenario.configuration.copy()
    configuration.add("Hub", ("start", "m0"))
    assert not is_long_term_relevant(
        scenario.query if scenario.query.is_boolean else scenario.query.boolean_closure(),
        audit,
        configuration,
        scenario.schema,
    )


def test_screen_groups_interchangeable_bindings():
    scenario = fanout_scenario(2)
    schema = scenario.schema
    configuration = scenario.configuration.copy()
    domain = schema.relation("Hub").domain_of(0)
    configuration.add_constant("start2", domain)

    screen = CandidateScreen(scenario.query, schema)
    first = Access(schema.access_method("accHub"), ("start",))
    second = Access(schema.access_method("accHub"), ("start2",))
    groups = screen.group([first, second], configuration)
    assert len(groups) == 1
    representative, members = groups[0]
    assert representative is first
    assert members[0][0] is second
    assert members[0][1] == {"start": "start2", "start2": "start"}

    # A fact mentioning only one of the two breaks the symmetry.
    configuration.add("Hub", ("start", "m0"))
    groups = screen.group([first, second], configuration)
    assert len(groups) == 2


def test_adopted_verdicts_flow_through_guided_strategy():
    from repro.planner import exhaustive_strategy, relevance_guided_strategy
    from repro.sources import build_bank_scenario

    bank = build_bank_scenario(employees=4, offices=2, states=2, known_employees=2)
    exhaustive = exhaustive_strategy(bank.mediator(), bank.query)
    metrics = RuntimeMetrics()
    oracle = RelevanceOracle(bank.query, bank.schema, metrics=metrics)
    result = relevance_guided_strategy(bank.mediator(), bank.query, oracle=oracle)
    assert result.boolean_answer == exhaustive.boolean_answer
    assert result.accesses_made <= exhaustive.accesses_made
    counters = metrics.snapshot()["counters"]
    # The two known employees are interchangeable in the empty configuration:
    # screening shares their verdicts, and execution-time rechecks are served
    # by witness revalidation.
    assert counters.get("oracle.adopted", 0) >= 1
    assert counters.get("witness.revalidated", 0) >= 1


def test_executor_batch_precheck_and_stop():
    scenario = fanout_scenario(2)
    mediator = scenario.mediator()
    executor = AccessExecutor(mediator)
    hub = Access(scenario.schema.access_method("accHub"), ("start",))
    batch = executor.execute_batch([hub, hub], precheck=lambda access: True)
    assert batch.performed == 1 and batch.skipped == 1  # dedup still applies

    b1 = Access(scenario.schema.access_method("accB1"), ("m0",))
    b2 = Access(scenario.schema.access_method("accB2"), ("m0",))
    batch = executor.execute_batch(
        [b1, b2], precheck=lambda access: access.method.name != "accB2"
    )
    assert batch.performed == 1
    assert batch.skipped == 1
    assert executor.metrics.count("executor.precheck_skipped") == 1

    audit = Access(scenario.schema.access_method("accAudit"), ("m0",))
    batch = executor.execute_batch([audit], stop=lambda: True)
    assert batch.performed == 0 and batch.responses == []
