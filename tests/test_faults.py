"""Fault-tolerance tests: injection, retries, breakers, deadlines, degradation.

The load-bearing properties:

* Fault injection is a pure function of ``(seed, access, attempt)`` — two
  runs with the same seed fail identically, so chaos tests are reproducible.
* The breaker admits exactly **one** half-open probe under any number of
  concurrent callers.
* A deadline bounds every wait: hung sources are abandoned unmerged, never
  blocking the batch past expiry.
* Degraded outcomes are *sound*: by monotonicity the answers under faults
  are a subset of the fault-free answers, and a certain degraded run agrees
  with the fault-free run exactly.
* The fault-free path with retries and breakers enabled is bit-identical to
  the plain path.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Access,
    ContainmentOptions,
    Instance,
    QueryServer,
    RuntimeMetrics,
    SchemaBuilder,
    is_long_term_relevant,
)
from repro.exceptions import (
    AccessError,
    CircuitOpenError,
    DeadlineExceeded,
    MalformedResponseError,
    TransientAccessError,
)
from repro.runtime import AccessExecutor, BreakerBoard, CircuitBreaker, Deadline, RetryPolicy
from repro.sources import DataSource, FailurePolicy, Mediator
from repro.workloads import dependent_chain_scenario, flaky_scenario


def _schema():
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D"), ("b", "D")])
    builder.relation("S", [("a", "D"), ("b", "D")])
    builder.access("mR", "R", inputs=["b"], dependent=False)
    builder.access("mS", "S", inputs=["a"], dependent=False)
    return builder.build()


SCHEMA = _schema()
INSTANCE = Instance(
    SCHEMA, {"R": [("x", "b"), ("y", "b")], "S": [("a", "z"), ("a", "w")]}
)


class _Clock:
    """A hand-cranked monotonic clock for deterministic breaker/deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _source(method: str, policy: FailurePolicy = None, **kwargs) -> DataSource:
    return DataSource(
        SCHEMA.access_method(method), INSTANCE, failure_policy=policy, **kwargs
    )


# --------------------------------------------------------------------------- #
# Failure injection
# --------------------------------------------------------------------------- #


class TestFailurePolicy:
    def test_rates_and_budgets_are_validated(self):
        with pytest.raises(AccessError):
            FailurePolicy(transient_rate=1.5)
        with pytest.raises(AccessError):
            FailurePolicy(malformed_rate=-0.1)
        with pytest.raises(AccessError):
            FailurePolicy(hang_s=-1.0)
        with pytest.raises(AccessError):
            FailurePolicy(hard_fail_after=-1)

    def test_fault_schedule_is_a_function_of_seed_access_attempt(self):
        def schedule(seed: int):
            source = _source("mR", FailurePolicy(transient_rate=0.5, seed=seed))
            access = Access(SCHEMA.access_method("mR"), ("b",))
            kinds = []
            for _ in range(16):
                try:
                    source.respond(access)
                    kinds.append("ok")
                except TransientAccessError:
                    kinds.append("transient")
            return kinds

        first = schedule(3)
        assert first == schedule(3)  # same seed → identical schedule
        assert "transient" in first and "ok" in first  # the rate actually bites
        assert first != schedule(4)  # different seed → different schedule

    def test_hard_failure_is_permanent(self):
        source = _source("mR", FailurePolicy(hard_fail_after=1))
        access = Access(SCHEMA.access_method("mR"), ("b",))
        assert len(source.respond(access)) == 2  # first call still works
        for _ in range(3):
            with pytest.raises(AccessError) as excinfo:
                source.respond(access)
            assert not isinstance(excinfo.value, TransientAccessError)

    def test_truncated_responses_are_sound_subsets(self):
        full = frozenset(
            _source("mR").respond(Access(SCHEMA.access_method("mR"), ("b",))).facts
        )
        source = _source("mR", FailurePolicy(truncate_rate=1.0))
        truncated = source.respond(Access(SCHEMA.access_method("mR"), ("b",)))
        assert frozenset(truncated.facts) < full  # strictly fewer rows, no new ones


# --------------------------------------------------------------------------- #
# Retry policy and deadlines
# --------------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientAccessError("x"))
        assert policy.is_retryable(MalformedResponseError("x"))
        assert policy.is_retryable(ConnectionError("x"))
        assert policy.is_retryable(TimeoutError("x"))
        assert not policy.is_retryable(CircuitOpenError("x"))
        assert not policy.is_retryable(DeadlineExceeded("x"))
        assert not policy.is_retryable(AccessError("permanently down"))
        assert not policy.is_retryable(ValueError("x"))

    def test_backoff_is_bounded_exponential_with_deterministic_jitter(self):
        policy = RetryPolicy(max_attempts=6, base_backoff_s=0.1, max_backoff_s=0.5, seed=9)
        twin = RetryPolicy(max_attempts=6, base_backoff_s=0.1, max_backoff_s=0.5, seed=9)
        other = RetryPolicy(max_attempts=6, base_backoff_s=0.1, max_backoff_s=0.5, seed=10)
        backoffs = []
        for attempt in range(1, 7):
            backoff = policy.backoff_s("mR", ("b",), attempt)
            assert 0.0 <= backoff <= min(0.5, 0.1 * 2 ** (attempt - 1))
            assert backoff == twin.backoff_s("mR", ("b",), attempt)
            backoffs.append(backoff)
        assert backoffs != [other.backoff_s("mR", ("b",), n) for n in range(1, 7)]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-0.1)


class TestDeadline:
    def test_unlimited_deadline_never_expires(self):
        deadline = Deadline.after(None)
        assert deadline.unlimited
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()

    def test_expiry_follows_the_clock(self):
        clock = _Clock()
        deadline = Deadline.after(1.0, clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(0.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(0.6)
        assert deadline.expired()
        assert deadline.remaining() < 0.0


# --------------------------------------------------------------------------- #
# Circuit breakers
# --------------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_state_machine(self):
        clock = _Clock()
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=2,
            reset_timeout_s=10.0,
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        assert breaker.allow() and breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow() and breaker.fail_fast()

        clock.advance(10.0)  # reset timeout elapsed: next allow() is the probe
        assert not breaker.fail_fast()
        assert breaker.allow() and breaker.state == "half-open"
        assert not breaker.allow()  # probe slot is taken
        assert breaker.fail_fast()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

        breaker.record_failure()
        breaker.record_failure()  # re-trip
        clock.advance(10.0)
        assert breaker.allow()  # probe again
        breaker.record_failure()  # probe failed: open, timer restarted
        assert breaker.state == "open" and not breaker.allow()
        clock.advance(9.0)
        assert not breaker.allow()  # restarted timer has not elapsed yet
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "open"),
        ]

    def test_success_resets_the_consecutive_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe_under_hammer(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)

        n_threads = 16
        barrier = threading.Barrier(n_threads)
        admitted = []

        def hammer():
            barrier.wait()
            admitted.append(breaker.allow())

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(admitted) == 1

        # The failed probe releases the slot; the next wave admits one again.
        breaker.record_failure()
        clock.advance(5.0)
        assert [breaker.allow() for _ in range(4)].count(True) == 1

    def test_board_mirrors_transitions_into_metrics(self):
        metrics = RuntimeMetrics()
        clock = _Clock()
        board = BreakerBoard(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock, metrics=metrics
        )
        breaker = board.breaker_for("mR")
        assert board.breaker_for("mR") is breaker  # one breaker per method
        assert metrics.snapshot()["gauges"]["breaker.state.mR"] == 0
        breaker.record_failure()
        snap = metrics.snapshot()
        assert snap["counters"]["breaker.opened"] == 1
        assert snap["gauges"]["breaker.state.mR"] == 2
        assert board.states() == {"mR": "open"}
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        snap = metrics.snapshot()
        assert snap["counters"]["breaker.half_open_probes"] == 1
        assert snap["counters"]["breaker.closed"] == 1
        assert board.states() == {"mR": "closed"}


# --------------------------------------------------------------------------- #
# The mediator's resilient access path
# --------------------------------------------------------------------------- #


def _transient_then_ok_seed(rate: float = 0.5) -> int:
    """A seed whose first attempt on mR("b") fails transiently and second works."""
    for seed in range(200):
        policy = FailurePolicy(transient_rate=rate, seed=seed)
        if (
            policy._draw("transient", "mR", ("b",), 1) < rate
            and policy._draw("transient", "mR", ("b",), 2) >= rate
        ):
            return seed
    raise AssertionError("no such seed in range")  # pragma: no cover


class TestResilientMediator:
    def test_retry_recovers_from_transient_faults(self):
        seed = _transient_then_ok_seed()
        metrics = RuntimeMetrics()
        mediator = Mediator(
            SCHEMA,
            [_source("mR", FailurePolicy(transient_rate=0.5, seed=seed)), _source("mS")],
            metrics=metrics,
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.0, seed=seed),
        )
        response = mediator.perform(Access(SCHEMA.access_method("mR"), ("b",)))
        assert len(response) == 2  # the retry got the full answer
        counters = metrics.snapshot()["counters"]
        assert counters["retry.attempts"] == 1
        assert counters["retry.recovered"] == 1
        assert counters["source.failures"] == 1

    def test_hard_failures_are_not_retried(self):
        metrics = RuntimeMetrics()
        mediator = Mediator(
            SCHEMA,
            [_source("mR", FailurePolicy(hard_fail_after=0)), _source("mS")],
            metrics=metrics,
            retry_policy=RetryPolicy(max_attempts=5, base_backoff_s=0.0),
        )
        access = Access(SCHEMA.access_method("mR"), ("b",))
        with pytest.raises(AccessError) as excinfo:
            mediator.perform(access)
        assert excinfo.value.access == access
        assert excinfo.value.attempts == 1  # fatal error: no retry burned
        counters = metrics.snapshot()["counters"]
        assert counters["retry.gave_up"] == 1
        assert "retry.attempts" not in counters

    def test_perform_many_error_carries_access_and_partial_timings(self):
        mediator = Mediator(
            SCHEMA,
            [_source("mR", FailurePolicy(hard_fail_after=0)), _source("mS")],
        )
        good = Access(SCHEMA.access_method("mS"), ("a",))
        bad = Access(SCHEMA.access_method("mR"), ("b",))
        with pytest.raises(AccessError) as excinfo:
            mediator.perform_many([good, bad])
        error = excinfo.value
        assert error.access == bad
        assert [access for access, _duration in error.timings] == [good]
        assert all(duration >= 0.0 for _access, duration in error.timings)
        assert error.attempts == 1

    def test_tolerated_failures_do_not_wedge_batchmates(self):
        metrics = RuntimeMetrics()
        mediator = Mediator(
            SCHEMA,
            [_source("mR", FailurePolicy(hard_fail_after=0)), _source("mS")],
            metrics=metrics,
        )
        executor = AccessExecutor(mediator, metrics=metrics)
        good = Access(SCHEMA.access_method("mS"), ("a",))
        bad = Access(SCHEMA.access_method("mR"), ("b",))
        batch = executor.execute_batch([bad, good], tolerate_failures=True)
        assert [access for access, _error, _attempts in batch.failed] == [bad]
        assert [response.access for response in batch.responses] == [good]
        # The failed access is not marked performed: a later round may retry it.
        assert not executor.already_performed(bad)
        assert executor.already_performed(good)
        assert metrics.snapshot()["counters"]["executor.failed"] == 1

    def test_open_breaker_fails_fast_then_admits_one_probe(self):
        clock = _Clock()
        metrics = RuntimeMetrics()
        board = BreakerBoard(
            failure_threshold=1, reset_timeout_s=10.0, clock=clock, metrics=metrics
        )
        broken = _source("mR", FailurePolicy(hard_fail_after=0))
        mediator = Mediator(
            SCHEMA, [broken, _source("mS")], metrics=metrics, breakers=board
        )
        executor = AccessExecutor(mediator, metrics=metrics)

        def batch_of(bindings, **kwargs):
            return executor.execute_batch(
                [Access(SCHEMA.access_method("mR"), (value,)) for value in bindings],
                tolerate_failures=True,
                **kwargs,
            )

        first = batch_of(["b1"])
        assert len(first.failed) == 1 and broken.calls == 1
        assert board.states() == {"mR": "open"}

        # Open breaker: the dispatch thread fails fast, no source call made.
        second = batch_of(["b2"])
        (_access, error, attempts), = second.failed
        assert isinstance(error, CircuitOpenError) and attempts == 0
        assert broken.calls == 1
        assert metrics.snapshot()["counters"]["breaker.fast_fail"] == 1

        # Reset timeout elapsed: a concurrent batch admits exactly one probe.
        clock.advance(10.0)
        third = batch_of(["b3", "b4", "b5", "b6", "b7", "b8"], max_concurrency=6)
        assert len(third.failed) == 6
        assert broken.calls == 2  # the single probe was the only source call
        probes = [attempts for _a, _e, attempts in third.failed if attempts > 0]
        assert probes == [1]
        assert board.states() == {"mR": "open"}  # the probe failed: open again

    def test_deadline_abandons_hung_sources_unmerged(self):
        metrics = RuntimeMetrics()
        mediator = Mediator(
            SCHEMA,
            [_source("mR", FailurePolicy(hang_rate=1.0, hang_s=1.5)), _source("mS")],
            metrics=metrics,
        )
        executor = AccessExecutor(mediator, metrics=metrics)
        before = mediator.configuration_view.fingerprint()
        start = time.monotonic()
        batch = executor.execute_batch(
            [Access(SCHEMA.access_method("mR"), ("b",))],
            deadline=Deadline.after(0.1),
            tolerate_failures=True,
            max_concurrency=2,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 1.2  # returned at the deadline, not after the hang
        assert batch.deadline_expired
        assert batch.responses == []
        (_access, error, _attempts), = batch.failed
        assert isinstance(error, DeadlineExceeded)
        # The hung response is discarded: nothing was merged.
        assert mediator.configuration_view.fingerprint() == before
        assert metrics.snapshot()["counters"]["deadline.abandoned"] == 1


# --------------------------------------------------------------------------- #
# End-to-end: sound degraded answers, bit-identical fault-free runs
# --------------------------------------------------------------------------- #


class TestDegradedAnswering:
    def test_fault_free_run_is_bit_identical_with_resilience_enabled(self):
        scenario = flaky_scenario("bank", seed=0, transient_rate=0.3, n_queries=4)
        plain = QueryServer(scenario.mediator(chaos=False)).answer(
            list(scenario.queries)
        )
        resilient_mediator = scenario.mediator(
            chaos=False,
            retry_policy=RetryPolicy(max_attempts=4),
            breakers=BreakerBoard(failure_threshold=3),
        )
        resilient = QueryServer(resilient_mediator).answer(list(scenario.queries))
        assert resilient.answers == plain.answers
        assert resilient.accesses_made == plain.accesses_made
        assert resilient.rounds == plain.rounds
        assert [o.certain for o in resilient.outcomes] == [
            o.certain for o in plain.outcomes
        ]
        assert not resilient.degraded
        assert all(o.failed_accesses == () for o in resilient.outcomes)

    def test_hard_outage_degrades_without_failing_the_call(self):
        scenario = flaky_scenario(
            "fanout",
            seed=7,
            transient_rate=0.0,
            hard_fail_after=0,
            n_queries=4,
        )
        metrics = RuntimeMetrics()
        mediator = scenario.mediator(
            retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=0.0),
            breakers=BreakerBoard(failure_threshold=2),
            metrics=metrics,
        )
        result = QueryServer(mediator, metrics=metrics).answer(list(scenario.queries))
        reference = QueryServer(scenario.mediator(chaos=False)).answer(
            list(scenario.queries)
        )
        assert result.degraded  # the hub method is permanently down
        for got, ref in zip(result.outcomes, reference.outcomes):
            assert got.answers <= ref.answers
            if got.degraded:
                assert got.failed_accesses
        assert metrics.snapshot()["counters"]["server.access_failures"] > 0

    def test_server_deadline_terminates_hung_queries(self):
        scenario = flaky_scenario(
            "fanout", seed=2, transient_rate=0.0, hang_rate=1.0, hang_s=1.5, n_queries=2
        )
        metrics = RuntimeMetrics()
        server = QueryServer(scenario.mediator(metrics=metrics), metrics=metrics)
        start = time.monotonic()
        result = server.answer(list(scenario.queries), deadline_s=0.15)
        elapsed = time.monotonic() - start
        assert elapsed < 1.2  # no wait rode out the 1.5 s hang
        assert all(outcome.degraded for outcome in result.outcomes)
        assert all(outcome.answers == frozenset() for outcome in result.outcomes)
        counters = metrics.snapshot()["counters"]
        assert counters["deadline.abandoned"] >= 1  # hung work was cut loose

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_degraded_outcomes_are_sound_and_reproducible(self, seed):
        scenario = flaky_scenario(
            "fanout", seed=seed, transient_rate=0.3, hard_fail_after=1, n_queries=3
        )
        reference = QueryServer(scenario.mediator(chaos=False)).answer(
            list(scenario.queries)
        )

        def chaos_run():
            mediator = scenario.mediator(
                retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.0, seed=seed),
                breakers=BreakerBoard(failure_threshold=4),
            )
            return QueryServer(mediator).answer(list(scenario.queries))

        first = chaos_run()
        second = chaos_run()

        for got, ref in zip(first.outcomes, reference.outcomes):
            # Soundness: monotone answering never invents answers under faults.
            assert got.answers <= ref.answers
            if got.certain:
                assert ref.certain and got.answers == ref.answers
        # Determinism: the same seed yields the same degraded run, bit for bit.
        assert first.answers == second.answers
        assert [o.degraded for o in first.outcomes] == [
            o.degraded for o in second.outcomes
        ]
        assert [o.failed_accesses for o in first.outcomes] == [
            o.failed_accesses for o in second.outcomes
        ]
        assert [o.attempts for o in first.outcomes] == [
            o.attempts for o in second.outcomes
        ]
        assert first.accesses_made == second.accesses_made


# --------------------------------------------------------------------------- #
# Budgeted containment: the anytime fallback stays sound
# --------------------------------------------------------------------------- #


class TestContainmentBudget:
    def test_budget_trip_falls_back_to_the_direct_search(self):
        scenario = dependent_chain_scenario(2)
        direct = is_long_term_relevant(
            scenario.query,
            scenario.access,
            scenario.configuration,
            scenario.schema,
            method="direct",
        )
        trips = []
        verdict = is_long_term_relevant(
            scenario.query,
            scenario.access,
            scenario.configuration,
            scenario.schema,
            method="containment-cq",
            options=ContainmentOptions(time_budget_s=0.0),
            on_budget_trip=lambda: trips.append(1),
        )
        assert trips == [1]
        assert verdict == direct  # the fallback agrees with the direct search

    def test_generous_budget_never_trips(self):
        scenario = dependent_chain_scenario(2)
        trips = []
        verdict = is_long_term_relevant(
            scenario.query,
            scenario.access,
            scenario.configuration,
            scenario.schema,
            method="containment-cq",
            options=ContainmentOptions(time_budget_s=60.0),
            on_budget_trip=lambda: trips.append(1),
        )
        assert trips == []
        assert verdict == is_long_term_relevant(
            scenario.query,
            scenario.access,
            scenario.configuration,
            scenario.schema,
            method="direct",
        )
