"""Tests for the workload generators and named scenarios."""

from __future__ import annotations

import pytest

from repro import Configuration, evaluate_boolean
from repro.core import is_long_term_relevant
from repro.workloads import (
    chain_query,
    chain_schema,
    containment_example_scenario,
    dependent_chain_scenario,
    diamond_scenario,
    fanout_scenario,
    independent_pq_scenario,
    independent_scenario,
    random_configuration,
    random_cq,
    random_instance,
    random_pq,
    random_schema,
    small_arity_scenario,
    star_query,
)


class TestGenerators:
    def test_random_schema_is_reproducible(self):
        first = random_schema(seed=5)
        second = random_schema(seed=5)
        assert [r.name for r in first.relations] == [r.name for r in second.relations]
        assert [m.name for m in first.access_methods] == [
            m.name for m in second.access_methods
        ]

    def test_random_instance_respects_schema(self):
        schema = random_schema(relations=3, seed=2)
        instance = random_instance(schema, tuples_per_relation=4, seed=2)
        for relation in schema.relations:
            for row in instance.tuples(relation):
                assert len(row) == relation.arity

    def test_random_configuration_is_consistent(self):
        schema = random_schema(seed=3)
        instance = random_instance(schema, seed=3)
        configuration = random_configuration(instance, fraction=0.5, seed=3)
        assert configuration.is_consistent_with(instance)

    def test_chain_schema_and_query(self):
        schema = chain_schema(4)
        query = chain_query(schema, 4)
        assert len(query.atoms) == 4
        assert query.is_connected()
        assert schema.all_dependent()

    def test_star_query(self):
        schema = chain_schema(3)
        query = star_query(schema, ["L1", "L2", "L3"])
        assert len(query.atoms) == 3
        assert query.is_connected()

    def test_random_cq_is_well_formed(self):
        schema = random_schema(seed=11)
        for seed in range(5):
            query = random_cq(schema, atoms=3, seed=seed)
            assert query.is_boolean
            assert len(query.atoms) == 3

    def test_random_pq_is_well_formed(self):
        schema = random_schema(seed=13)
        query = random_pq(schema, disjuncts=3, seed=4)
        assert query.is_boolean
        assert len(query.to_ucq()) <= 3


class TestScenarios:
    def test_independent_scenario_runs(self):
        scenario = independent_scenario()
        assert scenario.schema.all_independent()
        # The relevance procedures accept the scenario without error.
        is_long_term_relevant(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )

    def test_independent_pq_scenario_runs(self):
        scenario = independent_pq_scenario()
        is_long_term_relevant(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )

    def test_dependent_chain_scenario_expectation(self):
        scenario = dependent_chain_scenario(3)
        assert scenario.expected_long_term is True
        assert is_long_term_relevant(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )

    def test_small_arity_scenario_matches_preconditions(self):
        scenario = small_arity_scenario(2)
        assert scenario.schema.max_arity() == 2
        assert scenario.schema.all_dependent()

    def test_containment_example_scenario(self):
        schema, configuration, query_r, query_s = containment_example_scenario()
        assert not evaluate_boolean(query_r, configuration)
        assert not evaluate_boolean(query_s, configuration)
        assert schema.all_dependent()

    @pytest.mark.parametrize("branches", [1, 2, 4])
    def test_fanout_scenario_expectation(self, branches):
        scenario = fanout_scenario(branches)
        assert scenario.expected_long_term is True
        assert is_long_term_relevant(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )

    @pytest.mark.parametrize("width", [2, 3])
    def test_diamond_scenario_expectation(self, width):
        scenario = diamond_scenario(width)
        assert scenario.expected_long_term is True
        assert is_long_term_relevant(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )

    def test_fanout_audit_access_is_never_relevant(self):
        from repro import Access

        scenario = fanout_scenario(2, audit=True)
        configuration = scenario.configuration.copy()
        configuration.add("Hub", ("start", "m0"))
        audit = Access(scenario.schema.access_method("accAudit"), ("m0",))
        assert not is_long_term_relevant(
            scenario.query, audit, configuration, scenario.schema
        )

    @pytest.mark.parametrize(
        "scenario",
        [fanout_scenario(3), diamond_scenario(2), diamond_scenario(3)],
        ids=lambda s: s.name,
    )
    def test_shaped_scenarios_answer_like_exhaustive(self, scenario):
        from repro.planner import exhaustive_strategy, relevance_guided_strategy

        exhaustive = exhaustive_strategy(scenario.mediator(), scenario.query)
        guided = relevance_guided_strategy(scenario.mediator(), scenario.query)
        assert guided.boolean_answer == exhaustive.boolean_answer
        assert guided.boolean_answer is True
        assert guided.accesses_made <= exhaustive.accesses_made

    def test_scenario_without_hidden_instance_rejects_mediator(self):
        scenario = dependent_chain_scenario(2)
        with pytest.raises(ValueError):
            scenario.mediator()
