"""Tests for the parallel answering runtime.

Covers the concurrency layer end to end: the source latency model, the
mediator's windowed ``perform_many``, thread-safe metrics and (sharded) LRU
caches, the shared verdict store, the ``rounds_exhausted`` /
new-facts-progress bookkeeping, and — the load-bearing property — that a
parallel relevance-guided run is observationally equivalent to the
sequential one: same answers, and on fanout workloads the same access set.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Access, Configuration, Instance, RelevanceOracle, RuntimeMetrics
from repro.core import is_long_term_relevant
from repro.exceptions import AccessError, QueryError, SchemaError
from repro.planner import exhaustive_strategy, relevance_guided_strategy
from repro.runtime import AccessExecutor, LRUCache, ShardedLRUCache, SharedVerdictStore
from repro.schema import SchemaBuilder
from repro.sources import DataSource, Mediator
from repro.workloads import (
    chain_query,
    chain_schema,
    fanout_scenario,
    wide_fanout_scenario,
)


def _access_set(mediator):
    return sorted((access.method.name, access.binding) for access, _n in mediator.access_log)


# --------------------------------------------------------------------------- #
# DataSource: latency model and order-independent partial sampling
# --------------------------------------------------------------------------- #
class TestLatencyModel:
    def test_latency_delays_response(self, binary_schema, binary_instance):
        source = DataSource(
            binary_schema.access_method("mS"), binary_instance, latency_s=0.02
        )
        started = time.perf_counter()
        source.respond(Access(binary_schema.access_method("mS"), (2,)))
        assert time.perf_counter() - started >= 0.02
        assert source.latency_s == 0.02

    def test_jitter_is_bounded(self, binary_schema, binary_instance):
        source = DataSource(
            binary_schema.access_method("mS"),
            binary_instance,
            latency_s=0.005,
            latency_jitter_s=0.01,
            seed=3,
        )
        started = time.perf_counter()
        source.respond(Access(binary_schema.access_method("mS"), (2,)))
        elapsed = time.perf_counter() - started
        assert elapsed >= 0.005

    def test_negative_latency_rejected(self, binary_schema, binary_instance):
        with pytest.raises(AccessError):
            DataSource(
                binary_schema.access_method("mS"), binary_instance, latency_s=-1.0
            )
        with pytest.raises(AccessError):
            DataSource(
                binary_schema.access_method("mS"),
                binary_instance,
                latency_jitter_s=-0.1,
            )

    def test_partial_sampling_is_call_order_independent(self):
        """A partial source's subset for an access is a function of
        (seed, access, tuple) — not of how many calls happened before, so
        parallel completion order cannot change the retrieved data."""
        builder = SchemaBuilder()
        builder.domain("D")
        relation = builder.relation("R", [("a", "D"), ("b", "D")])
        builder.access("mR", relation, inputs=[0], dependent=False)
        schema = builder.build()
        hidden = Instance(
            schema, {"R": [("k", f"v{i}") for i in range(40)] + [("j", "w")]}
        )
        method = schema.access_method("mR")
        first = Access(method, ("k",))
        second = Access(method, ("j",))

        one = DataSource(method, hidden, completeness=0.5, seed=11)
        other = DataSource(method, hidden, completeness=0.5, seed=11)
        a1 = one.respond(first).facts
        a2 = one.respond(second).facts
        b2 = other.respond(second).facts
        b1 = other.respond(first).facts
        assert a1 == b1 and a2 == b2
        # Repeating the same access returns the identical subset.
        assert one.respond(first).facts == a1
        # A proper subset was actually sampled (not all-or-nothing).
        assert 0 < len(a1) < 41


# --------------------------------------------------------------------------- #
# Mediator.perform_many
# --------------------------------------------------------------------------- #
class TestPerformMany:
    def _fanout_round(self, scenario, mediator, *, branches=8, mids=4):
        mediator.perform(Access(scenario.schema.access_method("accHub"), ("start",)))
        accesses = []
        for index in range(1, branches + 1):
            method = scenario.schema.access_method(f"accB{index}")
            for mid in range(mids):
                accesses.append(Access(method, (f"m{mid}",)))
        return accesses

    def test_parallel_matches_sequential_content(self):
        scenario = wide_fanout_scenario(8, 4)
        sequential = scenario.mediator()
        parallel = scenario.mediator()
        batch = self._fanout_round(scenario, sequential)
        sequential.perform_many(batch, max_concurrency=1)
        self._fanout_round(scenario, parallel)
        results = parallel.perform_many(batch, max_concurrency=8)
        assert len(results) == len(batch)
        assert parallel.configuration_view.fingerprint() == (
            sequential.configuration_view.fingerprint()
        )
        assert _access_set(parallel) == _access_set(sequential)
        # New-fact counts agree in aggregate (merge order may differ).
        assert sum(n for _a, _r, n in results) == len(
            parallel.configuration_view
        ) - 4  # the 4 hub rows merged before the batch

    def test_stop_is_honored_between_completions(self):
        scenario = wide_fanout_scenario(8, 4)
        mediator = scenario.mediator()
        accesses = self._fanout_round(scenario, mediator)
        before = mediator.access_count

        def stop():
            return mediator.access_count - before >= 1

        mediator.perform_many(accesses, max_concurrency=2, stop=stop)
        made = mediator.access_count - before
        # At least one completed; only the <= 2 dispatched before the stop
        # check could complete — nothing else was sent to a source.
        assert 1 <= made <= 2

    def test_should_perform_runs_on_dispatch_thread(self):
        scenario = wide_fanout_scenario(4, 2)
        mediator = scenario.mediator()
        accesses = self._fanout_round(scenario, mediator, branches=4, mids=2)
        dispatch_thread = threading.get_ident()
        seen = []

        def should(access):
            seen.append(threading.get_ident())
            return True

        mediator.perform_many(accesses, max_concurrency=4, should_perform=should)
        assert seen and set(seen) == {dispatch_thread}

    def test_parallel_merge_stays_all_or_nothing(self):
        from repro import AccessResponse

        builder = SchemaBuilder()
        builder.domain("D")
        relation = builder.relation("R", [("a", "D"), ("b", "D")])
        builder.access("mR", relation, inputs=[1], dependent=False)
        schema = builder.build()

        class RogueSource:
            def __init__(self, method):
                self.method = method

            def respond(self, access):
                return AccessResponse.trusted(access, (("ok", "b"), ("bad",)))

        mediator = Mediator(schema, [RogueSource(schema.access_method("mR"))])
        before = mediator.configuration_view.fingerprint()
        with pytest.raises(SchemaError):
            mediator.perform_many(
                [Access(schema.access_method("mR"), ("b",))], max_concurrency=4
            )
        assert mediator.configuration_view.fingerprint() == before
        assert mediator.access_count == 0

    def test_ill_formed_access_raises_in_parallel_mode(self):
        schema = chain_schema(1)
        instance = Instance(schema, {"L1": [("a", "b")]})
        mediator = Mediator(schema, [DataSource(schema.access_method("accL1"), instance)])
        with pytest.raises(AccessError):
            mediator.perform_many(
                [Access(schema.access_method("accL1"), ("a",))], max_concurrency=4
            )


# --------------------------------------------------------------------------- #
# Thread safety: metrics, LRU caches, sharded oracle
# --------------------------------------------------------------------------- #
class TestThreadSafety:
    def test_concurrent_incr_loses_no_counts(self):
        metrics = RuntimeMetrics()
        threads = 8
        per_thread = 5000

        def work():
            for _ in range(per_thread):
                metrics.incr("hammer")
                with metrics.timer("t"):
                    pass

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert metrics.count("hammer") == threads * per_thread
        assert metrics.snapshot()["timers"]["t"] >= 0.0

    def test_lru_cache_concurrent_get_put(self):
        cache = LRUCache(max_entries=64)
        errors = []

        def work(offset):
            try:
                for i in range(4000):
                    key = (offset * 4000 + i) % 200
                    cache.put(key, i)
                    cache.get(key)
                    if i % 7 == 0:
                        cache.discard((key + 1) % 200)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        workers = [threading.Thread(target=work, args=(n,)) for n in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        assert len(cache) <= 64

    def test_sharded_lru_routes_and_accounts(self):
        cache = ShardedLRUCache(max_entries=400, n_shards=4)
        assert cache.n_shards == 4
        for i in range(100):
            cache.put(("k", i), i)
        assert len(cache) == 100
        for i in range(100):
            assert cache.get(("k", i)) == i
            assert ("k", i) in cache
        assert cache.hits == 100
        assert cache.get("absent") is None
        assert cache.misses == 1
        cache.discard(("k", 0))
        assert ("k", 0) not in cache
        with pytest.raises(ValueError):
            ShardedLRUCache(n_shards=0)

    def test_sharded_oracle_concurrent_verdicts_match_fresh_search(self):
        scenario = fanout_scenario(3)
        schema = scenario.schema
        oracle = RelevanceOracle(scenario.query, schema, n_shards=4)
        base = scenario.configuration.copy()
        grown = base.copy()
        grown.add("Hub", ("start", "m0"))
        probes = [
            (Access(schema.access_method("accHub"), ("start",)), base),
            (Access(schema.access_method("accHub"), ("start",)), grown),
            (Access(schema.access_method("accB1"), ("m0",)), grown),
            (Access(schema.access_method("accB2"), ("m0",)), grown),
        ]
        results = {}
        errors = []

        def work(index):
            try:
                for repeat in range(10):
                    for p_index, (probe, configuration) in enumerate(probes):
                        verdict = oracle.long_term_relevant(probe, configuration)
                        results[(index, p_index)] = verdict
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        workers = [threading.Thread(target=work, args=(n,)) for n in range(6)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        for p_index, (probe, configuration) in enumerate(probes):
            fresh = is_long_term_relevant(oracle.query, probe, configuration, schema)
            assert all(
                results[(t, p_index)] == fresh for t in range(6)
            ), f"probe {p_index} diverged from the fresh search"


# --------------------------------------------------------------------------- #
# SharedVerdictStore: cross-run verdict sharing
# --------------------------------------------------------------------------- #
class TestSharedVerdictStore:
    def test_second_run_reuses_first_runs_witnesses(self):
        scenario = fanout_scenario(3)
        store = SharedVerdictStore(scenario.query, scenario.schema)

        first = relevance_guided_strategy(
            scenario.mediator(), scenario.query, store=store
        )
        assert len(store.witnesses) > 0
        second_metrics = RuntimeMetrics()
        oracle = RelevanceOracle(
            scenario.query, scenario.schema, metrics=second_metrics, store=store
        )
        second = relevance_guided_strategy(
            scenario.mediator(), scenario.query, oracle=oracle
        )
        assert second.answers == first.answers
        counters = second_metrics.snapshot()["counters"]
        reused = counters.get("witness.revalidated", 0) + counters.get(
            "oracle.delta_hits", 0
        )
        assert reused >= 1, counters

    def test_store_rejects_mismatched_query_or_schema(self):
        scenario = fanout_scenario(2)
        other = fanout_scenario(3)
        store = SharedVerdictStore(scenario.query, scenario.schema)
        with pytest.raises(QueryError):
            RelevanceOracle(other.query, other.schema, store=store)
        with pytest.raises(QueryError):
            RelevanceOracle(scenario.query, other.schema, store=store)
        # Attaching for the very pair it was built for is fine.
        RelevanceOracle(scenario.query, scenario.schema, store=store)

    def test_store_and_prebuilt_oracle_are_mutually_exclusive(self):
        scenario = fanout_scenario(2)
        store = SharedVerdictStore(scenario.query, scenario.schema)
        oracle = RelevanceOracle(scenario.query, scenario.schema)
        with pytest.raises(QueryError):
            relevance_guided_strategy(
                scenario.mediator(), scenario.query, oracle=oracle, store=store
            )


# --------------------------------------------------------------------------- #
# Strategy-level bookkeeping: progress and round exhaustion
# --------------------------------------------------------------------------- #
def _overlapping_sources_setup():
    """Two access methods over one relation: their responses overlap fully."""
    builder = SchemaBuilder()
    builder.domain("D")
    relation = builder.relation("R", [("a", "D"), ("b", "D")])
    builder.access("mR_by_b", relation, inputs=["b"], dependent=True)
    builder.access("mR_by_a", relation, inputs=["a"], dependent=True)
    schema = builder.build()
    hidden = Instance(schema, {"R": [("a", "b")]})
    configuration = Configuration.empty(schema)
    configuration.add_constant("b", schema.relation("R").domain_of(1))
    sources = [DataSource(method, hidden) for method in schema.access_methods]
    return schema, Mediator(schema, sources, configuration)


class TestProgressBookkeeping:
    def test_duplicate_only_batch_does_not_count_as_progress(self):
        schema, mediator = _overlapping_sources_setup()
        executor = AccessExecutor(mediator)
        first = executor.execute_batch([Access(schema.access_method("mR_by_b"), ("b",))])
        assert first.progressed and first.new_facts == 1
        # The same fact through the other method: tuples returned, no progress.
        second = executor.execute_batch([Access(schema.access_method("mR_by_a"), ("a",))])
        assert second.facts_returned == 1
        assert second.new_facts == 0
        assert not second.progressed

    def test_exhaustive_skips_provably_idle_round_on_overlap(self):
        from repro import parse_cq

        schema, mediator = _overlapping_sources_setup()
        metrics = RuntimeMetrics()
        query = parse_cq(schema, "R(x, y)")
        result = exhaustive_strategy(mediator, query, metrics=metrics)
        assert result.boolean_answer
        # Round 1 merges R(a,b); round 2 only re-retrieves it through the
        # overlapping method and stops.  Counting returned-but-known tuples
        # as progress used to buy a third, provably idle round.
        assert metrics.count("strategy.rounds") == 2
        assert not result.rounds_exhausted

    def _deep_chain(self, length=3):
        schema = chain_schema(length)
        query = chain_query(schema, length)
        facts = {"L1": [("start", "v1")]}
        for index in range(2, length + 1):
            facts[f"L{index}"] = [(f"v{index - 1}", f"v{index}")]
        instance = Instance(schema, facts)
        configuration = Configuration.empty(schema)
        configuration.add_constant("start", schema.relation("L1").domain_of(0))
        sources = [DataSource(method, instance) for method in schema.access_methods]
        return schema, query, lambda: Mediator(schema, sources, configuration)

    def test_rounds_exhausted_is_flagged_and_counted(self):
        _schema, query, make_mediator = self._deep_chain(3)
        for strategy in (exhaustive_strategy, relevance_guided_strategy):
            metrics = RuntimeMetrics()
            starved = strategy(make_mediator(), query, max_rounds=1, metrics=metrics)
            assert starved.rounds_exhausted, strategy.__name__
            assert not starved.boolean_answer
            assert metrics.count("strategy.rounds_exhausted") == 1

            completed = strategy(make_mediator(), query, metrics=RuntimeMetrics())
            assert not completed.rounds_exhausted
            assert completed.boolean_answer

    def test_finishing_in_exactly_max_rounds_is_not_exhaustion(self):
        """A run whose budget equals the rounds it needed is complete when no
        candidate is left (fanout leaves feed no method), so the flag stays
        off; on the chain schema (one shared domain) untried candidates
        remain and the conservative flag stays on."""
        scenario = fanout_scenario(2, audit=False)
        result = exhaustive_strategy(scenario.mediator(), scenario.query, max_rounds=2)
        assert result.boolean_answer
        assert not result.rounds_exhausted

        _schema, query, make_mediator = self._deep_chain(3)
        ambiguous = exhaustive_strategy(make_mediator(), query, max_rounds=3)
        assert ambiguous.boolean_answer
        assert ambiguous.rounds_exhausted  # candidates remain untried

    def test_mid_batch_failure_keeps_earlier_accesses_deduplicated(self):
        """Accesses merged before a failing one stay in the executor's
        performed set, so a retried round does not re-send them."""
        from repro import AccessResponse

        builder = SchemaBuilder()
        builder.domain("D")
        relation = builder.relation("R", [("a", "D"), ("b", "D")])
        builder.relation("S", [("a", "D"), ("b", "D")])
        builder.access("mR", relation, inputs=[1], dependent=False)
        builder.access("mS", "S", inputs=[1], dependent=False)
        schema = builder.build()

        good = DataSource(
            schema.access_method("mR"), Instance(schema, {"R": [("a", "b")]})
        )

        class RogueSource:
            def __init__(self, method):
                self.method = method

            def respond(self, access):
                return AccessResponse.trusted(access, (("ok", "b"), ("bad",)))

        mediator = Mediator(schema, [good, RogueSource(schema.access_method("mS"))])
        executor = AccessExecutor(mediator)
        fine = Access(schema.access_method("mR"), ("b",))
        broken = Access(schema.access_method("mS"), ("b",))
        with pytest.raises(SchemaError):
            executor.execute_batch([fine, broken])
        assert executor.already_performed(fine)
        assert not executor.already_performed(broken)
        retried = executor.execute_batch([fine])
        assert retried.performed == 0 and retried.skipped == 1
        assert mediator.access_count == 1


# --------------------------------------------------------------------------- #
# Determinism: parallel runs equal sequential runs
# --------------------------------------------------------------------------- #
class TestParallelDeterminism:
    def test_guided_parallel_matches_sequential_answers_and_access_sets(self):
        scenario = wide_fanout_scenario(6, 3)
        for seed in (0, 7):
            baseline_mediator = scenario.mediator(
                latency_s=0.001, latency_jitter_s=0.002, seed=seed
            )
            baseline = relevance_guided_strategy(baseline_mediator, scenario.query)
            for workers in (2, 4, 8):
                mediator = scenario.mediator(
                    latency_s=0.001, latency_jitter_s=0.002, seed=seed
                )
                result = relevance_guided_strategy(
                    mediator, scenario.query, parallelism=workers
                )
                assert result.answers == baseline.answers
                assert _access_set(mediator) == _access_set(baseline_mediator)
                assert result.accesses_made == baseline.accesses_made

    def test_exhaustive_parallel_matches_sequential(self):
        scenario = fanout_scenario(4, mids=2)
        baseline_mediator = scenario.mediator()
        baseline = exhaustive_strategy(baseline_mediator, scenario.query)
        mediator = scenario.mediator(latency_s=0.001)
        result = exhaustive_strategy(mediator, scenario.query, parallelism=4)
        assert result.answers == baseline.answers
        assert _access_set(mediator) == _access_set(baseline_mediator)

    def test_guided_parallel_on_satisfiable_query_matches_answers(self):
        # With an early certainty stop the parallel run may complete a few
        # extra in-flight accesses, but the answers are identical.
        scenario = fanout_scenario(4, mids=2, satisfiable=True)
        baseline = relevance_guided_strategy(scenario.mediator(), scenario.query)
        for workers in (2, 8):
            result = relevance_guided_strategy(
                scenario.mediator(latency_s=0.001),
                scenario.query,
                parallelism=workers,
            )
            assert result.answers == baseline.answers
            assert result.boolean_answer

    def test_parallel_run_verdicts_match_fresh_search(self):
        """The equivalence property of the incremental engine holds after a
        parallel run: every verdict the oracle can serve at the final
        configuration equals a fresh, cache-free search."""
        scenario = wide_fanout_scenario(4, 2)
        schema = scenario.schema
        oracle = RelevanceOracle(scenario.query, schema, n_shards=4)
        mediator = scenario.mediator(latency_s=0.001)
        relevance_guided_strategy(
            mediator, scenario.query, oracle=oracle, parallelism=4
        )
        final = mediator.configuration_view
        probes = [Access(schema.access_method("accHub"), ("start",))]
        for index in (1, 2, 3, 4):
            probes.append(Access(schema.access_method(f"accB{index}"), ("m0",)))
            probes.append(Access(schema.access_method(f"accB{index}"), ("m1",)))
        for probe in probes:
            incremental = oracle.long_term_relevant(probe, final)
            fresh = is_long_term_relevant(oracle.query, probe, final, schema)
            assert incremental == fresh, (probe.method.name, probe.binding)
