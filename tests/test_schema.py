"""Unit tests for repro.schema: domains, relations, access methods, schemas."""

from __future__ import annotations

import pytest

from repro import (
    AbstractDomain,
    Access,
    AccessMethod,
    Attribute,
    Relation,
    Schema,
    SchemaBuilder,
)
from repro.exceptions import AccessError, SchemaError
from repro.schema.domains import DomainRegistry


class TestAbstractDomain:
    def test_infinite_domain_admits_everything(self):
        domain = AbstractDomain("D")
        assert domain.admits("anything")
        assert domain.admits(42)
        assert not domain.is_enumerated

    def test_enumerated_domain_restricts_values(self):
        domain = AbstractDomain("B", frozenset({0, 1}))
        assert domain.is_enumerated
        assert domain.admits(0)
        assert not domain.admits(2)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            AbstractDomain("")

    def test_equality_is_by_name(self):
        assert AbstractDomain("D") == AbstractDomain("D")
        assert AbstractDomain("D") != AbstractDomain("E")


class TestDomainRegistry:
    def test_declare_is_idempotent(self):
        registry = DomainRegistry()
        first = registry.declare("D")
        second = registry.declare("D")
        assert first is second

    def test_conflicting_redeclaration_rejected(self):
        registry = DomainRegistry()
        registry.declare("B", values=(0, 1))
        with pytest.raises(SchemaError):
            registry.declare("B", values=(0, 1, 2))

    def test_get_unknown_raises(self):
        registry = DomainRegistry()
        with pytest.raises(SchemaError):
            registry.get("missing")

    def test_contains_and_len(self):
        registry = DomainRegistry()
        registry.declare("D")
        assert "D" in registry
        assert "E" not in registry
        assert len(registry) == 1


class TestRelation:
    def test_make_and_accessors(self):
        domain = AbstractDomain("D")
        relation = Relation.make("R", [("a", domain), ("b", domain)])
        assert relation.arity == 2
        assert relation.attribute_index("b") == 1
        assert relation.domain_of(0) == domain

    def test_duplicate_attribute_names_rejected(self):
        domain = AbstractDomain("D")
        with pytest.raises(SchemaError):
            Relation.make("R", [("a", domain), ("a", domain)])

    def test_unknown_attribute_raises(self):
        domain = AbstractDomain("D")
        relation = Relation.make("R", [("a", domain)])
        with pytest.raises(SchemaError):
            relation.attribute_index("zzz")
        with pytest.raises(SchemaError):
            relation.domain_of(5)

    def test_check_values_arity(self):
        domain = AbstractDomain("D")
        relation = Relation.make("R", [("a", domain), ("b", domain)])
        with pytest.raises(SchemaError):
            relation.check_values((1,))

    def test_check_values_enumerated_domain(self):
        boolean = AbstractDomain("B", frozenset({0, 1}))
        relation = Relation.make("R", [("a", boolean)])
        relation.check_values((1,))
        with pytest.raises(SchemaError):
            relation.check_values((7,))


class TestAccessMethod:
    def _relation(self):
        domain = AbstractDomain("D")
        return Relation.make("R", [("a", domain), ("b", domain), ("c", domain)])

    def test_input_output_places(self):
        method = AccessMethod("m", self._relation(), (0, 2))
        assert method.input_places == (0, 2)
        assert method.output_places == (1,)
        assert not method.is_boolean
        assert not method.is_free

    def test_boolean_and_free(self):
        relation = self._relation()
        boolean = AccessMethod("mb", relation, (0, 1, 2))
        free = AccessMethod("mf", relation, ())
        assert boolean.is_boolean
        assert free.is_free

    def test_out_of_range_place_rejected(self):
        with pytest.raises(SchemaError):
            AccessMethod("m", self._relation(), (5,))

    def test_binding_from_mapping(self):
        method = AccessMethod("m", self._relation(), (0, 2))
        assert method.binding_from_mapping({0: "x", 2: "y"}) == ("x", "y")
        with pytest.raises(AccessError):
            method.binding_from_mapping({0: "x"})


class TestAccess:
    def _method(self):
        domain = AbstractDomain("D")
        relation = Relation.make("R", [("a", domain), ("b", domain)])
        return AccessMethod("m", relation, (0,))

    def test_binding_arity_checked(self):
        with pytest.raises(AccessError):
            Access(self._method(), ())

    def test_matches_and_select(self):
        access = Access(self._method(), (1,))
        assert access.matches((1, 5))
        assert not access.matches((2, 5))
        assert access.select([(1, 5), (2, 5), (1, 7)]) == ((1, 5), (1, 7))

    def test_binding_with_domains(self):
        access = Access(self._method(), (1,))
        pairs = access.binding_with_domains()
        assert len(pairs) == 1
        assert pairs[0][0] == 1
        assert pairs[0][1].name == "D"

    def test_enumerated_binding_validated(self):
        boolean = AbstractDomain("B", frozenset({0, 1}))
        relation = Relation.make("R", [("a", boolean)])
        method = AccessMethod("m", relation, (0,))
        with pytest.raises(AccessError):
            Access(method, (5,))


class TestSchema:
    def test_builder_and_lookup(self, binary_schema):
        assert binary_schema.has_relation("R")
        assert binary_schema.relation("S").arity == 2
        assert binary_schema.access_method("mR").relation.name == "R"
        assert len(binary_schema.methods_for("R")) == 1

    def test_unknown_lookups_raise(self, binary_schema):
        with pytest.raises(SchemaError):
            binary_schema.relation("Z")
        with pytest.raises(SchemaError):
            binary_schema.access_method("nope")
        with pytest.raises(SchemaError):
            binary_schema.methods_for("Z")

    def test_fixed_and_accessible_relations(self):
        builder = SchemaBuilder()
        builder.relation("R", [("a", "D")])
        builder.relation("Fixed", [("a", "D")])
        builder.access("m", "R", inputs=[], dependent=False)
        schema = builder.build()
        assert [r.name for r in schema.accessible_relations()] == ["R"]
        assert [r.name for r in schema.fixed_relations()] == ["Fixed"]
        assert not schema.has_access("Fixed")

    def test_all_independent_and_dependent(self, binary_schema, dependent_schema):
        assert binary_schema.all_independent()
        assert not binary_schema.all_dependent()
        assert dependent_schema.all_dependent()

    def test_duplicate_names_rejected(self):
        builder = SchemaBuilder()
        builder.relation("R", [("a", "D")])
        with pytest.raises(SchemaError):
            builder.relation("R", [("a", "D")])

    def test_extend_creates_new_schema(self, binary_schema):
        domain = AbstractDomain("D")
        extra = Relation.make("T", [("a", domain)])
        extended = binary_schema.extend([extra])
        assert extended.has_relation("T")
        assert not binary_schema.has_relation("T")

    def test_output_domains(self, mixed_schema):
        names = {domain.name for domain in mixed_schema.output_domains()}
        # mA outputs an E value, mB outputs a D value, mC outputs a D value.
        assert names == {"D", "E"}

    def test_max_arity(self, mixed_schema):
        assert mixed_schema.max_arity() == 2

    def test_duplicate_method_name_rejected(self):
        builder = SchemaBuilder()
        builder.relation("R", [("a", "D")])
        builder.access("m", "R", inputs=[])
        with pytest.raises(SchemaError):
            schema = builder.build()
            method = schema.access_method("m")
            schema.add_access_method(method)
