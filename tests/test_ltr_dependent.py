"""Tests for long-term relevance with dependent accesses (Section 5)."""

from __future__ import annotations

import pytest

from repro import Access, Configuration, is_long_term_relevant, parse_cq, parse_pq
from repro.core import (
    ContainmentOptions,
    is_ltr_direct,
    is_ltr_small_arity,
    is_ltr_via_containment_cq,
    is_ltr_via_containment_pq,
)
from repro.exceptions import QueryError
from repro.workloads import dependent_chain_scenario, small_arity_scenario


class TestDirectSearch:
    def test_example_2_1_join_chain(self, mixed_schema):
        """An access on A is LTR for A ⋈ B because its outputs feed the B access."""
        query = parse_cq(mixed_schema, "A(x, y), B(y, z)")
        configuration = Configuration.empty(mixed_schema)
        domain = mixed_schema.relation("A").domain_of(0)
        configuration.add_constant("start", domain)
        access = Access(mixed_schema.access_method("mA"), ("start",))
        assert is_ltr_direct(query, access, configuration, mixed_schema)

    def test_chain_scenario_relevant(self):
        scenario = dependent_chain_scenario(3)
        assert is_ltr_direct(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )

    def test_chain_scenario_wrong_start_not_well_formed(self):
        scenario = dependent_chain_scenario(2)
        access = Access(scenario.schema.access_method("accL1"), ("unknown",))
        assert not is_ltr_direct(
            scenario.query, access, scenario.configuration, scenario.schema
        )

    def test_access_on_last_link_alone_is_relevant_only_with_known_input(self):
        scenario = dependent_chain_scenario(2)
        schema = scenario.schema
        domain = schema.relation("L2").domain_of(0)
        configuration = scenario.configuration.with_constants([("mid", domain)])
        access = Access(schema.access_method("accL2"), ("mid",))
        # L1 can still be produced from "start", so the L2 access can matter.
        assert is_ltr_direct(scenario.query, access, configuration, schema)

    def test_certain_query_never_relevant(self):
        scenario = dependent_chain_scenario(2)
        configuration = Configuration(
            scenario.schema, {"L1": [("start", "m")], "L2": [("m", "end")]}
        )
        assert not is_ltr_direct(
            scenario.query, scenario.access, configuration, scenario.schema
        )

    def test_relation_without_access_blocks(self, dependent_schema):
        # Q = R(x) ∧ S(x) is fine, but a query over a missing relation never
        # becomes true; here we check the direct search handles ground atoms
        # over inaccessible relations gracefully by never claiming relevance.
        query = parse_cq(dependent_schema, "R(x), S(x)")
        domain = dependent_schema.relation("R").domain_of(0)
        configuration = Configuration.empty(dependent_schema).with_constants(
            [("v", domain)]
        )
        access = Access(dependent_schema.access_method("accR"), ("v",))
        assert is_ltr_direct(query, access, configuration, dependent_schema)

    def test_non_boolean_rejected(self, dependent_schema):
        query = parse_cq(dependent_schema, "Q(x) :- R(x)")
        access = Access(dependent_schema.access_method("accS"), ())
        with pytest.raises(QueryError):
            is_ltr_direct(
                query, access, Configuration.empty(dependent_schema), dependent_schema
            )


class TestContainmentBasedProcedures:
    def test_cq_procedure_agrees_with_direct_on_chain(self):
        scenario = dependent_chain_scenario(2)
        direct = is_ltr_direct(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )
        via_containment = is_ltr_via_containment_cq(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )
        assert direct == via_containment is True

    def test_pq_procedure_agrees_with_direct_on_chain(self):
        scenario = dependent_chain_scenario(2)
        direct = is_ltr_direct(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )
        via_containment = is_ltr_via_containment_pq(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )
        assert direct == via_containment is True

    def test_cq_procedure_handles_repeated_subgoals(self):
        """Regression: the compatible/other split must partition atom
        *occurrences* by index — an equality-based membership split conflates
        duplicate subgoals."""
        scenario = dependent_chain_scenario(2)
        query = parse_cq(
            scenario.schema, "L1(x, y), L1(x, y), L2(y, z)", name="dup-subgoal"
        )
        assert len(query.atoms) == 3  # the duplicate occurrence is retained
        direct = is_ltr_direct(
            query, scenario.access, scenario.configuration, scenario.schema
        )
        via_containment = is_ltr_via_containment_cq(
            query, scenario.access, scenario.configuration, scenario.schema
        )
        assert direct == via_containment is True

    def test_cq_procedure_repeated_subgoal_negative_case(self, dependent_schema):
        """Duplicated subgoals must not flip a negative verdict either."""
        query = parse_cq(dependent_schema, "S(x), S(x)", name="dup-negative")
        domain = dependent_schema.relation("R").domain_of(0)
        configuration = Configuration.empty(dependent_schema).with_constants(
            [("v", domain)]
        )
        access = Access(dependent_schema.access_method("accR"), ("v",))
        assert not is_ltr_direct(query, access, configuration, dependent_schema)
        assert not is_ltr_via_containment_cq(
            query, access, configuration, dependent_schema
        )

    def test_cq_procedure_negative_case(self, dependent_schema):
        """Example 3.2 flipped: the access on R cannot matter for ∃x S(x)."""
        query = parse_cq(dependent_schema, "S(x)")
        domain = dependent_schema.relation("R").domain_of(0)
        configuration = Configuration.empty(dependent_schema).with_constants(
            [("v", domain)]
        )
        access = Access(dependent_schema.access_method("accR"), ("v",))
        assert not is_ltr_direct(query, access, configuration, dependent_schema)
        assert not is_ltr_via_containment_cq(
            query, access, configuration, dependent_schema
        )
        assert not is_ltr_via_containment_pq(
            query, access, configuration, dependent_schema
        )

    def test_facade_auto_uses_direct_for_dependent(self):
        scenario = dependent_chain_scenario(2)
        assert is_long_term_relevant(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )
        assert is_long_term_relevant(
            scenario.query,
            scenario.access,
            scenario.configuration,
            scenario.schema,
            method="containment-cq",
        )

    def test_unknown_method_rejected(self):
        scenario = dependent_chain_scenario(2)
        with pytest.raises(QueryError):
            is_long_term_relevant(
                scenario.query,
                scenario.access,
                scenario.configuration,
                scenario.schema,
                method="nope",
            )


class TestSmallArity:
    def test_small_arity_scenario(self):
        scenario = small_arity_scenario(3)
        assert is_ltr_small_arity(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )

    def test_preconditions_enforced(self, binary_schema):
        # binary_schema has independent methods, violating Theorem 6.1.
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        access = Access(binary_schema.access_method("mR"), (2,))
        with pytest.raises(QueryError):
            is_ltr_small_arity(
                query, access, Configuration.empty(binary_schema), binary_schema
            )

    def test_disconnected_query_rejected(self):
        scenario = small_arity_scenario(2)
        disconnected = parse_cq(scenario.schema, "L1(x, y), L2(u, v)")
        with pytest.raises(QueryError):
            is_ltr_small_arity(
                disconnected, scenario.access, scenario.configuration, scenario.schema
            )

    def test_chain_bound_zero_misses_witnesses_beyond_direct_production(self):
        """The chain-length knob is a real budget: with more links allowed the
        procedure finds witnesses needing support chains."""
        scenario = dependent_chain_scenario(3)
        schema = scenario.schema
        # Access to the *last* link; its input value is unknown, so a witness
        # must build a support chain from "start" through L1 and L2.
        domain = schema.relation("L3").domain_of(0)
        configuration = scenario.configuration
        access = Access(schema.access_method("accL3"), ("start",))
        # Binding "start" has the wrong provenance for L3 but is well-formed;
        # the witness maps the L3 subgoal to the access and produces L1, L2.
        assert is_ltr_small_arity(
            scenario.query, access, configuration, schema, chain_length_bound=6
        )
