"""Tests for immediate relevance (Proposition 4.1)."""

from __future__ import annotations

import pytest

from repro import Access, Configuration, is_immediately_relevant, parse_cq, parse_pq
from repro.exceptions import QueryError


class TestImmediateRelevance:
    def test_not_relevant_when_query_certain(self, binary_schema):
        configuration = Configuration(binary_schema, {"R": [(1, 2)], "S": [(2, 3)]})
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        access = Access(binary_schema.access_method("mR"), (2,))
        assert not is_immediately_relevant(query, access, configuration)

    def test_relevant_when_single_access_completes_query(self, binary_schema):
        configuration = Configuration(binary_schema, {"S": [(2, 3)]})
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        access = Access(binary_schema.access_method("mR"), (2,))
        assert is_immediately_relevant(query, access, configuration)

    def test_not_relevant_when_two_accesses_needed(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        access = Access(binary_schema.access_method("mR"), (2,))
        assert not is_immediately_relevant(query, access, configuration)

    def test_binding_mismatch_blocks_relevance(self, binary_schema):
        configuration = Configuration(binary_schema, {"S": [(2, 3)]})
        query = parse_cq(binary_schema, "R(x, 5), S(5, z)")
        # The access binds the second place of R to 2, but the query requires 5.
        access = Access(binary_schema.access_method("mR"), (2,))
        assert not is_immediately_relevant(query, access, configuration)

    def test_access_to_relation_not_in_query_is_irrelevant(self, binary_schema):
        configuration = Configuration(binary_schema, {"R": [(1, 2)]})
        query = parse_cq(binary_schema, "R(x, y), R(y, z)")
        access = Access(binary_schema.access_method("mS"), (2,))
        assert not is_immediately_relevant(query, access, configuration)

    def test_repeated_relation_completed_by_one_access(self, binary_schema):
        configuration = Configuration(binary_schema, {"R": [(1, 2)]})
        query = parse_cq(binary_schema, "R(x, y), R(y, z)")
        access = Access(binary_schema.access_method("mR"), (3,))
        # The access can return R(2, 3), completing the join with R(1, 2).
        assert is_immediately_relevant(query, access, configuration)

    def test_positive_query_disjunct(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        query = parse_pq(binary_schema, "R(x, y) | (S(x, y) & S(y, z))")
        access = Access(binary_schema.access_method("mR"), (7,))
        # The first disjunct is witnessed entirely by the access.
        assert is_immediately_relevant(query, access, configuration)

    def test_positive_query_needs_both_conjuncts(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        query = parse_pq(binary_schema, "R(x, y) & S(y, z)")
        access = Access(binary_schema.access_method("mR"), (7,))
        assert not is_immediately_relevant(query, access, configuration)

    def test_dependent_access_same_result(self, dependent_schema):
        domain = dependent_schema.relation("R").domain_of(0)
        configuration = Configuration.empty(dependent_schema).with_constants(
            [("v", domain)]
        )
        query = parse_cq(dependent_schema, "R(x)")
        access = Access(dependent_schema.access_method("accR"), ("v",))
        assert is_immediately_relevant(query, access, configuration)

    def test_assume_not_certain_skips_precheck(self, binary_schema):
        configuration = Configuration(binary_schema, {"R": [(1, 2)], "S": [(2, 3)]})
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        access = Access(binary_schema.access_method("mR"), (2,))
        # With the certainty pre-check skipped, the NP part alone answers true
        # (the access could return a matching fact); the caller is responsible
        # for the precondition.
        assert is_immediately_relevant(
            query, access, configuration, assume_not_certain=True
        )

    def test_non_boolean_rejected(self, binary_schema):
        query = parse_cq(binary_schema, "Q(x) :- R(x, y)")
        access = Access(binary_schema.access_method("mR"), (2,))
        with pytest.raises(QueryError):
            is_immediately_relevant(query, access, Configuration.empty(binary_schema))

    def test_constants_only_query(self, binary_schema):
        configuration = Configuration.empty(binary_schema)
        query = parse_cq(binary_schema, "R(1, 2)")
        matching = Access(binary_schema.access_method("mR"), (2,))
        conflicting = Access(binary_schema.access_method("mR"), (9,))
        assert is_immediately_relevant(query, matching, configuration)
        assert not is_immediately_relevant(query, conflicting, configuration)
