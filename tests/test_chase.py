"""Unit tests for the crayfish-chase production-plan search."""

from __future__ import annotations

import pytest

from repro import Configuration, Fact, SchemaBuilder
from repro.chase import FreshConstants, can_ever_produce, iter_production_plans
from repro.schema import AbstractDomain


class TestFreshConstants:
    def test_fresh_values_avoid_reserved(self):
        fresh = FreshConstants({"fresh:D:0"})
        domain = AbstractDomain("D")
        value = fresh.new(domain)
        assert value != "fresh:D:0"
        assert fresh.new(domain) != value

    def test_enumerated_domain_exhaustion(self):
        domain = AbstractDomain("B", frozenset({0, 1}))
        fresh = FreshConstants({0})
        assert fresh.new(domain) == 1
        assert fresh.new(domain) is None

    def test_several(self):
        domain = AbstractDomain("D")
        fresh = FreshConstants()
        assert len(fresh.several(domain, 3)) == 3


def _chain_schema():
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("L1", [("src", "D"), ("dst", "D")])
    builder.relation("L2", [("src", "D"), ("dst", "D")])
    builder.relation("Fixed", [("a", "D")])
    builder.access("m1", "L1", inputs=["src"], dependent=True)
    builder.access("m2", "L2", inputs=["src"], dependent=True)
    return builder.build()


class TestProductionPlans:
    def test_can_ever_produce(self):
        schema = _chain_schema()
        assert can_ever_produce(schema, Fact("L1", ("a", "b")))
        assert not can_ever_produce(schema, Fact("Fixed", ("a",)))

    def test_direct_production_when_inputs_known(self):
        schema = _chain_schema()
        domain = schema.relation("L1").domain_of(0)
        configuration = Configuration.empty(schema).with_constants([("a", domain)])
        targets = [Fact("L1", ("a", "b")), Fact("L2", ("b", "c"))]
        plans = list(iter_production_plans(schema, configuration, targets))
        assert plans
        plan = plans[0]
        assert plan.path.is_well_formed()
        assert plan.support_facts == ()
        final = plan.final_configuration()
        assert final.contains("L1", ("a", "b"))
        assert final.contains("L2", ("b", "c"))

    def test_ordering_is_discovered(self):
        """L2(b, c) can only be produced after L1(a, b), whatever the input order."""
        schema = _chain_schema()
        domain = schema.relation("L1").domain_of(0)
        configuration = Configuration.empty(schema).with_constants([("a", domain)])
        targets = [Fact("L2", ("b", "c")), Fact("L1", ("a", "b"))]
        plans = list(iter_production_plans(schema, configuration, targets))
        assert plans
        first_step = plans[0].path.steps[0]
        assert first_step.access.relation.name == "L1"

    def test_support_facts_introduced_when_needed(self):
        """Producing L2(v, w) with v unknown requires a support fact emitting v."""
        schema = _chain_schema()
        domain = schema.relation("L1").domain_of(0)
        configuration = Configuration.empty(schema).with_constants([("a", domain)])
        targets = [Fact("L2", ("v", "w"))]
        plans = list(iter_production_plans(schema, configuration, targets))
        assert plans
        assert any(plan.support_facts for plan in plans)
        for plan in plans:
            assert plan.path.is_well_formed()
            assert plan.final_configuration().contains("L2", ("v", "w"))

    def test_unproducible_target_yields_no_plan(self):
        schema = _chain_schema()
        configuration = Configuration.empty(schema)
        plans = list(
            iter_production_plans(schema, configuration, [Fact("Fixed", ("a",))])
        )
        assert plans == []

    def test_targets_already_in_configuration_are_skipped(self):
        schema = _chain_schema()
        configuration = Configuration(schema, {"L1": [("a", "b")]})
        plans = list(
            iter_production_plans(schema, configuration, [Fact("L1", ("a", "b"))])
        )
        assert plans
        assert plans[0].path.steps == []

    def test_support_budget_respected(self):
        schema = _chain_schema()
        configuration = Configuration.empty(schema)
        targets = [Fact("L2", ("v", "w"))]
        plans = list(
            iter_production_plans(
                schema, configuration, targets, max_support_facts=0
            )
        )
        assert plans == []


class TestReachabilityPruning:
    def test_target_supplied_values_are_not_pruned(self):
        """Regression: the root reachability prune must count the values the
        targets themselves make available — here the independent access on R
        invents the value that S's dependent input needs, so a plan exists
        even though no method *outputs* a D value."""
        builder = SchemaBuilder()
        builder.domain("D")
        builder.domain("E")
        builder.relation("R", [("x", "D")])
        builder.access("accR", "R", inputs=["x"], dependent=False)
        builder.relation("S", [("x", "D"), ("y", "E")])
        builder.access("accS", "S", inputs=["x"], dependent=True)
        schema = builder.build()
        configuration = Configuration.empty(schema)
        plans = list(
            iter_production_plans(
                schema,
                configuration,
                [Fact("R", ("f",)), Fact("S", ("f", "g"))],
            )
        )
        assert plans, "valid plan pruned by the reachability closure"
        produced = {fact.relation for fact in plans[0].target_facts}
        assert produced == {"R", "S"}
        assert plans[0].path.is_well_formed()

    def test_truly_unreachable_domain_still_pruned(self):
        """The fix must not disable pruning: a dependent input in a domain no
        method can populate admits no plan."""
        builder = SchemaBuilder()
        builder.domain("D")
        builder.domain("E")
        builder.relation("S", [("x", "D"), ("y", "E")])
        builder.access("accS", "S", inputs=["x"], dependent=True)
        schema = builder.build()
        configuration = Configuration.empty(schema)
        plans = list(
            iter_production_plans(
                schema, configuration, [Fact("S", ("unknown", "g"))]
            )
        )
        assert plans == []
