"""Delta-driven certainty maintenance and the zero-copy replay paths.

The load-bearing claims of the incremental certainty engine:

* advancing a :class:`~repro.queries.certain.CertaintyFixpoint` by each
  batch's facts yields *exactly* the verdict a from-scratch
  :func:`~repro.queries.is_certain` computes, at every intermediate
  configuration, for any arrival order and batching of the facts;
* dropping the state — an explicit ``reset()``, the ``max_facts`` bound, or
  eviction of the owning :class:`~repro.runtime.shards.SharedVerdictStore`
  from the server's bounded registry — only costs a restart, never a wrong
  verdict;
* the truncation replay and witness revalidation mutate the live
  configuration behind an undo log: zero ``copy()`` calls on the hot path,
  and the configuration is restored bit-for-bit (fingerprint included);
* the Proposition 3.5 containment memo returns the cached verdict for
  repeated probes and misses when any verdict-relevant input changes.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Access,
    AccessPath,
    AccessResponse,
    Configuration,
    Fact,
    Instance,
    SchemaBuilder,
    parse_cq,
)
from repro.core.longterm_dependent import (
    containment_cq_memo,
    is_ltr_via_containment_cq,
)
from repro.queries import is_certain
from repro.queries.certain import CertaintyFixpoint
from repro.runtime import QueryServer, RelevanceOracle, RuntimeMetrics
from repro.runtime.witness import LtrWitness
from repro.workloads import (
    bank_multi_query_scenario,
    dependent_chain_scenario,
    diamond_scenario,
    fanout_scenario,
    multi_query_scenario,
    star_join_scenario,
)


def _boolean(query):
    return query if query.is_boolean else query.boolean_closure()


def _fact_pool(configuration, hidden):
    """The hidden facts an answering run could merge, in a stable order."""
    pool = []
    for relation in hidden.schema.relations:
        for row in hidden.tuples(relation.name):
            if not configuration.contains(relation.name, row):
                pool.append(Fact(relation.name, row))
    pool.sort(key=repr)
    return pool


def _scenario_cases():
    cases = []
    bank = bank_multi_query_scenario(
        2, employees=3, offices=2, states=2, known_employees=1
    )
    cases.append(("bank", bank))
    cases.append(("star-join", star_join_scenario(2, spokes=3, keys=2)))
    cases.append(("multi-query", multi_query_scenario(3, branches=4)))
    for scenario in (fanout_scenario(3), diamond_scenario()):
        cases.append((scenario.name, scenario))
    prepared = []
    for name, scenario in cases:
        queries = getattr(scenario, "queries", None) or (scenario.query,)
        prepared.append(
            (
                name,
                scenario.configuration,
                tuple(_boolean(query) for query in queries),
                _fact_pool(scenario.configuration, scenario.hidden_instance),
            )
        )
    return prepared


CASES = _scenario_cases()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=st.sampled_from(CASES), seed=st.integers(min_value=0, max_value=10**6))
def test_delta_advanced_certainty_matches_from_scratch(case, seed):
    """Fixpoint verdicts ≡ from-scratch is_certain for any arrival order."""
    name, base_configuration, queries, pool = case
    rng = random.Random(seed)
    order = list(pool)
    rng.shuffle(order)
    configuration = base_configuration.copy()
    fixpoints = [CertaintyFixpoint(query) for query in queries]
    for fixpoint, query in zip(fixpoints, queries):
        assert fixpoint.supported, name
        verdict, outcome = fixpoint.check(configuration)
        assert outcome == "restarted"
        assert verdict == is_certain(query, configuration)
    index = 0
    while index < len(order):
        size = rng.randint(1, 4)
        batch = order[index : index + size]
        index += size
        for fact in batch:
            configuration.add_fact(fact)
        for fixpoint, query in zip(fixpoints, queries):
            fixpoint.absorb(batch)
            verdict, outcome = fixpoint.check(configuration)
            assert outcome == "advanced"
            assert verdict == is_certain(query, configuration)


def test_reset_falls_back_soundly():
    scenario = fanout_scenario(3)
    query = _boolean(scenario.query)
    configuration = scenario.configuration.copy()
    pool = _fact_pool(configuration, scenario.hidden_instance)
    fixpoint = CertaintyFixpoint(query)
    fixpoint.check(configuration)
    for fact in pool:
        configuration.add_fact(fact)
    fixpoint.absorb(pool)
    verdict, outcome = fixpoint.check(configuration)
    assert outcome == "advanced"
    assert verdict == is_certain(query, configuration)

    fixpoint.reset()
    assert fixpoint.fact_count() == 0
    # With no materialized state, absorb is a no-op — the next check must
    # rebuild from the configuration rather than trust a stale lineage.
    assert fixpoint.absorb(pool) == 0
    verdict, outcome = fixpoint.check(configuration)
    assert outcome == "restarted"
    assert verdict == is_certain(query, configuration)


def test_max_facts_bound_drops_state_but_keeps_verdicts():
    scenario = fanout_scenario(3)
    query = _boolean(scenario.query)
    configuration = scenario.configuration.copy()
    for fact in _fact_pool(configuration, scenario.hidden_instance):
        configuration.add_fact(fact)
    expected = is_certain(query, configuration)

    bounded = CertaintyFixpoint(query, max_facts=1)
    verdict, outcome = bounded.check(configuration)
    assert (verdict, outcome) == (expected, "restarted")
    assert bounded.fact_count() == 0  # over the bound: state dropped
    verdict, outcome = bounded.check(configuration)
    assert (verdict, outcome) == (expected, "restarted")
    assert bounded.peek(configuration) is None
    assert bounded.stats()["entries"] == 0


def test_store_eviction_drops_fixpoint_state():
    scenario = multi_query_scenario(2, branches=4, atoms_per_query=2)
    mediator = scenario.mediator()
    with QueryServer(mediator, max_stores=1) as server:
        first, second = scenario.queries[:2]
        store = server.store_for(first)
        store.certainty.check(mediator.configuration_view)
        # Registering a second query evicts the first store — and the
        # materialized certainty state it owns — from the bounded registry.
        server.store_for(second)
        fresh = server.store_for(first)
        assert fresh is not store
        assert fresh.certainty.fact_count() == 0
        verdict, outcome = fresh.certainty.check(mediator.configuration_view)
        assert outcome == "restarted"
        assert verdict == is_certain(_boolean(first), mediator.configuration_view)


def _witness_fixture():
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D"), ("b", "D")])
    builder.relation("S", [("a", "D"), ("b", "D")])
    builder.access("mR", "R", inputs=["a"], dependent=False)
    builder.access("mS", "S", inputs=["a"], dependent=True)
    schema = builder.build()
    query = parse_cq(schema, "R(x, y), S(y, z)")
    configuration = Configuration.empty(schema)
    steps = (
        AccessResponse(Access(schema.access_method("mR"), ("a",)), (("a", "b"),)),
        AccessResponse(Access(schema.access_method("mS"), ("b",)), (("b", "c"),)),
    )
    return schema, query, configuration, steps


def test_revalidate_performs_zero_configuration_copies(monkeypatch):
    """Regression: the revalidation hot path must never copy a configuration."""
    _schema, query, configuration, steps = _witness_fixture()
    witness = LtrWitness(steps)
    before = configuration.fingerprint()

    copies = []
    instance_copy = Instance.copy
    configuration_copy = Configuration.copy

    def counting_instance_copy(self):
        copies.append(self)
        return instance_copy(self)

    def counting_configuration_copy(self):
        copies.append(self)
        return configuration_copy(self)

    monkeypatch.setattr(Instance, "copy", counting_instance_copy)
    monkeypatch.setattr(Configuration, "copy", counting_configuration_copy)

    # The second step is a dependent access whose input only enters the
    # active domain through the first step's output, so the truncation is
    # empty and the query fails on it: a genuine witness.
    assert witness.revalidate(query, configuration) is True
    assert copies == []
    # The undo log restored the configuration exactly.
    assert configuration.fingerprint() == before
    assert configuration.size() == 0


def test_truncation_view_restores_configuration_on_exception():
    _schema, _query, configuration, steps = _witness_fixture()
    path = AccessPath(configuration, list(steps))
    before = configuration.fingerprint()

    class Boom(Exception):
        pass

    try:
        with path.truncation_view():
            raise Boom()
    except Boom:
        pass
    assert configuration.fingerprint() == before

    with path.truncation_view() as truncated:
        grown = truncated.fingerprint()
    # The view IS the initial configuration, temporarily grown; the
    # stand-alone copy agrees with what the view exposed.
    assert path.truncation_final_configuration().fingerprint() == grown
    assert configuration.fingerprint() == before


def test_containment_cq_memo_hits_and_invalidates():
    memo = containment_cq_memo()
    memo.clear()
    memo.reset_stats()
    scenario = dependent_chain_scenario(2)
    args = (scenario.query, scenario.access, scenario.configuration, scenario.schema)

    first = is_ltr_via_containment_cq(*args)
    stats = memo.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 0

    assert is_ltr_via_containment_cq(*args) == first
    stats = memo.stats()
    assert stats["hits"] == 1
    assert stats["entries"] == 1

    # Any configuration change is a different key: the memo must not serve
    # a verdict computed at another configuration.
    grown = scenario.configuration.copy()
    relation = scenario.schema.relations[0]
    grown.add(relation.name, tuple(f"fresh{i}" for i in range(relation.arity)))
    is_ltr_via_containment_cq(
        scenario.query, scenario.access, grown, scenario.schema
    )
    assert memo.stats()["misses"] == 2


def test_containment_cq_memo_surfaces_in_oracle_metrics():
    metrics = RuntimeMetrics()
    scenario = dependent_chain_scenario(2)
    RelevanceOracle(_boolean(scenario.query), scenario.schema, metrics=metrics)
    caches = metrics.snapshot()["caches"]
    assert "ltr.containment_cq_memo" in caches
    assert set(caches["ltr.containment_cq_memo"]) >= {"hits", "misses", "entries"}
