"""Unit tests for repro.queries: terms, atoms, CQs, PQs, parsing, evaluation,
homomorphisms, classical containment, certain answers."""

from __future__ import annotations

import pytest

from repro import (
    Atom,
    Configuration,
    ConjunctiveQuery,
    Instance,
    PositiveQuery,
    Variable,
    certain_answers,
    contained_in,
    cq_contained_in,
    evaluate,
    evaluate_boolean,
    is_certain,
    parse_atom,
    parse_cq,
    parse_pq,
    parse_query,
)
from repro.exceptions import QueryError
from repro.queries import (
    canonical_instance,
    find_homomorphism,
    find_homomorphisms,
    freeze_query,
    has_homomorphism,
)
from repro.queries.pq import AndNode, AtomNode, OrNode
from repro.queries.terms import constants_in, is_variable, variables_in


class TestTermsAndAtoms:
    def test_variable_identity(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")
        assert is_variable(Variable("x"))
        assert not is_variable("x")

    def test_variables_and_constants_in(self):
        terms = (Variable("x"), "a", Variable("x"), 3)
        assert variables_in(terms) == (Variable("x"),)
        assert constants_in(terms) == ("a", 3)

    def test_atom_arity_checked(self, binary_schema):
        relation = binary_schema.relation("R")
        with pytest.raises(QueryError):
            Atom(relation, (Variable("x"),))

    def test_atom_substitute_and_ground(self, binary_schema):
        relation = binary_schema.relation("R")
        atom = Atom(relation, (Variable("x"), 5))
        grounded = atom.substitute({Variable("x"): 3})
        assert grounded.is_ground()
        assert grounded.ground_values({}) == (3, 5)
        with pytest.raises(QueryError):
            atom.ground_values({})

    def test_atom_places_of(self, binary_schema):
        relation = binary_schema.relation("R")
        atom = Atom(relation, (Variable("x"), Variable("x")))
        assert atom.places_of(Variable("x")) == (0, 1)


class TestConjunctiveQuery:
    def test_structure_accessors(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), S(y, 5)")
        assert query.is_boolean
        assert set(v.name for v in query.variables) == {"x", "y"}
        assert query.constants == (5,)
        assert query.relation_names() == frozenset({"R", "S"})
        assert query.occurrences("R") == 1

    def test_free_variable_must_occur(self, binary_schema):
        relation = binary_schema.relation("R")
        atom = Atom(relation, (Variable("x"), Variable("y")))
        with pytest.raises(QueryError):
            ConjunctiveQuery((atom,), (Variable("z"),))

    def test_domain_discipline_enforced(self, mixed_schema):
        # Variable x would occur at a D place and an E place.
        with pytest.raises(QueryError):
            parse_cq(mixed_schema, "A(x, y), B(x, z)")

    def test_connected_components(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), S(y, z), R(u, v)")
        components = query.connected_components()
        assert len(components) == 2
        assert not query.is_connected()
        assert parse_cq(binary_schema, "R(x, y), S(y, z)").is_connected()

    def test_substitute_drops_bound_free_variables(self, binary_schema):
        query = parse_cq(binary_schema, "Q(x) :- R(x, y)")
        grounded = query.substitute({Variable("x"): 7})
        assert grounded.is_boolean
        assert grounded.atoms[0].terms[0] == 7

    def test_without_atoms(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        smaller = query.without_atoms([query.atoms[0]])
        assert len(smaller.atoms) == 1
        with pytest.raises(QueryError):
            smaller.without_atoms(list(smaller.atoms))

    def test_conjoin_and_rename_apart(self, binary_schema):
        left = parse_cq(binary_schema, "R(x, y)")
        right = parse_cq(binary_schema, "S(x, y)").rename_apart("_2")
        combined = left.conjoin(right)
        assert len(combined.atoms) == 2
        assert Variable("x_2") in combined.variables

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((), ())


class TestPositiveQuery:
    def test_from_cq_and_to_ucq(self, binary_schema):
        query = parse_pq(binary_schema, "R(x, y) & (S(y, z) | S(z, y))")
        disjuncts = query.to_ucq()
        assert len(disjuncts) == 2
        assert all(len(d.atoms) == 2 for d in disjuncts)

    def test_union_of_requires_same_free_variables(self, binary_schema):
        left = parse_cq(binary_schema, "Q(x) :- R(x, y)")
        right = parse_cq(binary_schema, "Q(z) :- S(z, y)")
        with pytest.raises(QueryError):
            PositiveQuery.union_of([left, right])

    def test_union_of_boolean(self, binary_schema):
        left = parse_cq(binary_schema, "R(x, y)")
        right = parse_cq(binary_schema, "S(x, y)")
        union = PositiveQuery.union_of([left, right])
        assert union.is_boolean
        assert len(union.to_ucq()) == 2

    def test_dnf_blowup_guard(self, binary_schema):
        text = " & ".join(f"(R(a{i}, b{i}) | S(a{i}, b{i}))" for i in range(6))
        query = parse_pq(binary_schema, text)
        with pytest.raises(QueryError):
            query.to_ucq(max_disjuncts=10)

    def test_domain_discipline_enforced(self, mixed_schema):
        with pytest.raises(QueryError):
            parse_pq(mixed_schema, "A(x, y) | B(x, y)")

    def test_substitute(self, binary_schema):
        query = parse_pq(binary_schema, "R(x, y) | S(x, y)")
        grounded = query.substitute({Variable("x"): 1})
        assert 1 in grounded.atoms[0].terms


class TestParser:
    def test_parse_atom_constants(self, binary_schema):
        atom = parse_atom(binary_schema, "R(x, 'hello')")
        assert atom.terms == (Variable("x"), "hello")
        atom2 = parse_atom(binary_schema, "R(3, -2)")
        assert atom2.terms == (3, -2)

    def test_parse_cq_with_head(self, binary_schema):
        query = parse_cq(binary_schema, "Ans(x) :- R(x, y), S(y, z)")
        assert query.name == "Ans"
        assert query.free_variables == (Variable("x"),)

    def test_parse_pq_precedence(self, binary_schema):
        query = parse_pq(binary_schema, "R(x, y) & S(y, z) | S(z, y)")
        # '&' binds tighter than '|': (R & S) | S.
        assert isinstance(query.root, OrNode)

    def test_parse_query_dispatch(self, binary_schema):
        assert isinstance(parse_query(binary_schema, "R(x, y), S(y, z)"), ConjunctiveQuery)
        assert isinstance(parse_query(binary_schema, "R(x, y) | S(x, y)"), PositiveQuery)

    def test_parse_errors(self, binary_schema):
        from repro.exceptions import ReproError

        with pytest.raises(QueryError):
            parse_cq(binary_schema, "R(x, y")
        with pytest.raises(ReproError):
            parse_cq(binary_schema, "Unknown(x)")
        with pytest.raises(QueryError):
            parse_atom(binary_schema, "R(x, y) extra")


class TestEvaluation:
    def test_boolean_cq(self, binary_schema, binary_instance):
        assert evaluate_boolean(parse_cq(binary_schema, "R(x, y), S(y, z)"), binary_instance)
        assert not evaluate_boolean(parse_cq(binary_schema, "R(x, x)"), binary_instance)

    def test_answers_projection(self, binary_schema, binary_instance):
        query = parse_cq(binary_schema, "A(x, z) :- R(x, y), S(y, z)")
        assert evaluate(query, binary_instance) == frozenset({(1, 5), (2, 5)})

    def test_constants_in_query(self, binary_schema, binary_instance):
        assert evaluate_boolean(parse_cq(binary_schema, "R(1, y)"), binary_instance)
        assert not evaluate_boolean(parse_cq(binary_schema, "R(5, y)"), binary_instance)

    def test_pq_structural_evaluation(self, binary_schema, binary_instance):
        query = parse_pq(binary_schema, "R(x, x) | S(x, 5)")
        assert evaluate_boolean(query, binary_instance)
        query2 = parse_pq(binary_schema, "R(x, x) | S(x, 9)")
        assert not evaluate_boolean(query2, binary_instance)

    def test_pq_answers(self, binary_schema, binary_instance):
        query = parse_pq(binary_schema, "A(x) :- R(x, 2) | S(x, 5)")
        assert evaluate(query, binary_instance) == frozenset({(1,), (2,), (3,)})

    def test_boolean_answer_encoding(self, binary_schema, binary_instance):
        query = parse_cq(binary_schema, "R(x, y)")
        assert evaluate(query, binary_instance) == frozenset({()})
        empty = Instance(binary_schema)
        assert evaluate(query, empty) == frozenset()


class TestHomomorphisms:
    def test_find_all_homomorphisms(self, binary_schema, binary_instance):
        query = parse_cq(binary_schema, "R(x, y)")
        homs = list(find_homomorphisms(query.atoms, binary_instance))
        assert len(homs) == 2

    def test_partial_assignment_respected(self, binary_schema, binary_instance):
        query = parse_cq(binary_schema, "R(x, y)")
        homs = list(
            find_homomorphisms(query.atoms, binary_instance, {Variable("x"): 2})
        )
        assert len(homs) == 1
        assert homs[0][Variable("y")] == 3

    def test_freeze_and_canonical_instance(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), S(y, 5)")
        store, assignment = freeze_query(query)
        assert store.size() == 2
        assert store.contains("S", (assignment[Variable("y")], 5))
        assert canonical_instance(query).size() == 2

    def test_has_homomorphism(self, binary_schema, binary_instance):
        query = parse_cq(binary_schema, "S(x, 5)")
        assert has_homomorphism(query.atoms, binary_instance)
        assert find_homomorphism(query.atoms, binary_instance) is not None


class TestClassicalContainment:
    def test_chandra_merlin(self, binary_schema):
        specific = parse_cq(binary_schema, "R(x, y), R(y, z)")
        general = parse_cq(binary_schema, "R(u, v)")
        assert cq_contained_in(specific, general)
        assert not cq_contained_in(general, specific)

    def test_containment_with_constants(self, binary_schema):
        specific = parse_cq(binary_schema, "R(1, y)")
        general = parse_cq(binary_schema, "R(x, y)")
        assert cq_contained_in(specific, general)
        assert not cq_contained_in(general, specific)

    def test_non_boolean_containment(self, binary_schema):
        specific = parse_cq(binary_schema, "Q(x) :- R(x, y), S(y, z)")
        general = parse_cq(binary_schema, "Q(u) :- R(u, v)")
        assert cq_contained_in(specific, general)
        assert not cq_contained_in(general, specific)

    def test_arity_mismatch_rejected(self, binary_schema):
        boolean = parse_cq(binary_schema, "R(x, y)")
        unary = parse_cq(binary_schema, "Q(x) :- R(x, y)")
        with pytest.raises(QueryError):
            cq_contained_in(boolean, unary)

    def test_pq_containment(self, binary_schema):
        union = parse_pq(binary_schema, "R(x, y) | S(x, y)")
        left = parse_cq(binary_schema, "R(x, y)")
        assert contained_in(left, union)
        assert not contained_in(union, left)

    def test_ucq_disjunct_not_contained_in_single_disjunct(self, binary_schema):
        # Containment of a UCQ does not require each disjunct to be contained
        # in a fixed disjunct of the right-hand side; but it does require each
        # disjunct to be contained in the whole right-hand side.
        union = parse_pq(binary_schema, "R(x, y) | S(x, y)")
        right = parse_pq(binary_schema, "S(a, b) | R(a, b)")
        assert contained_in(union, right)


class TestCertainAnswers:
    def test_certain_equals_evaluation_on_configuration(self, binary_schema):
        configuration = Configuration(binary_schema, {"R": [(1, 2)], "S": [(2, 3)]})
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        assert is_certain(query, configuration)
        assert certain_answers(query, configuration) == frozenset({()})

    def test_not_certain_on_partial_configuration(self, binary_schema):
        configuration = Configuration(binary_schema, {"R": [(1, 2)]})
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        assert not is_certain(query, configuration)

    def test_certain_answers_with_free_variables(self, binary_schema):
        configuration = Configuration(binary_schema, {"R": [(1, 2), (4, 2)]})
        query = parse_cq(binary_schema, "A(x) :- R(x, 2)")
        assert certain_answers(query, configuration) == frozenset({(1,), (4,)})
