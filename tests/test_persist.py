"""Persistence layer tests: storage backends, compaction, crash consistency,
cross-process sharing, and the decode/memo cache over them.

The load-bearing properties:

* **Compaction bounds the JSONL file** — repeated record/compact cycles
  leave at most one line per ``(query, schema, access)`` key, and online
  triggers fire without operator intervention.
* **Dedup is against the currently stored record** — an A→B→A witness churn
  re-lands A as the live record (an ever-appended digest set would leave a
  stale B winning after compaction).
* **Crash consistency** — truncated JSONL tails, killed-writer SQLite
  journals, and outright garbage files load cleanly, skipped records
  counted, never an exception.
* **Cross-backend equivalence** — the same record stream produces identical
  decoded record sets through JSONL and SQLite (Hypothesis property).
* **Multi-process sharing** — N concurrent processes appending to one
  SQLite store lose nothing, and a record landed by one process invalidates
  another's decode memo via the generation counter.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sqlite3
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.runtime import (
    JsonlWitnessStore,
    PersistentWitnessCache,
    QueryServer,
    RelevanceOracle,
    RuntimeMetrics,
    SqliteWitnessStore,
    open_witness_store,
    serve_in_background,
)
from repro.runtime.serialize import record_digest, schema_token
from repro.workloads import multi_query_scenario

TOOLS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")


def _payload(query="q", schema="s", access="a", variant=0):
    """A synthetic but structurally valid witness record payload."""
    value = ["i", variant]
    return {
        "v": 1,
        "query": query,
        "schema": schema,
        "access": access,
        "method": "m",
        "binding": [value],
        "steps": [["m", [value], [[value]]]],
    }


def _file_lines(path):
    with open(path, "rb") as handle:
        return [line for line in handle.read().split(b"\n") if line.strip()]


@pytest.fixture
def scenario():
    return multi_query_scenario(6, 5, 2, atoms_per_query=3, seed=3)


# --------------------------------------------------------------------------- #
# JSONL backend
# --------------------------------------------------------------------------- #
class TestJsonlStore:
    def test_dedup_is_against_current_record(self, tmp_path):
        store = JsonlWitnessStore(os.fspath(tmp_path / "w.jsonl"))
        a, b = _payload(variant=0), _payload(variant=1)
        assert store.append(a)
        assert not store.append(a)  # identical to the stored record
        assert store.append(b)  # supersedes it
        # A→B→A churn: A differs from the *current* record (B), so it must
        # land again — otherwise compaction would leave stale B winning.
        assert store.append(a)
        store.compact()
        (line,) = _file_lines(store.path)
        assert record_digest(json.loads(line)) == record_digest(a)

    def test_repeated_record_compact_cycles_bound_the_file(self, tmp_path):
        """Acceptance: ≤ one line per (query, schema, access) key survives."""
        path = os.fspath(tmp_path / "w.jsonl")
        store = JsonlWitnessStore(path, auto_compact=False)
        keys = [(f"q{i}", "s", f"a{j}") for i in range(3) for j in range(4)]
        for cycle in range(5):
            for q, s, a in keys:
                store.append(_payload(q, s, a, variant=cycle))
            result = store.compact()
            assert result.records_after == len(keys)
            assert len(_file_lines(path)) == len(keys)
        # The live set is the last variant per key.
        for pair in store.load_all().values():
            for payload in pair.values():
                assert payload["binding"] == [["i", 4]]

    def test_online_compaction_trigger(self, tmp_path):
        path = os.fspath(tmp_path / "w.jsonl")
        store = JsonlWitnessStore(path, compact_min_records=8, compact_ratio=2.0)
        for variant in range(32):
            store.append(_payload(variant=variant))
        stats = store.stats()
        assert stats["compactions"] >= 1
        # One live key: the compacted file holds far fewer lines than the
        # 32 appends would have left.
        assert len(_file_lines(path)) <= 8

    def test_truncated_tail_and_garbage_are_skipped(self, tmp_path):
        path = os.fspath(tmp_path / "w.jsonl")
        store = JsonlWitnessStore(path)
        store.append(_payload())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"query": "x"}\n')  # parseable, wrong shape
            handle.write('{"v": 1, "query": "trunc')  # interrupted append
        fresh = JsonlWitnessStore(path)
        assert set(fresh.load_pair("q", "s")) == {"a"}
        assert fresh.stats()["skipped_undecodable"] >= 2

    def test_append_after_truncated_tail_stays_parseable(self, tmp_path):
        path = os.fspath(tmp_path / "w.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"v": 1, "query": "trunc')  # no trailing newline
        store = JsonlWitnessStore(path)
        store.append(_payload())
        fresh = JsonlWitnessStore(path)
        assert set(fresh.load_pair("q", "s")) == {"a"}

    def test_tail_refresh_sees_external_appends(self, tmp_path):
        path = os.fspath(tmp_path / "w.jsonl")
        writer = JsonlWitnessStore(path)
        reader = JsonlWitnessStore(path)
        writer.append(_payload(access="a1"))
        assert set(reader.load_pair("q", "s")) == {"a1"}
        generation = reader.generation()
        writer.append(_payload(access="a2"))
        assert reader.generation() != generation
        assert set(reader.load_pair("q", "s")) == {"a1", "a2"}

    def test_external_compaction_triggers_full_reload(self, tmp_path):
        path = os.fspath(tmp_path / "w.jsonl")
        writer = JsonlWitnessStore(path, auto_compact=False)
        reader = JsonlWitnessStore(path)
        for variant in range(10):
            writer.append(_payload(variant=variant))
        assert len(reader.load_pair("q", "s")) == 1
        writer.compact()  # the file shrinks under the reader
        assert set(reader.load_pair("q", "s")) == {"a"}
        assert reader.stats()["reloads"] >= 1

    def test_unknown_record_versions_survive_compaction_opaquely(self, tmp_path):
        path = os.fspath(tmp_path / "w.jsonl")
        store = JsonlWitnessStore(path)
        store.append(_payload(access="old"))
        future = _payload(access="future")
        future["v"] = 99
        store.append(future)
        store.compact()
        kept = {json.loads(line)["access"] for line in _file_lines(path)}
        assert kept == {"old", "future"}


# --------------------------------------------------------------------------- #
# SQLite backend
# --------------------------------------------------------------------------- #
class TestSqliteStore:
    def test_upsert_keeps_one_row_per_key(self, tmp_path):
        store = SqliteWitnessStore(os.fspath(tmp_path / "w.sqlite"))
        for variant in range(5):
            assert store.append(_payload(variant=variant))
        assert not store.append(_payload(variant=4))  # dedup vs current
        stats = store.stats()
        assert stats["records"] == 1
        assert stats["dedup_skips"] == 1
        (payload,) = store.load_pair("q", "s").values()
        assert payload["binding"] == [["i", 4]]

    def test_generation_bumps_only_on_effective_writes(self, tmp_path):
        store = SqliteWitnessStore(os.fspath(tmp_path / "w.sqlite"))
        g0 = store.generation()
        store.append(_payload(variant=0))
        g1 = store.generation()
        assert g1 != g0
        store.append(_payload(variant=0))  # dedup skip
        assert store.generation() == g1

    def test_garbage_file_degrades_without_raising(self, tmp_path):
        path = os.fspath(tmp_path / "w.sqlite")
        with open(path, "wb") as handle:
            handle.write(b"this is not a database, sorry\n" * 64)
        store = SqliteWitnessStore(path)
        assert store.load_pair("q", "s") == {}
        assert store.append(_payload()) is False
        stats = store.stats()
        assert stats["broken"] is True
        assert stats["skipped_undecodable"] >= 1
        # The cache layer surfaces the count the same way as JSONL corruption.
        cache = PersistentWitnessCache(store=store)
        assert cache.stats["skipped_undecodable"] >= 1

    def test_killed_writer_store_loads_cleanly(self, tmp_path):
        path = os.fspath(tmp_path / "w.sqlite")
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_killed_writer, args=(path, 8))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == 7  # os._exit fired mid-stream, WAL left behind
        store = SqliteWitnessStore(path)
        loaded = store.load_pair("q", "s")
        # Committed rows are durable (WAL); the kill loses nothing committed
        # and the store opens without error.
        assert len(loaded) == 8
        assert store.stats()["broken"] is False

    def test_concurrent_processes_share_one_store(self, tmp_path):
        path = os.fspath(tmp_path / "w.sqlite")
        ctx = multiprocessing.get_context("spawn")
        workers = 4
        per_worker = 16
        procs = [
            ctx.Process(target=_concurrent_appender, args=(path, w, per_worker))
            for w in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = SqliteWitnessStore(path)
        loaded = store.load_pair("q", "s")
        # Every process's distinct keys landed, plus the shared contended key.
        assert len(loaded) == workers * per_worker + 1
        assert ("sqlite", 0) != store.generation()


# --------------------------------------------------------------------------- #
# Cross-backend equivalence
# --------------------------------------------------------------------------- #
_record_stream = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # query index
        st.integers(min_value=0, max_value=3),  # access index
        st.integers(min_value=0, max_value=2),  # content variant
    ),
    max_size=40,
)


class TestCrossBackendEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(stream=_record_stream, compact_every=st.integers(min_value=0, max_value=7))
    def test_same_stream_same_decoded_records(self, tmp_path_factory, stream, compact_every):
        tmp = tmp_path_factory.mktemp("xbackend")
        jsonl = JsonlWitnessStore(os.fspath(tmp / "w.jsonl"))
        sqlite_store = SqliteWitnessStore(os.fspath(tmp / "w.sqlite"))
        results = []
        for step, (qi, ai, variant) in enumerate(stream):
            payload = _payload(f"q{qi}", "s", f"a{ai}", variant)
            results.append(
                (jsonl.append(dict(payload)), sqlite_store.append(dict(payload)))
            )
            if compact_every and step % compact_every == compact_every - 1:
                jsonl.compact()
        # Append outcomes agree record by record, and the final decoded sets
        # are identical.
        assert all(j == s for j, s in results)

        def digests(store):
            return {
                key + (atoken,): record_digest(payload)
                for key, pair in store.load_all().items()
                for atoken, payload in pair.items()
            }

        assert digests(jsonl) == digests(sqlite_store)
        sqlite_store.close()

    def test_real_witness_stream_through_both_backends(self, tmp_path, scenario):
        jsonl_path = os.fspath(tmp_path / "w.jsonl")
        with QueryServer(scenario.mediator(), cache_path=jsonl_path) as server:
            server.answer(scenario.queries)
        sqlite_path = os.fspath(tmp_path / "w.sqlite")
        src = JsonlWitnessStore(jsonl_path)
        dst = SqliteWitnessStore(sqlite_path)
        for pair in src.load_all().values():
            for payload in pair.values():
                dst.append(payload)
        jsonl_cache = PersistentWitnessCache(jsonl_path)
        sqlite_cache = PersistentWitnessCache(sqlite_path)
        assert sqlite_cache.backend == "sqlite"
        total = 0
        for query in scenario.queries:
            via_jsonl = jsonl_cache.witnesses_for(query, scenario.schema)
            via_sqlite = sqlite_cache.witnesses_for(query, scenario.schema)
            assert set(via_jsonl) == set(via_sqlite)
            for akey, witness in via_jsonl.items():
                assert witness.steps == via_sqlite[akey].steps
            total += len(via_jsonl)
        assert total > 0


# --------------------------------------------------------------------------- #
# The cache layer over the backends
# --------------------------------------------------------------------------- #
class TestPersistentCacheLayer:
    def test_witnesses_for_returns_a_copy(self, tmp_path, scenario):
        """Regression: mutating the returned dict must not corrupt the memo
        shared by every later oracle."""
        path = os.fspath(tmp_path / "w.jsonl")
        with QueryServer(scenario.mediator(), cache_path=path) as server:
            server.answer(scenario.queries)
        cache = PersistentWitnessCache(path)
        query = scenario.queries[0]
        first = cache.witnesses_for(query, scenario.schema)
        assert first, "scenario must record at least one witness"
        first.clear()
        first["poison"] = object()
        second = cache.witnesses_for(query, scenario.schema)
        assert "poison" not in second
        assert second, "memo was corrupted by caller mutation"

    def test_generation_invalidates_memo_across_writers(self, tmp_path, scenario):
        path = os.fspath(tmp_path / "w.sqlite")
        with QueryServer(scenario.mediator(), cache_path=path) as server:
            server.answer(scenario.queries)
        query = scenario.queries[0]
        reader = PersistentWitnessCache(path)
        before = reader.witnesses_for(query, scenario.schema)
        assert before
        # A foreign writer (another process in production; a raw connection
        # here) deletes one of this query's rows and bumps the generation.
        from repro.runtime.serialize import query_token

        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "DELETE FROM witnesses WHERE rowid IN"
                " (SELECT rowid FROM witnesses WHERE query = ? LIMIT 1)",
                (query_token(query),),
            )
            conn.execute("UPDATE meta SET value = value + 1 WHERE key = 'generation'")
        conn.close()
        # The live reader notices the foreign write without being rebuilt:
        # its memo is invalidated by the moved generation token.
        after = reader.witnesses_for(query, scenario.schema)
        assert len(after) == len(before) - 1

    def test_oracle_cache_path_knob(self, tmp_path, scenario):
        path = os.fspath(tmp_path / "w.sqlite")
        query = scenario.queries[0]
        oracle = RelevanceOracle(query, scenario.schema, cache_path=path)
        assert oracle.persist is not None
        assert oracle.persist.backend == "sqlite"
        with pytest.raises(QueryError):
            RelevanceOracle(
                query,
                scenario.schema,
                cache_path=path,
                persist=oracle.persist,
            )

    def test_server_accepts_store_instance(self, tmp_path, scenario):
        store = SqliteWitnessStore(os.fspath(tmp_path / "w.sqlite"))
        with QueryServer(scenario.mediator(), persist=store) as server:
            server.answer(scenario.queries)
        assert store.stats()["records"] > 0

    def test_sqlite_warm_restart_revalidates(self, tmp_path, scenario):
        path = os.fspath(tmp_path / "w.sqlite")
        cold_metrics = RuntimeMetrics()
        with QueryServer(
            scenario.mediator(), cache_path=path, metrics=cold_metrics
        ) as cold_server:
            cold = cold_server.answer(scenario.queries)
        cold_counters = cold_metrics.snapshot()["counters"]
        assert cold_counters.get("persist.recorded", 0) > 0
        assert cold_counters.get("persist.sqlite.appends", 0) > 0
        assert cold_metrics.snapshot()["gauges"].get("persist.sqlite.records", 0) > 0

        warm_metrics = RuntimeMetrics()
        with QueryServer(
            scenario.mediator(), cache_path=path, metrics=warm_metrics
        ) as warm_server:
            warm = warm_server.answer(scenario.queries)
        warm_counters = warm_metrics.snapshot()["counters"]
        assert warm.answers == cold.answers
        assert warm_counters.get("witness.revalidated", 0) > 0
        assert warm_counters.get("oracle.fresh_searches", 0) < cold_counters.get(
            "oracle.fresh_searches", 0
        )
        # A fully warm run re-derives identical witnesses: every append is
        # deduplicated against the stored record.
        assert warm_counters.get("persist.sqlite.appends", 0) == 0

    def test_record_version_roundtrip_and_future_versions_skipped(
        self, tmp_path, scenario
    ):
        path = os.fspath(tmp_path / "w.jsonl")
        with QueryServer(scenario.mediator(), cache_path=path) as server:
            server.answer(scenario.queries)
        for line in _file_lines(path):
            assert json.loads(line)["v"] == 1
        # A record from a future writer is skipped at decode, not crashed on.
        from repro.runtime.serialize import query_token

        query = scenario.queries[0]
        future = _payload(
            query=query_token(query),
            schema=schema_token(scenario.schema),
            access="future-access",
        )
        future["v"] = 99
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(future) + "\n")
        cache = PersistentWitnessCache(path)
        decoded = cache.witnesses_for(query, scenario.schema)
        assert ("m", (0,)) not in decoded  # the future record did not decode
        assert cache.stats["skipped_undecodable"] >= 1
        # The store still carries the record opaquely (a rollback would
        # re-read it); only the decode layer skips it.
        assert "future-access" in JsonlWitnessStore(path).load_pair(
            query_token(query), schema_token(scenario.schema)
        )

    def test_healthz_reports_persistence(self, tmp_path, scenario):
        import urllib.request

        path = os.fspath(tmp_path / "w.sqlite")
        with QueryServer(scenario.mediator(), cache_path=path) as server:
            server.answer(scenario.queries)
            handle = serve_in_background(server)
            try:
                with urllib.request.urlopen(f"{handle.base_url}/healthz") as response:
                    health = json.loads(response.read().decode("utf-8"))
            finally:
                handle.shutdown()
        assert health["persistence"]["backend"] == "sqlite"
        assert health["persistence"]["records"] > 0


# --------------------------------------------------------------------------- #
# The compact_cache CLI
# --------------------------------------------------------------------------- #
class TestCompactCacheCli:
    def _run(self, *argv):
        env = dict(os.environ)
        src_dir = os.path.join(os.path.dirname(TOOLS_DIR), "src")
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, os.path.join(TOOLS_DIR, "compact_cache.py"), *argv],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )

    def test_compact_in_place(self, tmp_path):
        path = os.fspath(tmp_path / "w.jsonl")
        store = JsonlWitnessStore(path, auto_compact=False)
        for variant in range(10):
            store.append(_payload(variant=variant))
        assert len(_file_lines(path)) == 10
        proc = self._run("compact", path)
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["records_before"] == 10
        assert report["records_after"] == 1
        assert len(_file_lines(path)) == 1

    def test_migrate_with_verify(self, tmp_path):
        src = os.fspath(tmp_path / "w.jsonl")
        dst = os.fspath(tmp_path / "w.sqlite")
        store = JsonlWitnessStore(src)
        for index in range(6):
            store.append(_payload(access=f"a{index}", variant=index))
        proc = self._run("migrate", src, dst, "--verify")
        assert proc.returncode == 0, proc.stderr
        assert "all 6 record(s) match" in proc.stdout
        migrated = SqliteWitnessStore(dst)
        assert migrated.stats()["records"] == 6

    def test_verify_detects_lost_records(self, tmp_path):
        src = os.fspath(tmp_path / "w.jsonl")
        dst = os.fspath(tmp_path / "w.sqlite")
        JsonlWitnessStore(src).append(_payload())
        # A destination that silently drops writes (a corrupt non-database
        # file): migration appears to run, verify catches the loss.
        with open(dst, "wb") as handle:
            handle.write(b"not a database\n" * 64)
        proc = self._run("migrate", src, dst, "--verify")
        assert proc.returncode == 1
        assert "differ or are missing" in proc.stderr

    def test_stats_outputs_json(self, tmp_path):
        path = os.fspath(tmp_path / "w.sqlite")
        SqliteWitnessStore(path).append(_payload())
        proc = self._run("stats", path)
        assert proc.returncode == 0, proc.stderr
        stats = json.loads(proc.stdout)
        assert stats["backend"] == "sqlite"
        assert stats["records"] == 1


# --------------------------------------------------------------------------- #
# Spawn-safe worker functions (module level for pickling)
# --------------------------------------------------------------------------- #
def _killed_writer(path, n_records):
    from repro.runtime.storage import SqliteWitnessStore

    store = SqliteWitnessStore(path)
    for index in range(n_records):
        store.append(_payload(access=f"a{index}", variant=index))
    # Die without closing: the WAL and SHM files are left on disk, exactly
    # what a crashed server leaves behind.
    os._exit(7)


def _concurrent_appender(path, worker, n_records):
    from repro.runtime.storage import SqliteWitnessStore

    store = SqliteWitnessStore(path)
    for index in range(n_records):
        # Distinct keys per worker, plus one contended key all workers churn.
        store.append(_payload(access=f"w{worker}-a{index}", variant=index))
        store.append(_payload(access="contended", variant=worker * 1000 + index))
    store.close()
