"""Serialization layer tests: pickling round-trips, stable digests, and the
process-pool equivalence property.

The query-server runtime ships schemas, queries, accesses, and configuration
snapshots across process boundaries and keys a persistent cache on their
digests, so three properties are load-bearing:

* ``loads(dumps(x))`` preserves equality — and, for configurations, the
  content *fingerprint* (rebuilt, not copied, on the receiving side);
* the stable tokens of :mod:`repro.runtime.serialize` are pure functions of
  structure (equal objects agree, different objects disagree);
* a :class:`ProcessRelevancePool` worker returns exactly the verdict the
  in-process search computes, and its witness paths revalidate in-process.
"""

from __future__ import annotations

import pickle

import pytest

from repro import (
    AbstractDomain,
    Access,
    Configuration,
    Instance,
)
from repro.core import is_long_term_relevant
from repro.queries import is_certain
from repro.runtime import ProcessRelevancePool
from repro.runtime.serialize import (
    UnencodableValueError,
    access_token,
    configuration_digest,
    decode_json_steps,
    decode_json_value,
    decode_witness_steps,
    encode_json_steps,
    encode_json_value,
    encode_witness_steps,
    query_token,
    schema_token,
)
from repro.workloads import (
    bank_multi_query_scenario,
    diamond_scenario,
    fanout_scenario,
    multi_query_scenario,
    random_configuration,
    random_instance,
    random_schema,
    star_join_scenario,
)
from repro.workloads.query_generators import random_cq


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


# --------------------------------------------------------------------------- #
# Pickle round-trips
# --------------------------------------------------------------------------- #
class TestPickleRoundTrips:
    def test_domain_hash_is_recomputed_on_unpickle(self):
        domain = AbstractDomain("D")
        clone = roundtrip(domain)
        assert clone == domain
        # The cached hash must agree with a freshly constructed equal domain
        # in *this* process — mixing unpickled and fresh domains in one dict
        # must be safe.
        assert hash(clone) == hash(AbstractDomain("D"))
        lookup = {clone: 1, AbstractDomain("D"): 2}
        assert len(lookup) == 1

    def test_enumerated_domain_roundtrip(self):
        domain = AbstractDomain("B", frozenset({0, 1}))
        clone = roundtrip(domain)
        assert clone == domain and clone.values == domain.values
        assert clone.admits(1) and not clone.admits(2)

    def test_schema_roundtrip_preserves_structure(self):
        scenario = fanout_scenario(3)
        clone = roundtrip(scenario.schema)
        assert schema_token(clone) == schema_token(scenario.schema)
        assert [r.name for r in clone.relations] == [
            r.name for r in scenario.schema.relations
        ]
        assert [m.name for m in clone.access_methods] == [
            m.name for m in scenario.schema.access_methods
        ]
        # The clone is fully usable: build an access against it.
        Access(clone.access_method("accHub"), ("start",))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_query_roundtrip(self, seed):
        schema = random_schema(relations=3, max_arity=3, seed=seed)
        query = random_cq(schema, atoms=3, variables=4, seed=seed)
        clone = roundtrip(query)
        assert clone == query
        assert query_token(clone) == query_token(query)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_configuration_roundtrip_keeps_fingerprint(self, seed):
        schema = random_schema(relations=3, max_arity=3, seed=seed)
        instance = random_instance(schema, tuples_per_relation=6, seed=seed)
        configuration = random_configuration(instance, fraction=0.6, seed=seed)
        clone = roundtrip(configuration)
        assert isinstance(clone, Configuration)
        assert clone.fingerprint() == configuration.fingerprint()
        assert configuration_digest(clone) == configuration_digest(configuration)
        assert clone == configuration
        assert clone.seed_constants == configuration.seed_constants

    def test_configuration_roundtrip_keeps_seed_constants(self):
        scenario = fanout_scenario(2)
        configuration = scenario.configuration
        clone = roundtrip(configuration)
        assert clone.seed_constants == configuration.seed_constants
        assert clone.fingerprint() == configuration.fingerprint()
        # The clone keeps working as a live store.
        assert clone.add("Hub", ("start", "m9"))
        assert clone.fingerprint() != configuration.fingerprint()

    def test_instance_roundtrip(self, binary_instance):
        clone = roundtrip(binary_instance)
        assert isinstance(clone, Instance)
        assert clone == binary_instance
        assert clone.fingerprint() == binary_instance.fingerprint()

    def test_access_roundtrip(self):
        scenario = fanout_scenario(2)
        clone = roundtrip(scenario.access)
        assert clone == scenario.access
        assert access_token(clone) == access_token(scenario.access)


# --------------------------------------------------------------------------- #
# Stable tokens
# --------------------------------------------------------------------------- #
class TestStableTokens:
    def test_query_token_ignores_name_but_not_structure(self):
        scenario = multi_query_scenario(4, 4, 2, atoms_per_query=2, seed=0)
        q0, q1 = scenario.queries[0], scenario.queries[1]
        renamed = type(q0)(q0.atoms, q0.free_variables, "other-name")
        assert query_token(renamed) == query_token(q0)
        assert query_token(q0) != query_token(q1)

    def test_schema_token_distinguishes_schemas(self):
        assert schema_token(fanout_scenario(2).schema) != schema_token(
            fanout_scenario(3).schema
        )
        assert schema_token(fanout_scenario(3).schema) == schema_token(
            fanout_scenario(3).schema
        )

    def test_access_token_distinguishes_bindings(self):
        scenario = star_join_scenario(2, 3, 2, atoms_per_query=2)
        method = scenario.schema.access_method("accS1")
        assert access_token(Access(method, ("k0",))) != access_token(
            Access(method, ("k1",))
        )

    def test_configuration_digest_tracks_content(self):
        scenario = fanout_scenario(2)
        configuration = scenario.configuration.copy()
        before = configuration_digest(configuration)
        assert before == configuration_digest(scenario.configuration)
        configuration.add("Hub", ("start", "m0"))
        assert configuration_digest(configuration) != before


# --------------------------------------------------------------------------- #
# Witness step specs and the JSON value codec
# --------------------------------------------------------------------------- #
class TestWitnessWire:
    def test_steps_roundtrip_through_specs_and_json(self):
        scenario = fanout_scenario(3)
        from repro.core import long_term_relevance_with_witness

        verdict, steps = long_term_relevance_with_witness(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )
        assert verdict and steps
        specs = encode_witness_steps(steps)
        decoded = decode_witness_steps(specs, scenario.schema)
        assert [s.access.method.name for s in decoded] == [
            s.access.method.name for s in steps
        ]
        assert [s.facts for s in decoded] == [s.facts for s in steps]
        json_specs = decode_json_steps(encode_json_steps(specs))
        assert json_specs == specs

    def test_json_value_codec_roundtrips_scalars_and_tuples(self):
        values = ["text", 7, 1.5, True, False, None, ("nested", (1, 2)), []]
        for value in values:
            decoded = decode_json_value(encode_json_value(value))
            expected = tuple(value) if isinstance(value, list) else value
            assert decoded == expected
        # bool/int and str/int stay distinct through the tagging.
        assert decode_json_value(encode_json_value(True)) is True
        assert decode_json_value(encode_json_value(1)) == 1
        assert decode_json_value(encode_json_value("1")) == "1"

    def test_json_value_codec_rejects_exotic_values(self):
        with pytest.raises(UnencodableValueError):
            encode_json_value(object())
        with pytest.raises(UnencodableValueError):
            decode_json_value(["?", 1])


# --------------------------------------------------------------------------- #
# Process-pool equivalence: worker verdicts == in-process search
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def shared_pool():
    with ProcessRelevancePool(2) as pool:
        yield pool


class TestProcessPoolEquivalence:
    def _probes(self, scenario):
        schema = scenario.schema
        configuration = scenario.configuration.copy()
        for fact in scenario.hidden_instance.facts():
            configuration.add(fact.relation, fact.values)
        probes = []
        by_domain = configuration.active_values_by_domain()
        for method in schema.access_methods:
            pools = [
                by_domain.get(method.relation.domain_of(place), ())
                for place in method.input_places
            ]
            if all(pools):
                binding = tuple(pool[0] for pool in pools)
                probes.append(Access(method, binding))
        return configuration, probes

    @pytest.mark.parametrize("seed", [0, 1])
    def test_pool_ltr_matches_fresh_search(self, shared_pool, seed):
        for scenario in (fanout_scenario(3), diamond_scenario(2)):
            query = scenario.query
            configuration, probes = self._probes(scenario)
            futures = shared_pool.submit_ltr_many(
                query, scenario.schema, configuration, probes
            )
            for probe, future in zip(probes, futures):
                verdict, witness = shared_pool.ltr_result(future, scenario.schema)
                fresh = is_long_term_relevant(
                    query, probe, configuration, scenario.schema
                )
                assert verdict == fresh, (scenario.name, probe)
                if witness is not None:
                    # A returned path is a genuine witness at the probed
                    # configuration — revalidation replays it soundly.
                    assert witness.revalidate(query, configuration)

    def test_pool_certainty_and_answers_match(self, shared_pool):
        scenario = bank_multi_query_scenario(3, employees=5, offices=3, states=3)
        configuration, _probes = self._probes(scenario)
        for query in scenario.queries:
            certain = shared_pool.submit(
                "certain", query, scenario.schema, configuration
            ).result()[0]
            assert certain == is_certain(query, configuration)
            answers = shared_pool.submit(
                "answers", query, scenario.schema, configuration
            ).result()[0]
            from repro.queries import certain_answers

            assert answers == certain_answers(query, configuration)

    def test_pool_rejects_unknown_kind(self, shared_pool):
        scenario = fanout_scenario(2)
        future = shared_pool.submit(
            "nope", scenario.query, scenario.schema, scenario.configuration
        )
        with pytest.raises(ValueError):
            future.result()
