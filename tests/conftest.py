"""Shared fixtures: small schemas and configurations used across the test suite."""

from __future__ import annotations

import pytest

from repro import Configuration, Instance, SchemaBuilder


@pytest.fixture
def binary_schema():
    """Two binary relations R, S over one domain, independent accesses."""
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D"), ("b", "D")])
    builder.relation("S", [("a", "D"), ("b", "D")])
    builder.access("mR", "R", inputs=["b"], dependent=False)
    builder.access("mS", "S", inputs=["a"], dependent=False)
    return builder.build()


@pytest.fixture
def dependent_schema():
    """R unary with a dependent Boolean access, S unary with a free access (Example 3.2)."""
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D")])
    builder.relation("S", [("a", "D")])
    builder.access("accR", "R", inputs=["a"], dependent=True)
    builder.access("accS", "S", inputs=[], dependent=True)
    return builder.build()


@pytest.fixture
def mixed_schema():
    """A three-relation schema mixing dependent and independent methods."""
    builder = SchemaBuilder()
    builder.domain("D")
    builder.domain("E")
    builder.relation("A", [("x", "D"), ("y", "E")])
    builder.relation("B", [("x", "E"), ("y", "D")])
    builder.relation("C", [("x", "D")])
    builder.access("mA", "A", inputs=["x"], dependent=True)
    builder.access("mB", "B", inputs=["x"], dependent=True)
    builder.access("mC", "C", inputs=[], dependent=False)
    return builder.build()


@pytest.fixture
def binary_instance(binary_schema):
    return Instance(binary_schema, {"R": [(1, 2), (2, 3)], "S": [(2, 5), (3, 5)]})


@pytest.fixture
def binary_configuration(binary_schema):
    return Configuration(binary_schema, {"R": [(1, 2)]})
