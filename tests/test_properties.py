"""Property-based tests (hypothesis) for core invariants.

The invariants checked here are the load-bearing ones of the paper's model:

* evaluation of positive queries is monotone in the instance;
* certain answers only grow along well-formed access paths;
* the Chandra–Merlin containment test agrees with brute-force evaluation
  comparison on small instances;
* immediate relevance implies long-term relevance (an increasing response is
  a length-one witness path);
* the truncation of a path is a prefix semantically: its final configuration
  is contained in the full path's final configuration.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Access,
    AccessPath,
    AccessResponse,
    Configuration,
    Instance,
    SchemaBuilder,
    cq_contained_in,
    evaluate,
    evaluate_boolean,
    is_immediately_relevant,
)
from repro.core import is_ltr_independent
from repro.queries import ConjunctiveQuery
from repro.queries.atoms import Atom
from repro.queries.terms import Variable
from repro.workloads import random_cq


def _schema():
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D"), ("b", "D")])
    builder.relation("S", [("a", "D"), ("b", "D")])
    builder.access("mR", "R", inputs=["b"], dependent=False)
    builder.access("mS", "S", inputs=["a"], dependent=False)
    return builder.build()


SCHEMA = _schema()
VALUES = st.sampled_from(["v0", "v1", "v2"])
PAIRS = st.tuples(VALUES, VALUES)
FACTSETS = st.fixed_dictionaries(
    {
        "R": st.lists(PAIRS, max_size=5),
        "S": st.lists(PAIRS, max_size=5),
    }
)
QUERIES = st.integers(min_value=0, max_value=200).map(
    lambda seed: random_cq(SCHEMA, atoms=3, variables=3, seed=seed)
)


common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@common_settings
@given(facts=FACTSETS, extra=PAIRS, query=QUERIES)
def test_positive_query_evaluation_is_monotone(facts, extra, query):
    smaller = Instance(SCHEMA, facts)
    larger = smaller.copy()
    larger.add("R", extra)
    assert evaluate(query, smaller) <= evaluate(query, larger)


@common_settings
@given(facts=FACTSETS, query=QUERIES, binding=VALUES, response=st.lists(PAIRS, max_size=3))
def test_certain_answers_grow_along_paths(facts, query, binding, response):
    configuration = Configuration(SCHEMA, facts)
    access = Access(SCHEMA.access_method("mR"), (binding,))
    sound_response = AccessResponse(
        access, tuple((value, binding) for value, _ in response)
    )
    path = AccessPath(configuration, [sound_response])
    before = evaluate(query, configuration)
    after = evaluate(query, path.final_configuration())
    assert before <= after


@common_settings
@given(query1=QUERIES, query2=QUERIES, facts=FACTSETS)
def test_containment_test_is_sound_for_evaluation(query1, query2, facts):
    """If Q1 ⊑ Q2 (Chandra–Merlin) then Q1's answers are included in Q2's."""
    if cq_contained_in(query1, query2):
        instance = Instance(SCHEMA, facts)
        assert evaluate_boolean(query1, instance) <= evaluate_boolean(query2, instance)


@common_settings
@given(query=QUERIES, facts=FACTSETS, binding=VALUES)
def test_immediate_relevance_implies_long_term_relevance(query, facts, binding):
    configuration = Configuration(SCHEMA, facts)
    access = Access(SCHEMA.access_method("mR"), (binding,))
    if is_immediately_relevant(query, access, configuration):
        assert is_ltr_independent(query, access, configuration, SCHEMA)


@common_settings
@given(facts=FACTSETS, binding1=VALUES, binding2=VALUES, rows=st.lists(PAIRS, max_size=3))
def test_truncation_final_configuration_is_contained_in_full(facts, binding1, binding2, rows):
    configuration = Configuration(SCHEMA, facts)
    first = Access(SCHEMA.access_method("mR"), (binding1,))
    second = Access(SCHEMA.access_method("mS"), (binding2,))
    path = AccessPath(
        configuration,
        [
            AccessResponse(first, tuple((value, binding1) for value, _ in rows)),
            AccessResponse(second, tuple((binding2, value) for _, value in rows)),
        ],
    )
    truncated = path.truncation().final_configuration()
    full = path.final_configuration()
    assert truncated.issubset(full)


@common_settings
@given(query=QUERIES)
def test_query_contained_in_itself(query):
    assert cq_contained_in(query, query)


@common_settings
@given(facts=FACTSETS, query=QUERIES)
def test_canonical_instance_satisfies_its_query(facts, query):
    from repro.queries import canonical_instance

    assert evaluate_boolean(query, canonical_instance(query))
