"""Tests for long-term relevance with independent accesses (Section 4)."""

from __future__ import annotations

import pytest

from repro import Access, Configuration, is_long_term_relevant, parse_cq, parse_pq
from repro.core import is_ltr_independent, is_ltr_single_occurrence
from repro.exceptions import QueryError


class TestSingleOccurrence:
    """Proposition 4.3 and Example 4.2."""

    def test_example_4_2_not_relevant(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, 5), S(5, z)")
        configuration = Configuration(binary_schema, {"R": [(3, 5)]})
        access = Access(binary_schema.access_method("mR"), (5,))
        assert not is_ltr_single_occurrence(query, access, configuration)

    def test_example_4_2_relevant(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, 5), S(5, z)")
        configuration = Configuration(binary_schema, {"R": [(3, 6)]})
        access = Access(binary_schema.access_method("mR"), (5,))
        assert is_ltr_single_occurrence(query, access, configuration)

    def test_binding_conflict_is_not_relevant(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, 5), S(5, z)")
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mR"), (7,))
        assert not is_ltr_single_occurrence(query, access, configuration)

    def test_satisfied_component_blocks_relevance(self, binary_schema):
        # R(x, y) and S(u, v) are separate components; the R component is
        # already satisfied, so an access on R is not long-term relevant.
        query = parse_cq(binary_schema, "R(x, y), S(u, v)")
        configuration = Configuration(binary_schema, {"R": [(1, 2)]})
        access = Access(binary_schema.access_method("mR"), (9,))
        assert not is_ltr_single_occurrence(query, access, configuration)

    def test_repeated_relation_rejected(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), R(y, z)")
        access = Access(binary_schema.access_method("mR"), (2,))
        with pytest.raises(QueryError):
            is_ltr_single_occurrence(query, access, Configuration.empty(binary_schema))

    def test_agrees_with_general_procedure(self, binary_schema):
        cases = [
            ("R(x, 5), S(5, z)", {"R": [(3, 5)]}, (5,)),
            ("R(x, 5), S(5, z)", {"R": [(3, 6)]}, (5,)),
            ("R(x, y), S(y, z)", {}, (4,)),
            ("R(x, y), S(u, v)", {"R": [(1, 2)]}, (9,)),
        ]
        for text, facts, binding in cases:
            query = parse_cq(binary_schema, text)
            configuration = Configuration(binary_schema, facts)
            access = Access(binary_schema.access_method("mR"), binding)
            assert is_ltr_single_occurrence(
                query, access, configuration
            ) == is_ltr_independent(query, access, configuration, binary_schema)


class TestGeneralIndependent:
    """Proposition 4.5 and Example 4.4."""

    def test_example_4_4_not_relevant(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), R(x, 5)")
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mR"), (3,))
        assert not is_ltr_independent(query, access, configuration, binary_schema)

    def test_example_4_4_matching_binding_is_relevant(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), R(x, 5)")
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mR"), (5,))
        assert is_ltr_independent(query, access, configuration, binary_schema)

    def test_relation_not_in_query_is_irrelevant(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), R(y, z)")
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mS"), (1,))
        assert not is_ltr_independent(query, access, configuration, binary_schema)

    def test_certain_query_is_never_relevant(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y)")
        configuration = Configuration(binary_schema, {"R": [(1, 2)]})
        access = Access(binary_schema.access_method("mR"), (9,))
        assert not is_ltr_independent(query, access, configuration, binary_schema)

    def test_positive_query_relevance(self, binary_schema):
        query = parse_pq(binary_schema, "(R(x, y) & S(y, z)) | S(9, 9)")
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mR"), (4,))
        assert is_ltr_independent(query, access, configuration, binary_schema)

    def test_positive_query_already_satisfiable_without_access(self, binary_schema):
        # Both disjuncts avoid R entirely, so an R access can never matter.
        query = parse_pq(binary_schema, "S(x, y) | S(y, x)")
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mR"), (4,))
        assert not is_ltr_independent(query, access, configuration, binary_schema)

    def test_relation_without_access_method_blocks_witness(self):
        from repro import SchemaBuilder

        builder = SchemaBuilder()
        builder.domain("D")
        builder.relation("R", [("a", "D"), ("b", "D")])
        builder.relation("Fixed", [("a", "D")])
        builder.access("mR", "R", inputs=["b"], dependent=False)
        schema = builder.build()
        query = parse_cq(schema, "R(x, y), Fixed(y)")
        configuration = Configuration.empty(schema)
        access = Access(schema.access_method("mR"), (3,))
        # Fixed can never gain facts, so the conjunction can never become true.
        assert not is_ltr_independent(query, access, configuration, schema)
        # With the Fixed fact already known, the access becomes relevant.
        known = Configuration(schema, {"Fixed": [(3,)]})
        assert is_ltr_independent(query, access, known, schema)

    def test_facade_dispatches_to_independent(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        configuration = Configuration.empty(binary_schema)
        access = Access(binary_schema.access_method("mR"), (2,))
        assert is_long_term_relevant(query, access, configuration, binary_schema)

    def test_immediate_relevance_implies_long_term(self, binary_schema):
        from repro import is_immediately_relevant

        configuration = Configuration(binary_schema, {"S": [(2, 3)]})
        query = parse_cq(binary_schema, "R(x, y), S(y, z)")
        access = Access(binary_schema.access_method("mR"), (2,))
        assert is_immediately_relevant(query, access, configuration)
        assert is_ltr_independent(query, access, configuration, binary_schema)

    def test_non_boolean_rejected(self, binary_schema):
        query = parse_cq(binary_schema, "Q(x) :- R(x, y)")
        access = Access(binary_schema.access_method("mR"), (2,))
        with pytest.raises(QueryError):
            is_ltr_independent(
                query, access, Configuration.empty(binary_schema), binary_schema
            )
