"""Unit tests for the Datalog engine and the accessible-part construction."""

from __future__ import annotations

import pytest

from repro import Configuration, Instance, SchemaBuilder, Variable
from repro.datalog import (
    Literal,
    Program,
    Rule,
    accessible_part,
    accessible_program,
    accessible_values,
    evaluate_program,
    query_database,
)
from repro.exceptions import QueryError


def _x(name: str) -> Variable:
    return Variable(name)


class TestProgram:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(QueryError):
            Rule(Literal("p", (_x("x"),)), (Literal("q", (_x("y"),)),))

    def test_fact_must_be_ground(self):
        with pytest.raises(QueryError):
            Rule(Literal("p", (_x("x"),)))
        fact = Rule(Literal("p", (1,)))
        assert fact.is_fact

    def test_idb_edb_partition(self):
        program = Program(
            [
                Rule(Literal("t", (_x("x"), _x("y"))), (Literal("e", (_x("x"), _x("y"))),)),
                Rule(
                    Literal("t", (_x("x"), _x("z"))),
                    (Literal("e", (_x("x"), _x("y"))), Literal("t", (_x("y"), _x("z")))),
                ),
            ]
        )
        assert program.idb_predicates() == frozenset({"t"})
        assert program.edb_predicates() == frozenset({"e"})
        assert len(program.rules_for("t")) == 2
        assert not program.is_monadic()


class TestEngine:
    def test_transitive_closure(self):
        program = Program(
            [
                Rule(Literal("t", (_x("x"), _x("y"))), (Literal("e", (_x("x"), _x("y"))),)),
                Rule(
                    Literal("t", (_x("x"), _x("z"))),
                    (Literal("e", (_x("x"), _x("y"))), Literal("t", (_x("y"), _x("z")))),
                ),
            ]
        )
        database = evaluate_program(program, {"e": [(1, 2), (2, 3), (3, 4)]})
        assert (1, 4) in database["t"]
        assert len(database["t"]) == 6

    def test_facts_in_program(self):
        program = Program(
            [
                Rule(Literal("base", (1,))),
                Rule(Literal("copy", (_x("x"),)), (Literal("base", (_x("x"),)),)),
            ]
        )
        database = evaluate_program(program, {})
        assert database["copy"] == {(1,)}

    def test_query_database_projection(self):
        program = Program(
            [Rule(Literal("t", (_x("x"), _x("y"))), (Literal("e", (_x("x"), _x("y"))),))]
        )
        database = evaluate_program(program, {"e": [(1, 2), (1, 3)]})
        answers = query_database(database, Literal("t", (1, _x("y"))))
        assert answers == frozenset({(2,), (3,)})


class TestAccessiblePart:
    def _chain_setup(self):
        builder = SchemaBuilder()
        builder.domain("D")
        builder.relation("L1", [("src", "D"), ("dst", "D")])
        builder.relation("L2", [("src", "D"), ("dst", "D")])
        builder.access("m1", "L1", inputs=["src"], dependent=True)
        builder.access("m2", "L2", inputs=["src"], dependent=True)
        schema = builder.build()
        instance = Instance(
            schema,
            {
                "L1": [("a", "b"), ("x", "y")],
                "L2": [("b", "c"), ("y", "z")],
            },
        )
        return schema, instance

    def test_only_reachable_facts_are_accessible(self):
        schema, instance = self._chain_setup()
        configuration = Configuration.empty(schema)
        domain = schema.relation("L1").domain_of(0)
        configuration.add_constant("a", domain)
        reachable = accessible_part(instance, configuration)
        assert reachable.contains("L1", ("a", "b"))
        assert reachable.contains("L2", ("b", "c"))
        assert not reachable.contains("L1", ("x", "y"))
        assert not reachable.contains("L2", ("y", "z"))

    def test_accessible_values(self):
        schema, instance = self._chain_setup()
        configuration = Configuration.empty(schema)
        domain = schema.relation("L1").domain_of(0)
        configuration.add_constant("a", domain)
        values = accessible_values(instance, configuration)
        assert values["D"] == {"a", "b", "c"}

    def test_independent_methods_expose_everything(self):
        builder = SchemaBuilder()
        builder.domain("D")
        builder.relation("R", [("a", "D")])
        builder.access("m", "R", inputs=["a"], dependent=False)
        schema = builder.build()
        instance = Instance(schema, {"R": [("u",), ("v",)]})
        reachable = accessible_part(instance, Configuration.empty(schema))
        assert reachable.size() == 2

    def test_relation_without_access_stays_fixed(self):
        builder = SchemaBuilder()
        builder.domain("D")
        builder.relation("R", [("a", "D")])
        builder.relation("Fixed", [("a", "D")])
        builder.access("m", "R", inputs=[], dependent=True)
        schema = builder.build()
        instance = Instance(schema, {"R": [("u",)], "Fixed": [("w",)]})
        configuration = Configuration(schema, {"Fixed": [("k",)]})
        # "k" is not in the hidden instance, but the point here is reachability:
        # the Fixed relation never grows beyond the configuration.
        reachable = accessible_part(instance, configuration)
        assert reachable.contains("R", ("u",))
        assert reachable.contains("Fixed", ("k",))
        assert not reachable.contains("Fixed", ("w",))

    def test_program_is_well_formed(self):
        schema, _ = self._chain_setup()
        program = accessible_program(schema)
        assert len(program) > 0
        assert "acc_rel__L1" in program.idb_predicates()
