"""Tests for the tracing/telemetry layer (tracing, metrics histograms, export).

Covers, roughly in order:

* span mechanics — implicit nesting, explicit parents, annotation, the
  ambient-tracer plumbing, and the no-op recorder's negligible overhead;
* cross-boundary propagation — spans recorded from executor worker threads
  under an explicitly captured parent, and worker-process span trees
  round-tripped through the plain-tuple wire format and re-anchored;
* latency histograms — bounded quantile estimates and their surfacing
  through :meth:`RuntimeMetrics.snapshot`;
* the :meth:`RuntimeMetrics.reset` cache-gauge regression (registered
  caches' hit/miss counters must reset too);
* exporters — Prometheus text, JSON snapshot, Chrome-trace file, and the
  ``explain`` report;
* end-to-end span trees — a traced guided strategy run and a traced
  multi-query server batch spanning the thread pool and a 4-worker process
  pool, with well-nestedness and parentage assertions, plus structural
  equality between sequential and concurrent runs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import Counter

import pytest

from repro.planner import relevance_guided_strategy
from repro.runtime import (
    NO_TRACER,
    LatencyHistogram,
    LRUCache,
    QueryServer,
    RuntimeMetrics,
    ShardedLRUCache,
    Tracer,
    activate_tracer,
    current_tracer,
    encode_spans,
    explain_trace,
    json_snapshot,
    prometheus_text,
    write_chrome_trace,
)
from repro.workloads import bank_multi_query_scenario, fanout_scenario

# ------------------------------------------------------------------ #
# Helpers
# ------------------------------------------------------------------ #

#: Tolerance for parent/child interval containment.  Local spans mix a
#: ``time.time()`` epoch with ``perf_counter`` durations, and remote spans
#: use the worker's clock, so exact containment is not guaranteed.
_EPSILON = 0.05


def assert_well_formed(spans):
    """Structural sanity of a span list: unique ids, resolvable parents,
    children starting no earlier than their (same-process) parents.

    Full interval containment is deliberately *not* asserted: the server
    re-anchors later phases (e.g. a round's ``verdicts`` span) under the
    already-closed span that screened the same query's candidates, so a
    child may legitimately outlive its parent.  Causal ordering still
    holds — a child can never start before the span that caused it.
    """
    by_id = {span.span_id: span for span in spans}
    assert len(by_id) == len(spans), "span ids must be unique"
    for span in spans:
        assert span.duration >= 0.0
        if span.parent_id is None:
            continue
        assert span.parent_id in by_id, f"dangling parent for {span.name}"
        parent = by_id[span.parent_id]
        assert span.trace_id == parent.trace_id
        if not span.remote and not parent.remote:
            assert span.start >= parent.start - _EPSILON


def span_children(spans):
    """Map each span id to its child spans."""
    children = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    return children


#: The spans whose counts are pure functions of (query, configuration
#: content): the round/screen/verdict/retrieval skeleton.  Deliberately
#: excluded: certainty probes and oracle-internal children
#: (witness-revalidate / fresh-search) — a ``stop()`` certainty check runs
#: against the *live* mid-batch configuration, so how many compute (vs. hit
#: the fingerprint cache) depends on merge interleaving, and whether a
#: verdict revalidates or inherits depends on which snapshot it was cached
#: at.  Verdicts and answers stay identical either way; those internal
#: paths are exactly the part the outcome tags exist to make visible.
_SKELETON = frozenset(
    {
        "query",
        "round",
        "screen.prefilter",
        "screen.group",
        "oracle",
        "access-batch",
        "source-call",
    }
)


def structure(spans):
    """A timing-free structural fingerprint: (name, parent name) multiset
    over the deterministic skeleton spans."""
    by_id = {span.span_id: span for span in spans}
    return Counter(
        (
            span.name,
            by_id[span.parent_id].name if span.parent_id in by_id else None,
        )
        for span in spans
        if span.name in _SKELETON
    )


# ------------------------------------------------------------------ #
# Span mechanics
# ------------------------------------------------------------------ #


class TestSpanBasics:
    def test_implicit_nesting_follows_the_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = tracer.spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.spans()
        assert first.trace_id != second.trace_id
        assert tracer.trace_ids() == [first.trace_id, second.trace_id]

    def test_explicit_parent_overrides_the_stack(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            ctx = a.context
        with tracer.span("b"):
            with tracer.span("late-child", parent=ctx) as child:
                pass
        assert child.parent_id == a.span_id
        assert child.trace_id == a.trace_id

    def test_tags_and_annotate(self):
        tracer = Tracer()
        with tracer.span("work", kind="test") as span:
            span.annotate(outcome="done", items=3)
        (recorded,) = tracer.spans()
        assert recorded.tags == {"kind": "test", "outcome": "done", "items": 3}

    def test_record_span_for_externally_timed_work(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            ctx = parent.context
        span = tracer.record_span(
            "measured", start=time.time() - 0.5, duration=0.25, parent=ctx
        )
        assert span.parent_id == parent.span_id
        assert span.duration == 0.25
        assert span in tracer.spans()

    def test_reset_clears_collected_spans(self):
        tracer = Tracer()
        with tracer.span("gone"):
            pass
        tracer.reset()
        assert tracer.spans() == []

    def test_exception_still_records_the_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert [span.name for span in tracer.spans()] == ["failing"]
        # The stack unwound: the next span is a fresh root.
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None


class TestAmbientTracer:
    def test_default_is_the_noop_tracer(self):
        assert current_tracer() is NO_TRACER
        assert not NO_TRACER.enabled

    def test_activate_and_restore(self):
        tracer = Tracer()
        with activate_tracer(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
            with activate_tracer(None) as inner:
                assert not inner.enabled
                assert current_tracer() is NO_TRACER
            assert current_tracer() is tracer
        assert current_tracer() is NO_TRACER

    def test_noop_span_is_inert(self):
        with NO_TRACER.span("ignored", tag=1) as span:
            span.annotate(more=2)
        assert NO_TRACER.spans() == []
        assert NO_TRACER.context() is None
        assert NO_TRACER.adopt_spans([(1, None, "x", 0.0, 0.0, (), 1, 1)], None) == []

    def test_noop_overhead_is_negligible(self):
        """The off-by-default guard — a thread-local read plus an attribute
        check — must cost well under a few microseconds per call."""
        iterations = 100_000
        started = time.perf_counter()
        for _ in range(iterations):
            tracer = current_tracer()
            if tracer.enabled:  # pragma: no cover - the guard under test
                tracer.span("never")
        elapsed = time.perf_counter() - started
        per_call = elapsed / iterations
        assert per_call < 5e-6, f"no-op guard costs {per_call * 1e6:.2f}µs/call"


# ------------------------------------------------------------------ #
# Cross-boundary propagation
# ------------------------------------------------------------------ #


class TestCrossThread:
    def test_worker_threads_record_under_an_explicit_parent(self):
        """The executor pattern: the dispatching thread captures its span
        context once, worker threads record timed spans against it."""
        tracer = Tracer()
        with tracer.span("access-batch") as batch:
            parent = batch.context

            def worker(index):
                tracer.record_span(
                    "source-call",
                    start=time.time(),
                    duration=0.001,
                    parent=parent,
                    tags={"method": f"m{index}"},
                )

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        spans = tracer.spans()
        calls = [span for span in spans if span.name == "source-call"]
        assert len(calls) == 4
        assert {span.parent_id for span in calls} == {batch.span_id}
        assert {span.tags["method"] for span in calls} == {"m0", "m1", "m2", "m3"}
        assert_well_formed(spans)


class TestWireRoundTrip:
    def _worker_spans(self):
        """A small worker-side tree, as a worker process would record it."""
        worker = Tracer()
        with worker.span("pool-task", kind="ltr"):
            with worker.span("pool-search", method="m1") as search:
                search.annotate(relevant=True)
        return encode_spans(worker.spans())

    def test_adopt_reanchors_under_the_submitting_span(self):
        specs = self._worker_spans()
        parent_tracer = Tracer()
        with parent_tracer.span("oracle") as oracle:
            ctx = oracle.context
        adopted = parent_tracer.adopt_spans(specs, ctx, query=3)
        assert len(adopted) == 2
        spans = parent_tracer.spans()
        by_name = {span.name: span for span in spans}
        task = by_name["pool-task"]
        search = by_name["pool-search"]
        # Re-anchored: the worker root hangs off the submitting span, the
        # worker-internal edge survives the id remap, and everything joins
        # the parent's trace.
        assert task.parent_id == oracle.span_id
        assert search.parent_id == task.span_id
        assert task.trace_id == search.trace_id == oracle.trace_id
        assert task.remote and search.remote
        # Extra tags stamp every adopted span, so any shipped span can be
        # attributed to the query that submitted the work.
        assert task.tags["query"] == 3
        assert search.tags["query"] == 3
        assert search.tags["method"] == "m1" and search.tags["relevant"] is True
        # The remap minted fresh local ids — the worker's id space never
        # collides with spans the adopting tracer already holds.
        assert len({span.span_id for span in spans}) == len(spans)

    def test_adopt_without_parent_starts_a_fresh_trace(self):
        specs = self._worker_spans()
        tracer = Tracer()
        adopted = tracer.adopt_spans(specs, None)
        roots = [span for span in adopted if span.parent_id is None]
        assert len(roots) == 1
        assert all(span.trace_id == roots[0].trace_id for span in adopted)

    def test_encode_spans_is_plain_data(self):
        """The wire format must survive the pickle-free tuple contract."""
        for spec in self._worker_spans():
            span_id, parent_id, name, start, duration, tags, pid, thread = spec
            assert isinstance(name, str)
            assert isinstance(tags, tuple)
            assert isinstance(pid, int)


# ------------------------------------------------------------------ #
# Histograms and metrics
# ------------------------------------------------------------------ #


class TestLatencyHistogram:
    def test_quantiles_are_clamped_to_observed_range(self):
        histogram = LatencyHistogram()
        for value in (0.010, 0.020, 0.030, 0.040, 0.100):
            histogram.record(value)
        assert histogram.count == 5
        assert histogram.quantile(0.0) == pytest.approx(0.010)
        assert histogram.quantile(1.0) == pytest.approx(0.100)
        p50 = histogram.quantile(0.50)
        assert 0.010 <= p50 <= 0.040
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["sum"] == pytest.approx(0.200)
        assert snapshot["mean"] == pytest.approx(0.040)
        assert snapshot["min"] == pytest.approx(0.010)
        assert snapshot["max"] == pytest.approx(0.100)
        assert snapshot["p99"] == pytest.approx(0.100)

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) is None
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50"] is None

    def test_buckets_are_cumulative(self):
        histogram = LatencyHistogram()
        histogram.record(0.001)
        histogram.record(0.001)
        histogram.record(0.5)
        buckets = histogram.buckets()
        counts = [count for _upper, count in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_metrics_observe_and_quantile(self):
        metrics = RuntimeMetrics()
        for value in (0.001, 0.002, 0.003):
            metrics.observe("query.latency", value)
        assert metrics.quantile("query.latency", 0.99) == pytest.approx(0.003)
        assert metrics.quantile("missing", 0.5) is None
        snapshot = metrics.snapshot()
        assert snapshot["histograms"]["query.latency"]["count"] == 3


class TestMetricsSnapshot:
    def test_timer_means_are_elapsed_over_calls(self):
        metrics = RuntimeMetrics()
        for _ in range(4):
            with metrics.timer("work"):
                pass
        snapshot = metrics.snapshot()
        assert snapshot["timer_calls"]["work"] == 4
        assert snapshot["timer_means"]["work"] == pytest.approx(
            snapshot["timers"]["work"] / 4
        )

    def test_reset_zeroes_registered_cache_gauges(self):
        """Regression: reset() used to leave registered caches' hit/miss
        counters untouched, so post-reset snapshots kept counting."""
        metrics = RuntimeMetrics()
        plain = LRUCache(max_entries=8)
        sharded = ShardedLRUCache(max_entries=64, n_shards=4)
        metrics.register_cache("plain", plain)
        metrics.register_cache("sharded", sharded)
        plain.put("a", 1)
        plain.get("a")
        plain.get("missing")
        sharded.put("b", 2)
        sharded.get("b")
        sharded.get("missing")
        before = metrics.snapshot()["caches"]
        assert before["plain"]["hits"] == 1 and before["plain"]["misses"] == 1
        assert before["sharded"]["hits"] == 1 and before["sharded"]["misses"] == 1

        metrics.reset()
        after = metrics.snapshot()["caches"]
        assert after["plain"]["hits"] == 0 and after["plain"]["misses"] == 0
        assert after["sharded"]["hits"] == 0 and after["sharded"]["misses"] == 0
        # Entries survive the gauge reset — reset() is about counters, not
        # about evicting warm state.
        assert after["plain"]["entries"] == 1
        assert plain.get("a") == 1

    def test_reset_clears_histograms(self):
        metrics = RuntimeMetrics()
        metrics.observe("x", 0.001)
        metrics.reset()
        assert metrics.snapshot()["histograms"] == {}


# ------------------------------------------------------------------ #
# Exporters
# ------------------------------------------------------------------ #


class TestExporters:
    def _populated(self):
        metrics = RuntimeMetrics()
        metrics.incr("oracle.fresh_searches", 3)
        with metrics.timer("oracle.long_term"):
            pass
        metrics.observe("access.latency", 0.002)
        metrics.observe("access.latency", 0.050)
        cache = LRUCache(max_entries=4)
        cache.put("k", 1)
        cache.get("k")
        metrics.register_cache("ltr", cache)
        return metrics, cache

    def test_prometheus_text(self):
        metrics, _cache = self._populated()
        text = prometheus_text(metrics)
        assert "repro_oracle_fresh_searches_total 3" in text
        assert "repro_oracle_long_term_seconds_total" in text
        assert "repro_oracle_long_term_calls_total 1" in text
        assert "# TYPE repro_access_latency_seconds histogram" in text
        assert 'repro_access_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_access_latency_seconds_count 2" in text
        assert 'repro_cache_hits{cache="ltr"} 1' in text

    def test_json_snapshot_round_trips(self):
        metrics, _cache = self._populated()
        tracer = Tracer()
        with tracer.span("answer"):
            pass
        document = json.loads(json_snapshot(metrics, tracer))
        assert document["metrics"]["counters"]["oracle.fresh_searches"] == 3
        assert document["metrics"]["histograms"]["access.latency"]["count"] == 2
        assert len(document["spans"]) == 1
        assert document["spans"][0][2] == "answer"

    def test_chrome_trace_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("answer", strategy="guided"):
            with tracer.span("round", index=0):
                pass
        path = os.fspath(tmp_path / "trace.json")
        count = write_chrome_trace(path, tracer)
        assert count == 2
        with open(path) as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        assert {event["name"] for event in events} == {"answer", "round"}
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
        answer = next(e for e in events if e["name"] == "answer")
        assert answer["args"]["strategy"] == "guided"

    def test_explain_trace_renders_the_tree(self):
        tracer = Tracer()
        with tracer.span("answer"):
            with tracer.span("round", index=0):
                with tracer.span("oracle", method="m1") as span:
                    span.annotate(outcome="fresh", relevant=True)
        report = explain_trace(tracer)
        lines = report.splitlines()
        assert lines[0].startswith("trace ")
        assert "  answer" in lines[1]
        assert lines[2].startswith("    round")
        assert lines[3].startswith("      oracle")
        assert "outcome=fresh" in lines[3]
        assert "relevant=True" in lines[3]

    def test_explain_trace_empty(self):
        assert explain_trace(Tracer()) == "(no spans recorded)\n"


# ------------------------------------------------------------------ #
# End-to-end span trees
# ------------------------------------------------------------------ #


class TestStrategyTracing:
    def test_guided_strategy_records_the_hierarchy(self):
        scenario = fanout_scenario(3, satisfiable=False)
        tracer = Tracer()
        result = relevance_guided_strategy(
            scenario.mediator(), scenario.query, tracer=tracer
        )
        assert result.boolean_answer is False
        spans = tracer.spans()
        assert_well_formed(spans)
        names = {span.name for span in spans}
        assert {"query", "round", "oracle", "access-batch", "source-call"} <= names
        roots = [span for span in spans if span.parent_id is None]
        assert [root.name for root in roots] == ["query"]
        # Every span of the run belongs to the query's single trace.
        assert {span.trace_id for span in spans} == {roots[0].trace_id}
        children = span_children(spans)
        assert all(
            span.name == "round" for span in children[roots[0].span_id]
        )

    def test_untraced_run_records_nothing(self):
        scenario = fanout_scenario(3, satisfiable=False)
        assert current_tracer() is NO_TRACER
        result = relevance_guided_strategy(scenario.mediator(), scenario.query)
        assert result.boolean_answer is False
        assert NO_TRACER.spans() == []

    def test_sequential_and_concurrent_runs_have_identical_structure(self):
        """Satellite: the unsatisfiable fanout performs a deterministic
        access set at any parallelism, so the span *structure* — names and
        parent edges, ignoring timing and interleaving — must be identical
        between a sequential and a max_concurrency=8 run."""
        scenario = fanout_scenario(3, satisfiable=False)

        def run(parallelism):
            tracer = Tracer()
            result = relevance_guided_strategy(
                scenario.mediator(),
                scenario.query,
                parallelism=parallelism,
                tracer=tracer,
            )
            return result, tracer.spans()

        sequential_result, sequential_spans = run(1)
        concurrent_result, concurrent_spans = run(8)
        assert concurrent_result.boolean_answer == sequential_result.boolean_answer
        assert concurrent_result.accesses_made == sequential_result.accesses_made
        assert_well_formed(concurrent_spans)
        assert structure(concurrent_spans) == structure(sequential_spans)
        # And the concurrent run's source calls all hang off access batches.
        by_id = {span.span_id: span for span in concurrent_spans}
        for span in concurrent_spans:
            if span.name == "source-call":
                assert by_id[span.parent_id].name == "access-batch"


def _bank_scenario():
    return bank_multi_query_scenario(4, employees=4, offices=2, states=3)


class TestServerTracing:
    def test_traced_batch_spans_thread_pool(self):
        """Satellite: a traced server batch with max_concurrency=8 yields a
        well-nested tree whose per-query spans are parented to the right
        round and whose verdict spans re-anchor to their query's span."""
        scenario = _bank_scenario()
        tracer = Tracer()
        with QueryServer(scenario.mediator(), parallelism=8, tracer=tracer) as server:
            result = server.answer(scenario.queries)
        assert result.rounds >= 1 and result.accesses_made > 0
        spans = tracer.spans()
        assert_well_formed(spans)
        by_id = {span.span_id: span for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert [root.name for root in roots] == ["answer"]
        names = {span.name for span in spans}
        assert {
            "answer",
            "round",
            "certainty",
            "query",
            "verdicts",
            "access-batch",
            "source-call",
            "finalize",
        } <= names
        for span in spans:
            if span.name == "round":
                assert by_id[span.parent_id].name == "answer"
            if span.name == "query":
                assert by_id[span.parent_id].name == "round"
            if span.name == "verdicts":
                # Re-anchored under the query span that screened the round's
                # candidates, even though it runs after that span closed.
                parent = by_id[span.parent_id]
                assert parent.name == "query"
                assert parent.tags["index"] == span.tags["index"]
        # The executor's source calls carry the server's why-annotations.
        calls = [span for span in spans if span.name == "source-call"]
        assert calls
        assert all(span.tags.get("why") == "relevant" for span in calls)
        assert all("queries" in span.tags for span in calls)

    def test_identical_answers_and_access_structure_across_parallelism(self):
        scenario = _bank_scenario()

        def run(parallelism):
            tracer = Tracer()
            with QueryServer(
                scenario.mediator(), parallelism=parallelism, tracer=tracer
            ) as server:
                result = server.answer(scenario.queries)
            return result, tracer.spans()

        sequential, sequential_spans = run(1)
        concurrent, concurrent_spans = run(8)
        assert concurrent.answers == sequential.answers
        assert concurrent.accesses_made == sequential.accesses_made
        assert_well_formed(concurrent_spans)

        def source_calls(spans):
            return Counter(
                span.tags.get("method")
                for span in spans
                if span.name == "source-call"
            )

        assert source_calls(concurrent_spans) == source_calls(sequential_spans)
        assert structure(concurrent_spans) == structure(sequential_spans)

    def test_traced_batch_spans_process_pool(self):
        """Acceptance: with search_workers=4 the worker processes' span
        trees travel the plain-tuple wire and re-anchor under the parent's
        spans — one well-formed tree across process boundaries."""
        scenario = _bank_scenario()
        tracer = Tracer()
        with QueryServer(
            scenario.mediator(), search_workers=4, tracer=tracer
        ) as server:
            result = server.answer(scenario.queries)
        assert result.accesses_made > 0
        spans = tracer.spans()
        assert_well_formed(spans)
        remote = [span for span in spans if span.remote]
        assert remote, "pooled searches must ship their spans back"
        parent_pid = os.getpid()
        by_id = {span.span_id: span for span in spans}
        assert any(span.pid != parent_pid for span in remote)
        for span in remote:
            # Every shipped span is attached to the single answer trace.
            assert span.trace_id == spans[-1].trace_id or span.trace_id in {
                s.trace_id for s in spans if s.parent_id is None
            }
            if span.name == "pool-task":
                # Shipped roots re-anchor under the local span that
                # submitted the work: a query span (chunked prefetch), a
                # certainty/finalize phase, or an oracle miss.
                parent = by_id[span.parent_id]
                assert not parent.remote
                assert parent.name in {"certainty", "oracle", "finalize", "query"}
        assert {span.name for span in remote} & {"pool-task", "pool-search"}

    def test_explain_report_names_the_accesses(self):
        scenario = _bank_scenario()
        tracer = Tracer()
        with QueryServer(scenario.mediator(), tracer=tracer) as server:
            server.answer(scenario.queries)
        report = explain_trace(tracer)
        assert "answer" in report
        assert "why=relevant" in report
        assert "source-call" in report

    def test_server_histograms_record_latencies(self):
        scenario = _bank_scenario()
        metrics = RuntimeMetrics()
        with QueryServer(scenario.mediator(), metrics=metrics) as server:
            server.answer(scenario.queries)
        snapshot = metrics.snapshot()["histograms"]
        assert snapshot["server.query_latency"]["count"] == 1
        assert snapshot["server.round_latency"]["count"] >= 1
        assert snapshot["access.latency"]["count"] >= 1
        assert snapshot["server.query_latency"]["p99"] > 0.0
