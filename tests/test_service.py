"""End-to-end tests for the HTTP answering service.

The load-bearing assertion: answers served over the wire are identical to
calling :meth:`QueryServer.answer` in-process on the same scenario.  Around
it: the three delivery modes (wait / poll / chunked stream), the admission
rejections as observed by a real HTTP client (429 + ``Retry-After``, 503
for queue/pool/drain), graceful drain completing in-flight queries, the
``/metrics`` exposition parsing as Prometheus text, the trace endpoint, and
the error paths.
"""

from __future__ import annotations

import http.client
import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.runtime import (
    AdmissionController,
    QueryServer,
    serve_in_background,
)
from repro.workloads import bank_multi_query_scenario


def _request(url, method="GET", document=None):
    """One HTTP exchange: returns (status, headers, parsed-or-raw body)."""
    data = None
    headers = {}
    if document is not None:
        data = json.dumps(document).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            body = response.read()
            status, response_headers = response.status, dict(response.headers)
    except urllib.error.HTTPError as error:
        body = error.read()
        status, response_headers = error.code, dict(error.headers)
    content_type = response_headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return status, response_headers, json.loads(body.decode("utf-8"))
    return status, response_headers, body.decode("utf-8")


def _expected_outcomes(scenario):
    """The in-process reference: outcome dicts as the service would render."""
    result = QueryServer(scenario.mediator()).answer(scenario.queries)
    expected = []
    for outcome in result.outcomes:
        rows = [list(row) for row in sorted(outcome.answers, key=repr)]
        expected.append(
            {
                "boolean": outcome.boolean_answer,
                # json round-trip so tuples/constants normalize identically
                "answers": json.loads(json.dumps(rows, default=str)),
                "certain": outcome.certain,
            }
        )
    return expected


@pytest.fixture(scope="module")
def bank_service():
    scenario = bank_multi_query_scenario(4, employees=4, offices=2, states=3)
    handle = serve_in_background(QueryServer(scenario.mediator()))
    try:
        yield scenario, handle
    finally:
        handle.shutdown()


class TestAnswerDelivery:
    def test_wait_mode_matches_direct_answer(self, bank_service):
        scenario, handle = bank_service
        expected = _expected_outcomes(scenario)
        status, _, document = _request(
            f"{handle.base_url}/queries?wait=1",
            method="POST",
            document={"queries": [str(q) for q in scenario.queries]},
        )
        assert status == 200
        served = document["queries"]
        assert len(served) == len(expected)
        for record, reference in zip(served, expected):
            assert record["state"] == "done"
            assert record["outcome"]["boolean"] == reference["boolean"]
            assert record["outcome"]["answers"] == reference["answers"]
            assert record["outcome"]["certain"] == reference["certain"]
            assert not record["outcome"]["rounds_exhausted"]

    def test_accepted_then_polled(self, bank_service):
        scenario, handle = bank_service
        status, _, document = _request(
            f"{handle.base_url}/queries",
            method="POST",
            document={"query": str(scenario.queries[0]), "client": "poller"},
        )
        assert status == 202
        assert document["status"] == "queued"
        (poll_path,) = document["poll"]
        deadline = time.time() + 30
        while time.time() < deadline:
            status, _, record = _request(f"{handle.base_url}{poll_path}")
            assert status == 200
            if record["state"] == "done":
                break
            time.sleep(0.05)
        assert record["state"] == "done"
        assert record["client"] == "poller"
        assert record["outcome"]["boolean"] == _expected_outcomes(scenario)[0]["boolean"]

    def test_chunked_stream_delivers_every_outcome(self, bank_service):
        scenario, handle = bank_service
        expected = _expected_outcomes(scenario)
        connection = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=60)
        try:
            connection.request(
                "POST",
                "/queries?stream=1",
                body=json.dumps({"queries": [str(q) for q in scenario.queries]}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            lines = response.read().decode("utf-8").splitlines()
        finally:
            connection.close()
        records = [json.loads(line) for line in lines if line]
        assert len(records) == len(scenario.queries)
        by_query = {record["query"]: record for record in records}
        for query, reference in zip(scenario.queries, expected):
            record = by_query[str(query)]
            assert record["state"] == "done"
            assert record["outcome"]["boolean"] == reference["boolean"]

    def test_trace_endpoint_serves_explain_report(self, bank_service):
        scenario, handle = bank_service
        status, _, document = _request(
            f"{handle.base_url}/queries?wait=1",
            method="POST",
            document={"query": str(scenario.queries[0])},
        )
        assert status == 200
        record_id = document["queries"][0]["id"]
        status, headers, report = _request(
            f"{handle.base_url}/queries/{record_id}/trace"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "answer" in report  # the root span of the batch

    def test_healthz(self, bank_service):
        _, handle = bank_service
        status, _, document = _request(f"{handle.base_url}/healthz")
        assert status == 200
        assert document["status"] == "ok"


class TestMetricsEndpoint:
    _NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
    _SAMPLE = re.compile(
        rf"^{_NAME}(\{{[^}}]*\}})?"
        r" (?:[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|\+Inf|NaN)$"
    )

    def test_metrics_parse_as_prometheus_exposition(self, bank_service):
        scenario, handle = bank_service
        # Ensure there is answering and HTTP traffic to export.
        _request(
            f"{handle.base_url}/queries?wait=1",
            method="POST",
            document={"query": str(scenario.queries[0])},
        )
        status, headers, text = _request(f"{handle.base_url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        lines = text.splitlines()
        assert lines, "metrics body is empty"
        seen_types = {}
        for line in lines:
            if not line:
                continue
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                seen_types[name] = kind
                continue
            assert self._SAMPLE.match(line), f"unparseable sample line: {line!r}"
        # The families this PR is about are present with the right types.
        assert seen_types.get("repro_service_http_requests_total") == "counter"
        assert seen_types.get("repro_admission_accepted_total") == "counter"
        assert seen_types.get("repro_service_queue_depth") == "gauge"
        assert seen_types.get("repro_service_inflight_queries") == "gauge"
        # Histograms (from the answering path) carry their full shape.
        histograms = [n for n, k in seen_types.items() if k == "histogram"]
        assert histograms, "no histogram families exported"
        for name in histograms:
            assert any(
                line.startswith(f'{name}_bucket{{le="+Inf"}}') for line in lines
            ), f"{name} lacks a +Inf bucket"
            assert any(line.startswith(f"{name}_sum ") for line in lines)
            assert any(line.startswith(f"{name}_count ") for line in lines)


class TestAdmissionOverHttp:
    def test_rate_limited_client_sees_429_with_retry_after(self):
        scenario = bank_multi_query_scenario(2, employees=3, offices=2, states=2)
        handle = serve_in_background(
            QueryServer(scenario.mediator()),
            admission=AdmissionController(rate=0.001, burst=1.0),
        )
        try:
            url = f"{handle.base_url}/queries?wait=1"
            first = {"query": str(scenario.queries[0]), "client": "flooder"}
            status, _, _ = _request(url, method="POST", document=first)
            assert status == 200
            status, headers, document = _request(url, method="POST", document=first)
            assert status == 429
            assert document["error"] == "rate_limited"
            assert int(headers["Retry-After"]) >= 1
        finally:
            handle.shutdown()

    def test_oversized_submission_sees_503_queue_full(self):
        scenario = bank_multi_query_scenario(2, employees=3, offices=2, states=2)
        handle = serve_in_background(
            QueryServer(scenario.mediator()),
            admission=AdmissionController(max_queued=1),
        )
        try:
            status, headers, document = _request(
                f"{handle.base_url}/queries",
                method="POST",
                document={"queries": [str(q) for q in scenario.queries]},
            )
            assert status == 503
            assert document["error"] == "queue_full"
            assert int(headers["Retry-After"]) >= 1
        finally:
            handle.shutdown(drain=False)

    def test_saturated_pool_sees_503(self):
        class SaturatedPool:
            def saturated(self, *, backlog_factor):
                return True

        scenario = bank_multi_query_scenario(2, employees=3, offices=2, states=2)
        handle = serve_in_background(
            QueryServer(scenario.mediator()),
            admission=AdmissionController(pool=SaturatedPool()),
        )
        try:
            status, _, document = _request(
                f"{handle.base_url}/queries",
                method="POST",
                document={"query": str(scenario.queries[0])},
            )
            assert status == 503
            assert document["error"] == "pool_saturated"
        finally:
            handle.shutdown(drain=False)

    def test_draining_service_rejects_new_submissions(self):
        scenario = bank_multi_query_scenario(2, employees=3, offices=2, states=2)
        handle = serve_in_background(QueryServer(scenario.mediator()))
        try:
            handle.service.admission.begin_drain()
            status, _, document = _request(
                f"{handle.base_url}/queries",
                method="POST",
                document={"query": str(scenario.queries[0])},
            )
            assert status == 503
            assert document["error"] == "draining"
        finally:
            handle.shutdown(drain=False)

    def test_fairness_flooder_rejected_while_other_client_answers(self):
        scenario = bank_multi_query_scenario(4, employees=4, offices=2, states=3)
        expected = _expected_outcomes(scenario)
        handle = serve_in_background(
            QueryServer(scenario.mediator()),
            admission=AdmissionController(rate=0.5, burst=2.0),
        )
        try:
            url = f"{handle.base_url}/queries?wait=1"
            flood_statuses = []
            for _ in range(6):
                status, _, _ = _request(
                    url,
                    method="POST",
                    document={"query": str(scenario.queries[0]), "client": "flooder"},
                )
                flood_statuses.append(status)
            # The flooder burns its burst, then gets rejected.
            assert flood_statuses.count(429) >= 3
            # An independent client is admitted and answered correctly
            # while the flooder is being turned away.
            for query, reference in zip(scenario.queries[:2], expected[:2]):
                status, _, document = _request(
                    url,
                    method="POST",
                    document={"query": str(query), "client": "patient"},
                )
                assert status == 200
                outcome = document["queries"][0]["outcome"]
                assert outcome["boolean"] == reference["boolean"]
        finally:
            handle.shutdown()


class TestDrain:
    def test_drain_completes_inflight_queries(self):
        scenario = bank_multi_query_scenario(3, employees=3, offices=2, states=2)
        handle = serve_in_background(
            QueryServer(scenario.mediator(latency_s=0.05))
        )
        results = {}

        def submit():
            results["response"] = _request(
                f"{handle.base_url}/queries?wait=1",
                method="POST",
                document={"queries": [str(q) for q in scenario.queries]},
            )

        worker = threading.Thread(target=submit)
        worker.start()
        # Let the batch get admitted and start answering, then drain.
        deadline = time.time() + 10
        while handle.service.admission.inflight == 0 and time.time() < deadline:
            time.sleep(0.01)
        assert handle.service.admission.inflight > 0
        handle.shutdown(drain=True, timeout=60.0)
        worker.join(timeout=60)
        assert not worker.is_alive()
        status, _, document = results["response"]
        assert status == 200
        for record in document["queries"]:
            assert record["state"] == "done"
        assert handle.service.admission.inflight == 0


class TestErrorPaths:
    def test_unknown_route_404(self, bank_service):
        _, handle = bank_service
        status, _, _ = _request(f"{handle.base_url}/nope")
        assert status == 404

    def test_wrong_method_405(self, bank_service):
        _, handle = bank_service
        status, _, _ = _request(f"{handle.base_url}/queries", method="PUT")
        assert status == 405
        status, _, _ = _request(f"{handle.base_url}/metrics", method="POST")
        assert status == 405

    def test_bad_json_400(self, bank_service):
        _, handle = bank_service
        request = urllib.request.Request(
            f"{handle.base_url}/queries",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unparseable_query_text_400(self, bank_service):
        _, handle = bank_service
        status, _, document = _request(
            f"{handle.base_url}/queries",
            method="POST",
            document={"query": "NotARelation(x)"},
        )
        assert status == 400
        assert "does not parse" in document["error"]

    def test_missing_query_field_400(self, bank_service):
        _, handle = bank_service
        status, _, _ = _request(
            f"{handle.base_url}/queries", method="POST", document={"wrong": 1}
        )
        assert status == 400

    def test_unknown_record_404(self, bank_service):
        _, handle = bank_service
        status, _, _ = _request(f"{handle.base_url}/queries/q999999")
        assert status == 404
        status, _, _ = _request(f"{handle.base_url}/queries/q999999/trace")
        assert status == 404
