"""Tests for the Section 3 reductions, the tiling gadgets, the Boolean gadget,
and the critical-tuple bridge."""

from __future__ import annotations

import pytest

from repro import (
    Access,
    Configuration,
    ContainmentOptions,
    containment_to_ltr,
    decide_containment,
    ltr_to_containment,
    parse_cq,
    parse_pq,
)
from repro.core import is_ltr_direct
from repro.exceptions import QueryError
from repro.queries import evaluate_boolean
from repro.reductions import (
    add_boolean_gadget,
    and_chain_atoms,
    boolean_gadget_facts,
    has_tiling,
    is_critical_tuple_bruteforce,
    is_critical_via_ltr,
    or_chain_atoms,
    sample_problems,
    solve_tiling,
    tiling_to_containment,
)
from repro.schema import SchemaBuilder
from repro.workloads import containment_example_scenario, dependent_chain_scenario


class TestProposition33:
    """Containment reduces to the complement of LTR."""

    def _check(self, schema, configuration, query1, query2, expected_containment):
        instance = containment_to_ltr(query1, query2, configuration, schema)
        ltr = is_ltr_direct(
            instance.query, instance.access, instance.configuration, instance.schema
        )
        assert ltr == (not expected_containment)

    def test_example_3_2_contained(self):
        schema, configuration, query_r, query_s = containment_example_scenario()
        assert decide_containment(query_r, query_s, schema, configuration)
        self._check(schema, configuration, query_r, query_s, expected_containment=True)

    def test_example_3_2_reverse_not_contained(self):
        schema, configuration, query_r, query_s = containment_example_scenario()
        assert not decide_containment(query_s, query_r, schema, configuration)
        self._check(schema, configuration, query_s, query_r, expected_containment=False)

    def test_classical_containment_case(self, binary_schema):
        specific = parse_cq(binary_schema, "R(x, y), R(y, z)")
        general = parse_cq(binary_schema, "R(u, v)")
        configuration = Configuration.empty(binary_schema)
        self._check(binary_schema, configuration, specific, general, True)
        self._check(binary_schema, configuration, general, specific, False)

    def test_existing_relation_name_rejected(self, binary_schema):
        query = parse_cq(binary_schema, "R(x, y)")
        with pytest.raises(QueryError):
            containment_to_ltr(
                query,
                query,
                Configuration.empty(binary_schema),
                binary_schema,
                witness_relation_name="R",
            )


class TestProposition34:
    """LTR reduces to the complement of containment."""

    def _check(self, query, access, configuration, schema):
        expected = is_ltr_direct(query, access, configuration, schema)
        instance = ltr_to_containment(query, access, configuration, schema)
        non_containment = not decide_containment(
            instance.contained_query,
            instance.containing_query,
            instance.schema,
            instance.configuration,
        )
        assert non_containment == expected

    def test_chain_scenario(self):
        scenario = dependent_chain_scenario(2)
        self._check(
            scenario.query, scenario.access, scenario.configuration, scenario.schema
        )

    def test_irrelevant_access(self, dependent_schema):
        query = parse_cq(dependent_schema, "S(x)")
        domain = dependent_schema.relation("R").domain_of(0)
        configuration = Configuration.empty(dependent_schema).with_constants(
            [("v", domain)]
        )
        access = Access(dependent_schema.access_method("accR"), ("v",))
        self._check(query, access, configuration, dependent_schema)

    def test_isbind_fact_added(self, dependent_schema):
        query = parse_cq(dependent_schema, "R(x)")
        domain = dependent_schema.relation("R").domain_of(0)
        configuration = Configuration.empty(dependent_schema).with_constants(
            [("v", domain)]
        )
        access = Access(dependent_schema.access_method("accR"), ("v",))
        instance = ltr_to_containment(query, access, configuration, dependent_schema)
        assert instance.configuration.contains("IsBind__reduction", ("v",))


class TestTiling:
    def test_solver_finds_identity_tiling(self):
        problems = dict(sample_problems(2))
        solution = solve_tiling(problems["solvable-identity"])
        assert solution is not None
        assert solution[0] == problems["solvable-identity"].initial_row

    def test_solver_respects_constraints(self):
        problems = dict(sample_problems(2))
        assert not has_tiling(problems["unsolvable-vertical"])
        assert not has_tiling(problems["unsolvable-horizontal"])

    def test_solution_rows_are_valid(self):
        problems = dict(sample_problems(3))
        solution = solve_tiling(problems["solvable-one-step"])
        assert solution is not None
        problem = problems["solvable-one-step"]
        for row in solution:
            assert problem.row_ok(row)
        for below, above in zip(solution, solution[1:]):
            assert problem.rows_ok(below, above)

    @pytest.mark.parametrize("name,problem", sample_problems(2))
    def test_reduction_agrees_with_solver(self, name, problem):
        instance = tiling_to_containment(problem)
        contained = decide_containment(
            instance.final_row_query,
            instance.violation_query,
            instance.schema,
            instance.configuration,
            ContainmentOptions(max_support_facts=0),
        )
        assert (not contained) == has_tiling(problem), name

    def test_reduction_schema_shape(self):
        problems = dict(sample_problems(2))
        instance = tiling_to_containment(problems["solvable-identity"])
        problem = problems["solvable-identity"]
        expected_relations = len(problem.tile_types) * problem.width
        assert len(instance.schema.relations) == expected_relations
        assert all(
            len(instance.schema.methods_for(relation)) == 1
            for relation in instance.schema.relations
        )


class TestBooleanGadget:
    def test_gadget_facts_are_truth_tables(self):
        builder = SchemaBuilder()
        add_boolean_gadget(builder)
        schema = builder.build()
        configuration = Configuration.empty(schema)
        configuration.add_all(boolean_gadget_facts())
        assert configuration.contains("And", (1, 1, 1))
        assert configuration.contains("Or", (0, 0, 0))
        assert configuration.contains("Eq", (0, 0, 1))
        assert configuration.contains("P", (1,))
        assert not configuration.contains("And", (1, 1, 0))

    def test_or_chain_computes_disjunction(self):
        from repro.queries import ConjunctiveQuery, Variable, evaluate

        builder = SchemaBuilder()
        add_boolean_gadget(builder)
        schema = builder.build()
        configuration = Configuration.empty(schema)
        configuration.add_all(boolean_gadget_facts())
        result = Variable("r")
        atoms = or_chain_atoms(schema, (0, 1, 0), result)
        query = ConjunctiveQuery(tuple(atoms), (result,))
        assert evaluate(query, configuration) == frozenset({(1,)})

    def test_and_chain_computes_conjunction(self):
        from repro.queries import ConjunctiveQuery, Variable, evaluate

        builder = SchemaBuilder()
        add_boolean_gadget(builder)
        schema = builder.build()
        configuration = Configuration.empty(schema)
        configuration.add_all(boolean_gadget_facts())
        result = Variable("r")
        atoms = and_chain_atoms(schema, (1, 1, 0), result)
        query = ConjunctiveQuery(tuple(atoms), (result,))
        assert evaluate(query, configuration) == frozenset({(0,)})


class TestCriticalTuple:
    def _schema(self):
        builder = SchemaBuilder()
        builder.domain("D")
        builder.relation("R", [("a", "D"), ("b", "D")])
        builder.access("critR", "R", inputs=["a", "b"], dependent=False)
        return builder.build()

    def test_bridge_agreement_on_small_cases(self):
        schema = self._schema()
        domain_values = ["d1", "d2"]
        cases = [
            ("R(x, x)", ("d1", "d1"), True),
            ("R(x, x)", ("d1", "d2"), False),
            ("R(x, y)", ("d1", "d2"), True),
        ]
        for text, values, expected in cases:
            query = parse_cq(schema, text)
            brute = is_critical_tuple_bruteforce(query, "R", values, domain_values)
            via_ltr = is_critical_via_ltr(query, "R", values, schema)
            assert brute == expected, text
            assert via_ltr == expected, text

    def test_requires_boolean_independent_method(self):
        builder = SchemaBuilder()
        builder.domain("D")
        builder.relation("R", [("a", "D")])
        builder.access("m", "R", inputs=["a"], dependent=True)
        schema = builder.build()
        query = parse_cq(schema, "R(x)")
        with pytest.raises(QueryError):
            is_critical_via_ltr(query, "R", ("d1",), schema)
