"""Corridor tiling problems.

The hardness results of the paper (Theorem 5.1, Theorem 5.6, Proposition 6.2)
are proved by reductions from corridor tiling: given a set of tile types,
horizontal and vertical compatibility relations, an initial row and a final
row, decide whether the corridor of a fixed width can be tiled row by row so
that every pair of horizontally adjacent tiles satisfies the horizontal
constraint, every pair of vertically adjacent tiles satisfies the vertical
constraint, the first row is the initial row and the last row is the final
row.

This module defines the problem, a brute-force solver (used as ground truth
on the small instances exercised by the benchmarks), and generators of
solvable and unsolvable instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

__all__ = ["TilingProblem", "solve_tiling", "has_tiling", "sample_problems"]


@dataclass(frozen=True)
class TilingProblem:
    """A corridor tiling problem.

    Attributes
    ----------
    width:
        Number of columns of the corridor.
    tile_types:
        The tile alphabet.
    horizontal:
        Allowed pairs ``(left, right)`` of horizontally adjacent tiles.
    vertical:
        Allowed pairs ``(below, above)`` of vertically adjacent tiles.
    initial_row:
        The forced first row (length ``width``).
    final_row:
        The forced last row (length ``width``).
    max_height:
        Maximum number of rows a solution may have (keeps the brute-force
        solver and the benchmarks finite).
    """

    width: int
    tile_types: Tuple[str, ...]
    horizontal: FrozenSet[Tuple[str, str]]
    vertical: FrozenSet[Tuple[str, str]]
    initial_row: Tuple[str, ...]
    final_row: Tuple[str, ...]
    max_height: int = 4

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ReproError("a tiling problem needs width at least 1")
        if len(self.initial_row) != self.width or len(self.final_row) != self.width:
            raise ReproError("initial and final rows must have length equal to width")
        for row in (self.initial_row, self.final_row):
            for tile in row:
                if tile not in self.tile_types:
                    raise ReproError(f"unknown tile type {tile!r}")

    def row_ok(self, row: Sequence[str]) -> bool:
        """Whether a row satisfies the horizontal constraints."""
        return all(
            (row[i], row[i + 1]) in self.horizontal for i in range(self.width - 1)
        )

    def rows_ok(self, below: Sequence[str], above: Sequence[str]) -> bool:
        """Whether two consecutive rows satisfy the vertical constraints."""
        return all(
            (below[i], above[i]) in self.vertical for i in range(self.width)
        )

    def candidate_rows(self) -> Iterator[Tuple[str, ...]]:
        """Every row satisfying the horizontal constraints."""
        for combination in itertools.product(self.tile_types, repeat=self.width):
            if self.row_ok(combination):
                yield combination


def solve_tiling(problem: TilingProblem) -> Optional[Tuple[Tuple[str, ...], ...]]:
    """Return a tiling (a tuple of rows) or ``None`` when none exists.

    The solver performs a breadth-first search over rows, bounded by
    ``problem.max_height``.
    """
    if not problem.row_ok(problem.initial_row) or not problem.row_ok(problem.final_row):
        return None
    if problem.initial_row == problem.final_row and problem.max_height >= 1:
        return (problem.initial_row,)

    candidates = list(problem.candidate_rows())
    frontier: List[Tuple[Tuple[str, ...], ...]] = [(problem.initial_row,)]
    for _height in range(1, problem.max_height):
        next_frontier: List[Tuple[Tuple[str, ...], ...]] = []
        for partial in frontier:
            last = partial[-1]
            for row in candidates:
                if not problem.rows_ok(last, row):
                    continue
                extended = partial + (row,)
                if row == problem.final_row:
                    return extended
                next_frontier.append(extended)
        frontier = next_frontier
        if not frontier:
            break
    return None


def has_tiling(problem: TilingProblem) -> bool:
    """Whether the corridor can be tiled within the height bound."""
    return solve_tiling(problem) is not None


def sample_problems(width: int = 2) -> Tuple[Tuple[str, TilingProblem], ...]:
    """A few named tiling problems (solvable and unsolvable) used by benchmarks."""
    tiles = ("a", "b")
    all_pairs = frozenset(itertools.product(tiles, repeat=2))
    alternating = frozenset({("a", "b"), ("b", "a")})
    problems = [
        (
            "solvable-identity",
            TilingProblem(
                width=width,
                tile_types=tiles,
                horizontal=all_pairs,
                vertical=all_pairs,
                initial_row=("a",) * width,
                final_row=("a",) * width,
                max_height=2,
            ),
        ),
        (
            "solvable-one-step",
            TilingProblem(
                width=width,
                tile_types=tiles,
                horizontal=all_pairs,
                vertical=alternating,
                initial_row=("a",) * width,
                final_row=("b",) * width,
                max_height=2,
            ),
        ),
        (
            "unsolvable-vertical",
            TilingProblem(
                width=width,
                tile_types=tiles,
                horizontal=all_pairs,
                vertical=frozenset({("a", "a"), ("b", "b")}),
                initial_row=("a",) * width,
                final_row=("b",) * width,
                max_height=3,
            ),
        ),
        (
            "unsolvable-horizontal",
            TilingProblem(
                width=width,
                tile_types=tiles,
                horizontal=alternating,
                vertical=all_pairs,
                initial_row=tuple(tiles[i % 2] for i in range(width)),
                final_row=("a",) * width,
                max_height=3,
            ),
        ),
    ]
    return tuple(problems)
