"""Executable lower-bound gadgets: Boolean coding, tiling, critical tuples."""

from repro.reductions.boolean_gadgets import (
    BOOLEAN_DOMAIN_NAME,
    add_boolean_gadget,
    and_chain_atoms,
    boolean_gadget_facts,
    or_chain_atoms,
)
from repro.reductions.critical_tuple import (
    is_critical_tuple_bruteforce,
    is_critical_via_ltr,
)
from repro.reductions.tiling import (
    TilingProblem,
    has_tiling,
    sample_problems,
    solve_tiling,
)
from repro.reductions.tiling_to_containment import (
    TilingContainmentInstance,
    tiling_to_containment,
)

__all__ = [
    "BOOLEAN_DOMAIN_NAME",
    "add_boolean_gadget",
    "boolean_gadget_facts",
    "or_chain_atoms",
    "and_chain_atoms",
    "TilingProblem",
    "solve_tiling",
    "has_tiling",
    "sample_problems",
    "tiling_to_containment",
    "TilingContainmentInstance",
    "is_critical_tuple_bruteforce",
    "is_critical_via_ltr",
]
