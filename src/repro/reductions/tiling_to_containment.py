"""Tiling → containment under access limitations (Proposition 6.2).

The PSPACE-hardness proof of Proposition 6.2 encodes a corridor tiling
problem into binary relations ``C_{t,j}`` ("the tile at column ``j`` has type
``t``"); each relation has a single dependent access method bound on its
first attribute, so building a row forces walking a chain of accesses exactly
as a tiling is built row by row.  Two queries are constructed:

* ``final_row_query`` (a conjunctive query) asserts that the final row of the
  tiling has been laid out;
* ``violation_query`` (a positive query) asserts that "something is wrong":
  a non-unique tile, bad column/row progression, or a horizontal/vertical
  constraint violation.

The tiling problem has a solution **iff** ``final_row_query`` is *not*
contained in ``violation_query`` under the access limitations starting from
the configuration holding the initial row.  The benchmark
``benchmarks/bench_tiling_reduction.py`` runs the reduction on the sample
problems and compares the containment answer with the brute-force tiling
solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.data import Configuration
from repro.queries import ConjunctiveQuery, PositiveQuery
from repro.queries.atoms import Atom
from repro.queries.pq import AndNode, AtomNode, OrNode, PQNode
from repro.queries.terms import Variable
from repro.reductions.tiling import TilingProblem
from repro.schema import SchemaBuilder, Schema

__all__ = ["TilingContainmentInstance", "tiling_to_containment"]


@dataclass(frozen=True)
class TilingContainmentInstance:
    """The output of the Proposition 6.2 reduction."""

    schema: Schema
    configuration: Configuration
    final_row_query: ConjunctiveQuery
    violation_query: PositiveQuery
    problem: TilingProblem

    def tiling_exists_iff_not_contained(self) -> bool:
        """Documentation helper: tiling exists ⇔ final-row ⋢ violation."""
        return True


def _relation_name(tile: str, column: int) -> str:
    return f"C_{tile}_{column}"


def tiling_to_containment(problem: TilingProblem) -> TilingContainmentInstance:
    """Build the Proposition 6.2 containment instance for ``problem``."""
    builder = SchemaBuilder()
    builder.domain("cell")
    relations: Dict[Tuple[str, int], object] = {}
    for tile in problem.tile_types:
        for column in range(1, problem.width + 1):
            name = _relation_name(tile, column)
            relation = builder.relation(name, [("prev", "cell"), ("cur", "cell")])
            builder.access(f"acc_{name}", name, inputs=["prev"], dependent=True)
            relations[(tile, column)] = relation
    schema = builder.build()

    # Initial configuration: the initial row, laid out along constants c0..cn.
    configuration = Configuration.empty(schema)
    for index, tile in enumerate(problem.initial_row):
        configuration.add(
            _relation_name(tile, index + 1), (f"c{index}", f"c{index + 1}")
        )

    # Final-row query: Cf1,1(y0, y1) ∧ ... ∧ Cfn,n(y_{n-1}, y_n).
    row_variables = [Variable(f"y{i}") for i in range(problem.width + 1)]
    final_atoms = [
        Atom(
            schema.relation(_relation_name(tile, column + 1)),
            (row_variables[column], row_variables[column + 1]),
        )
        for column, tile in enumerate(problem.final_row)
    ]
    final_row_query = ConjunctiveQuery(tuple(final_atoms), (), "FinalRow")

    # Violation query: the disjunction of everything that can be wrong.
    disjuncts: List[PQNode] = []
    x, y, w, z = Variable("x"), Variable("y"), Variable("w"), Variable("z")

    def atom(tile: str, column: int, first: Variable, second: Variable) -> AtomNode:
        return AtomNode(
            Atom(schema.relation(_relation_name(tile, column)), (first, second))
        )

    tiles = problem.tile_types
    columns = range(1, problem.width + 1)

    # Non-unique tile: the same predecessor (or the same cell) is described by
    # two distinct (type, column) pairs.
    for tile1 in tiles:
        for column1 in columns:
            for tile2 in tiles:
                for column2 in columns:
                    if (tile1, column1) == (tile2, column2):
                        continue
                    disjuncts.append(
                        AndNode((atom(tile1, column1, x, y), atom(tile2, column2, x, w)))
                    )
                    disjuncts.append(
                        AndNode((atom(tile1, column1, x, y), atom(tile2, column2, w, y)))
                    )

    # Bad column-to-column progression within a row.
    for tile1 in tiles:
        for tile2 in tiles:
            for column in columns:
                if column == problem.width:
                    continue
                for next_column in columns:
                    if next_column == column + 1:
                        continue
                    disjuncts.append(
                        AndNode(
                            (atom(tile1, column, x, y), atom(tile2, next_column, y, z))
                        )
                    )

    # Bad row-to-row progression (after the last column, the next cell must be
    # in column 1).
    for tile1 in tiles:
        for tile2 in tiles:
            for next_column in columns:
                if next_column == 1:
                    continue
                disjuncts.append(
                    AndNode(
                        (atom(tile1, problem.width, x, y), atom(tile2, next_column, y, z))
                    )
                )

    # Horizontal constraint violations.
    for tile1 in tiles:
        for tile2 in tiles:
            if (tile1, tile2) in problem.horizontal:
                continue
            for column in columns:
                if column == problem.width:
                    continue
                disjuncts.append(
                    AndNode((atom(tile1, column, x, y), atom(tile2, column + 1, y, z)))
                )

    # Vertical constraint violations: two cells of the same column, one row
    # apart (i.e. `width` steps apart in the row-major chain), with
    # incompatible types.  The intermediate cells may have any type.
    chain_variables = [Variable(f"v{i}") for i in range(problem.width + 1)]
    for tile1 in tiles:
        for tile2 in tiles:
            if (tile1, tile2) in problem.vertical:
                continue
            for column in columns:
                parts: List[PQNode] = [atom(tile1, column, x, chain_variables[0])]
                current_column = column
                for step in range(problem.width - 1):
                    current_column = current_column % problem.width + 1
                    parts.append(
                        OrNode(
                            tuple(
                                atom(
                                    any_tile,
                                    current_column,
                                    chain_variables[step],
                                    chain_variables[step + 1],
                                )
                                for any_tile in tiles
                            )
                        )
                    )
                parts.append(
                    atom(
                        tile2,
                        column,
                        chain_variables[problem.width - 1],
                        chain_variables[problem.width],
                    )
                )
                disjuncts.append(AndNode(tuple(parts)))

    violation_query = PositiveQuery(OrNode(tuple(disjuncts)), (), "Violation")
    return TilingContainmentInstance(
        schema, configuration, final_row_query, violation_query, problem
    )
