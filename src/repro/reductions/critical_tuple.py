"""The critical-tuple bridge (Proposition 4.5 / Miklau–Suciu).

Miklau and Suciu call a tuple ``t`` *critical* for a Boolean query ``Q`` over
a finite domain ``D`` when there is an instance ``I`` with values in ``D``
such that deleting ``t`` from ``I`` changes the value of ``Q``.  The paper's
Σ₂ᵖ-hardness proof for long-term relevance with independent accesses rests on
the observation that ``t`` is critical iff the Boolean access ``R(t)?`` is
long-term relevant in a configuration containing only the query's constants.

This module implements both sides of that equivalence:

* :func:`is_critical_tuple_bruteforce` enumerates every instance over the
  finite domain (exponential — only usable on tiny domains, which is exactly
  how it is used in tests);
* :func:`is_critical_via_ltr` runs the library's long-term relevance
  procedure on the corresponding access.
"""

from __future__ import annotations

import itertools
from typing import Sequence, Tuple

from repro.data import Configuration
from repro.exceptions import QueryError
from repro.queries import ConjunctiveQuery, evaluate_boolean
from repro.queries.homomorphism import CanonicalInstance
from repro.core.longterm_independent import is_ltr_independent
from repro.schema import Access, Schema

__all__ = ["is_critical_tuple_bruteforce", "is_critical_via_ltr"]


def _all_possible_facts(
    query: ConjunctiveQuery, domain_values: Sequence[object]
) -> Tuple[Tuple[str, Tuple[object, ...]], ...]:
    facts = []
    for relation in query.relations():
        for values in itertools.product(domain_values, repeat=relation.arity):
            facts.append((relation.name, values))
    return tuple(facts)


def is_critical_tuple_bruteforce(
    query: ConjunctiveQuery,
    relation_name: str,
    tuple_values: Sequence[object],
    domain_values: Sequence[object],
) -> bool:
    """Brute-force criticality check (exponential in ``|domain|``).

    ``t`` is critical iff some instance over ``domain_values`` containing
    ``t`` satisfies the query while the instance without ``t`` does not.
    """
    if not query.is_boolean:
        raise QueryError("criticality is defined for Boolean queries")
    target = (relation_name, tuple(tuple_values))
    other_facts = [
        fact for fact in _all_possible_facts(query, domain_values) if fact != target
    ]
    for size in range(len(other_facts) + 1):
        for subset in itertools.combinations(other_facts, size):
            without = CanonicalInstance()
            for name, values in subset:
                without.add(name, values)
            with_target = without.copy()
            with_target.add(*target)
            if evaluate_boolean(query, with_target) and not evaluate_boolean(
                query, without
            ):
                return True
    return False


def is_critical_via_ltr(
    query: ConjunctiveQuery,
    relation_name: str,
    tuple_values: Sequence[object],
    schema: Schema,
) -> bool:
    """Criticality through the long-term relevance procedure.

    Every relation of ``schema`` must carry an independent Boolean access
    method for the accessed relation (and any access method for the others);
    the configuration contains only the query constants.
    """
    methods = [
        method
        for method in schema.methods_for(relation_name)
        if method.is_boolean and not method.dependent
    ]
    if not methods:
        raise QueryError(
            f"relation {relation_name!r} needs an independent Boolean access "
            f"method for the critical-tuple bridge"
        )
    access = Access(methods[0], tuple(tuple_values))
    configuration = Configuration.empty(schema).with_constants(
        query.constants_with_domains()
    )
    return is_ltr_independent(query, access, configuration, schema)
