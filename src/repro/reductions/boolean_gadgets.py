"""Boolean coding gadgets (used throughout the hardness proofs).

Several constructions of the paper "code Boolean operations in relations": a
two-valued domain ``B = {0, 1}`` together with inaccessible relations
``And``, ``Or``, ``Eq`` holding the truth tables of the corresponding
operators, and a unary relation ``P`` holding ``1``.  Conjunctive queries can
then express disjunctive conditions by chaining these relations (the trick
behind Proposition 3.3's CQ case and Theorem 5.1's ``BOOLCONS``).

This module builds the gadget into a :class:`~repro.schema.SchemaBuilder`
and produces the corresponding configuration facts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.data import Configuration, Fact
from repro.queries.atoms import Atom
from repro.queries.terms import Term, Variable
from repro.schema import Relation, Schema, SchemaBuilder

__all__ = [
    "BOOLEAN_DOMAIN_NAME",
    "add_boolean_gadget",
    "boolean_gadget_facts",
    "or_chain_atoms",
    "and_chain_atoms",
]

BOOLEAN_DOMAIN_NAME = "B"

_TRUTH_TABLES: Dict[str, Tuple[Tuple[int, int, int], ...]] = {
    "And": ((0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 1)),
    "Or": ((0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)),
    "Eq": ((0, 0, 1), (1, 0, 0), (0, 1, 0), (1, 1, 1)),
}


def add_boolean_gadget(builder: SchemaBuilder, prefix: str = "") -> Dict[str, Relation]:
    """Declare the Boolean domain and the ``And``/``Or``/``Eq``/``P`` relations.

    The relations get **no access methods**: their content is fixed by the
    configuration, exactly as in the paper's reductions.  Returns the declared
    relations keyed by their un-prefixed names.
    """
    builder.domain(BOOLEAN_DOMAIN_NAME, values=(0, 1))
    relations: Dict[str, Relation] = {}
    for operator in ("And", "Or", "Eq"):
        relations[operator] = builder.relation(
            f"{prefix}{operator}",
            [("left", BOOLEAN_DOMAIN_NAME), ("right", BOOLEAN_DOMAIN_NAME), ("result", BOOLEAN_DOMAIN_NAME)],
        )
    relations["P"] = builder.relation(f"{prefix}P", [("value", BOOLEAN_DOMAIN_NAME)])
    return relations


def boolean_gadget_facts(prefix: str = "") -> Tuple[Fact, ...]:
    """The configuration facts of the gadget: truth tables plus ``P(1)``."""
    facts: List[Fact] = []
    for operator, rows in _TRUTH_TABLES.items():
        for row in rows:
            facts.append(Fact(f"{prefix}{operator}", row))
    facts.append(Fact(f"{prefix}P", (1,)))
    return tuple(facts)


def or_chain_atoms(
    schema: Schema,
    inputs: Sequence[Term],
    result: Variable,
    variable_prefix: str = "or",
    prefix: str = "",
) -> Tuple[Atom, ...]:
    """Atoms computing ``result = inputs[0] ∨ inputs[1] ∨ ...`` with ``Or``.

    For a single input the chain degenerates to ``Eq(input, input, result)``...
    no — it uses ``Or(input, input, result)``, which has the same effect.
    """
    return _chain_atoms(schema, f"{prefix}Or", inputs, result, variable_prefix)


def and_chain_atoms(
    schema: Schema,
    inputs: Sequence[Term],
    result: Variable,
    variable_prefix: str = "and",
    prefix: str = "",
) -> Tuple[Atom, ...]:
    """Atoms computing ``result = inputs[0] ∧ inputs[1] ∧ ...`` with ``And``."""
    return _chain_atoms(schema, f"{prefix}And", inputs, result, variable_prefix)


def _chain_atoms(
    schema: Schema,
    relation_name: str,
    inputs: Sequence[Term],
    result: Variable,
    variable_prefix: str,
) -> Tuple[Atom, ...]:
    relation = schema.relation(relation_name)
    if not inputs:
        raise ValueError("a Boolean chain needs at least one input")
    if len(inputs) == 1:
        return (Atom(relation, (inputs[0], inputs[0], result)),)
    atoms: List[Atom] = []
    accumulator: Term = inputs[0]
    for index, term in enumerate(inputs[1:]):
        is_last = index == len(inputs) - 2
        target: Term = result if is_last else Variable(f"{variable_prefix}_{index}")
        atoms.append(Atom(relation, (accumulator, term, target)))
        accumulator = target
    return tuple(atoms)
