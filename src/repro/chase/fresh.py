"""Fresh constant generation for witness construction.

Witnesses to non-containment and to long-term relevance populate the virtual
database with values that do not occur in the initial configuration.  For
infinite abstract domains any new symbol will do; for enumerated domains
(Booleans, tile types, ...) "fresh" values must be drawn from the unused part
of the enumeration — and may simply not exist, in which case ``None`` is
returned and the caller must fall back to existing values.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Set, Tuple

from repro.schema import AbstractDomain

__all__ = ["FreshConstants"]


class FreshConstants:
    """A generator of values that are guaranteed not to clash with a reserved set."""

    def __init__(self, reserved: Iterable[object] = (), prefix: str = "fresh") -> None:
        self._reserved: Set[object] = set(reserved)
        self._prefix = prefix
        self._counter = itertools.count()

    def reserve(self, values: Iterable[object]) -> None:
        """Mark additional values as unavailable for freshness."""
        self._reserved.update(values)

    def new(self, domain: AbstractDomain) -> Optional[object]:
        """A fresh value of ``domain``, or ``None`` if the domain is exhausted.

        Infinite domains always yield a value of the form
        ``"<prefix>:<domain>:<n>"``.  Enumerated domains yield an unused value
        of the enumeration, or ``None`` when every value is already reserved.
        """
        if domain.is_enumerated:
            for value in sorted(domain.values or (), key=repr):
                if value not in self._reserved:
                    self._reserved.add(value)
                    return value
            return None
        while True:
            value = f"{self._prefix}:{domain.name}:{next(self._counter)}"
            if value not in self._reserved:
                self._reserved.add(value)
                return value

    def several(self, domain: AbstractDomain, count: int) -> Tuple[object, ...]:
        """``count`` fresh values (fewer if an enumerated domain runs out)."""
        values = []
        for _ in range(count):
            value = self.new(domain)
            if value is None:
                break
            values.append(value)
        return tuple(values)
