"""Crayfish-chase style construction of well-formed witness paths.

The upper-bound proofs of the paper (following Calì and Martinenghi) rely on
*tree-like* counterexample instances: every element outside the initial
configuration is generated as the output of exactly one access, and may be
used as the input of later accesses.  This module implements the constructive
side of that idea: given a set of *target facts* that a witness must contain,
it searches for

* an ordering of the targets such that each can be produced by a well-formed
  access (its chosen method's input values are available when it is made), and
* a set of *support facts* — extra accesses whose only purpose is to emit a
  value that some target needs as a dependent input (the "chains" of the
  crayfish chase).

The search is a bounded backtracking enumeration.  Different support choices
lead to different final fact sets, which matters for the containment search
(the support facts may accidentally satisfy the containing query — this is
exactly the phenomenon of Example 3.2), so all plans within the budget are
enumerated and the caller filters them.

Three structural optimisations keep the enumeration cheap without changing
the set of plans reachable within the budgets:

* backtracking uses an **undo log** instead of copying the whole search state
  at every branch — a branch records the operations it performs (pending
  pops, step appends, availability additions) and reverses them on exit;
* the per-domain view of the available values and the per-domain index of
  *emitting* methods are maintained **incrementally** / computed **once**,
  instead of being rebuilt and re-sorted at every stuck node;
* a **reachability closure** over abstract domains ("which domains can any
  chain of well-formed accesses ever emit a value for, starting from this
  configuration") is computed up front and used to cut support branches whose
  missing value lies in a domain no chain can ever produce.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from repro.data import AccessPath, AccessResponse, Configuration, Fact
from repro.chase.fresh import FreshConstants
from repro.schema import Access, AccessMethod, Schema

__all__ = [
    "ProductionPlan",
    "iter_production_plans",
    "can_ever_produce",
    "emittable_domains",
]


@dataclass(frozen=True)
class ProductionPlan:
    """A successful plan: a well-formed path producing the targets.

    Attributes
    ----------
    path:
        The well-formed access path (starting at the initial configuration).
    target_facts:
        The facts the caller asked for.
    support_facts:
        Extra facts introduced only to make dependent inputs available.
    """

    path: AccessPath
    target_facts: Tuple[Fact, ...]
    support_facts: Tuple[Fact, ...]

    def all_new_facts(self) -> Tuple[Fact, ...]:
        """Targets and supports together (the facts added to the configuration)."""
        return tuple(self.target_facts) + tuple(self.support_facts)

    def final_configuration(self) -> Configuration:
        """The configuration reached at the end of the plan's path."""
        return self.path.final_configuration()


def can_ever_produce(schema: Schema, fact: Fact) -> bool:
    """Whether some access method exists for the fact's relation.

    Facts over relations without access methods can never be revealed — their
    content is fixed to the initial configuration.
    """
    return schema.has_access(fact.relation)


def _reachability_closure(
    schema: Schema, available_domains: FrozenSet[object]
) -> Tuple[FrozenSet[object], FrozenSet[object]]:
    """Least fixpoint of value reachability over abstract domains.

    Returns ``(populatable, emittable)``:

    * a domain is **populatable** when *some* value of it can ever appear in
      a produced fact — any place of a feasible method qualifies, because a
      produced fact makes every one of its values available (independent
      methods invent fresh input values; dependent inputs are filled with
      available values or recursively supported fresh ones);
    * a domain is **emittable** when a *chosen specific* value of it can be
      produced — only *output* places qualify, since a support fact carries
      the needed value at an output place.

    A method is feasible when it is independent, or every dependent input's
    domain already has an available value, is populatable, or is enumerated
    (fresh enumeration values are assumed to remain).  Both sets
    **over-approximate** reachability, which is the safe direction for
    pruning: a domain outside them provably admits no producing chain.
    """
    populatable: Set[object] = set()
    emittable: Set[object] = set()
    changed = True
    while changed:
        changed = False
        for method in schema.access_methods:
            relation = method.relation
            all_domains = {
                relation.domain_of(place) for place in range(relation.arity)
            }
            outputs = {relation.domain_of(place) for place in method.output_places}
            if all_domains <= populatable and outputs <= emittable:
                continue
            if method.dependent:
                fillable = True
                for place in method.input_places:
                    domain = relation.domain_of(place)
                    if (
                        domain in available_domains
                        or domain in populatable
                        or domain.is_enumerated
                    ):
                        continue
                    fillable = False
                    break
                if not fillable:
                    continue
            populatable.update(all_domains)
            emittable.update(outputs)
            changed = True
    return frozenset(populatable), frozenset(emittable)


def emittable_domains(
    schema: Schema, available: Set[Tuple[object, object]]
) -> FrozenSet[object]:
    """Domains some chain of well-formed accesses can emit a chosen value for.

    The *emittable* component of :func:`_reachability_closure`: a support
    chain can produce a specific value of the domain at an output place.
    Over-approximates, which is the safe direction for pruning.
    """
    available_domains = frozenset(domain for _value, domain in available)
    _populatable, emittable = _cached_closure(schema, available_domains)
    return emittable


class _SearchState:
    """Mutable search state; branches record undo information explicitly."""

    __slots__ = ("available", "available_by_domain", "pending", "steps", "supports")

    def __init__(
        self,
        available: Set[Tuple[object, object]],
        pending: List[Tuple[Fact, Optional[AccessMethod]]],
    ) -> None:
        self.available = available
        self.available_by_domain: Dict[object, List[object]] = {}
        for value, domain in sorted(available, key=repr):
            self.available_by_domain.setdefault(domain, []).append(value)
        self.pending = pending
        self.steps: List[AccessResponse] = []
        self.supports: List[Fact] = []

    def add_available(
        self, pairs: Sequence[Tuple[object, object]]
    ) -> List[Tuple[object, object]]:
        """Add pairs to the availability index; return the ones actually new."""
        added: List[Tuple[object, object]] = []
        for pair in pairs:
            if pair in self.available:
                continue
            self.available.add(pair)
            self.available_by_domain.setdefault(pair[1], []).append(pair[0])
            added.append(pair)
        return added

    def remove_available(self, pairs: Sequence[Tuple[object, object]]) -> None:
        """Undo :meth:`add_available` for pairs known to have been appended."""
        for value, domain in reversed(pairs):
            self.available.discard((value, domain))
            values = self.available_by_domain.get(domain)
            if values and values[-1] == value:
                values.pop()
            elif values is not None:  # pragma: no cover - defensive
                values.remove(value)


def _fact_available_pairs(schema: Schema, fact: Fact) -> Tuple[Tuple[object, object], ...]:
    relation = schema.relation(fact.relation)
    return tuple(
        (value, relation.domain_of(place)) for place, value in enumerate(fact.values)
    )


def _producible_with(
    schema: Schema,
    fact: Fact,
    method: AccessMethod,
    available: Set[Tuple[object, object]],
) -> bool:
    """Whether ``fact`` can be produced by ``method`` given available values."""
    if method.relation.name != fact.relation:
        return False
    if not method.dependent:
        return True
    relation = schema.relation(fact.relation)
    for place in method.input_places:
        pair = (fact.values[place], relation.domain_of(place))
        if pair not in available:
            return False
    return True


def _access_for(schema: Schema, fact: Fact, method: AccessMethod) -> AccessResponse:
    binding = tuple(fact.values[place] for place in method.input_places)
    access = Access(method, binding)
    return AccessResponse(access, (fact.values,))


#: Schema-keyed caches: the emitter index depends only on the schema, the
#: reachability closure on the schema plus the set of available *domains* —
#: both are consulted once per production-plan search, which the LTR and
#: containment procedures run per candidate assignment.
_EMITTERS_CACHE: "WeakKeyDictionary[Schema, Dict[object, Tuple[Tuple[AccessMethod, int], ...]]]" = (
    WeakKeyDictionary()
)
_CLOSURE_CACHE: "WeakKeyDictionary[Schema, Dict[FrozenSet[object], Tuple[FrozenSet[object], FrozenSet[object]]]]" = (
    WeakKeyDictionary()
)


def _emitter_index(schema: Schema) -> Dict[object, Tuple[Tuple[AccessMethod, int], ...]]:
    """Map each abstract domain to the ``(method, output place)`` pairs emitting it."""
    cached = _EMITTERS_CACHE.get(schema)
    if cached is None:
        emitters: Dict[object, List[Tuple[AccessMethod, int]]] = {}
        for method in schema.access_methods:
            relation = method.relation
            for output_place in method.output_places:
                domain = relation.domain_of(output_place)
                emitters.setdefault(domain, []).append((method, output_place))
        cached = {domain: tuple(pairs) for domain, pairs in emitters.items()}
        _EMITTERS_CACHE[schema] = cached
    return cached


def _cached_closure(
    schema: Schema, available_domains: FrozenSet[object]
) -> Tuple[FrozenSet[object], FrozenSet[object]]:
    per_schema = _CLOSURE_CACHE.setdefault(schema, {})
    cached = per_schema.get(available_domains)
    if cached is None:
        if len(per_schema) > 128:
            per_schema.clear()
        cached = _reachability_closure(schema, available_domains)
        per_schema[available_domains] = cached
    return cached


def iter_production_plans(
    schema: Schema,
    configuration: Configuration,
    targets: Sequence[Fact],
    *,
    max_support_facts: int = 4,
    max_plans: int = 64,
    support_value_choices: int = 2,
    max_nodes: int = 20000,
) -> Iterator[ProductionPlan]:
    """Enumerate well-formed plans producing every fact of ``targets``.

    Parameters
    ----------
    max_support_facts:
        Budget on the number of support facts a single plan may introduce.
    max_plans:
        Stop after yielding this many plans.
    support_value_choices:
        When a support fact needs an available input value, how many distinct
        available values are tried (the rest of the branching is pruned).
    max_nodes:
        Global budget on explored search nodes, a safety valve against
        exponential blow-up.
    """
    deduped: List[Fact] = []
    seen: Set[Tuple[str, Tuple[object, ...]]] = set()
    for fact in targets:
        key = (fact.relation, fact.values)
        if key in seen or configuration.contains(fact.relation, fact.values):
            continue
        seen.add(key)
        deduped.append(fact)

    for fact in deduped:
        if not can_ever_produce(schema, fact):
            return

    initial_available = set(configuration.active_domain())
    emitters = _emitter_index(schema)

    # Every value a target fact carries becomes available the moment that
    # target is produced, so the reachability arguments below must count the
    # targets' own (value, domain) pairs as available — otherwise a target
    # that supplies another target's dependent input is wrongly pruned.
    prune_available: Set[Tuple[object, object]] = set(initial_available)
    for fact in deduped:
        prune_available.update(_fact_available_pairs(schema, fact))
    emittable = emittable_domains(schema, prune_available)

    # Reachability pruning at the root: a target none of whose methods can
    # ever see its dependent inputs filled (no available value, domain not
    # emittable) admits no plan at all.
    for fact in deduped:
        if not any(
            _method_eventually_producible(schema, fact, method, prune_available, emittable)
            for method in schema.methods_for(fact.relation)
        ):
            return

    reserved = {value for value, _ in configuration.active_domain()}
    for fact in deduped:
        reserved.update(fact.values)

    produced_count = 0
    nodes_explored = 0

    state = _SearchState(initial_available, [(fact, None) for fact in deduped])
    fresh = FreshConstants(reserved)

    def plans(state: _SearchState) -> Iterator[ProductionPlan]:
        nonlocal produced_count, nodes_explored
        if produced_count >= max_plans or nodes_explored >= max_nodes:
            return
        nodes_explored += 1

        # Greedily produce every pending fact that is already producible,
        # recording each operation so the branch can be unwound on exit.
        trail: List[Tuple[int, Tuple[Fact, Optional[AccessMethod]], List[Tuple[object, object]]]] = []
        try:
            progressed = True
            while progressed:
                progressed = False
                for index in range(len(state.pending)):
                    fact, forced = state.pending[index]
                    usable = None
                    for method in schema.methods_for(fact.relation):
                        if _producible_with(schema, fact, method, state.available):
                            usable = method
                            break
                    if usable is None:
                        continue
                    state.pending.pop(index)
                    state.steps.append(_access_for(schema, fact, usable))
                    added = state.add_available(_fact_available_pairs(schema, fact))
                    trail.append((index, (fact, forced), added))
                    progressed = True
                    break

            if not state.pending:
                path = AccessPath(configuration.copy(), list(state.steps))
                produced_count += 1
                yield ProductionPlan(path, tuple(deduped), tuple(state.supports))
                return

            if len(state.supports) >= max_support_facts:
                return

            # Stuck: some pending fact needs an unavailable dependent input
            # value.  Branch over (pending fact, method, missing value) and
            # over ways of supporting that value.
            for fact, _forced in list(state.pending):
                relation = schema.relation(fact.relation)
                for method in schema.methods_for(fact.relation):
                    if not method.dependent:
                        continue
                    missing = [
                        (fact.values[place], relation.domain_of(place))
                        for place in method.input_places
                        if (fact.values[place], relation.domain_of(place))
                        not in state.available
                    ]
                    if not missing:
                        continue
                    value, domain = missing[0]
                    if domain not in emittable:
                        # No chain of accesses can ever emit a value of this
                        # domain: the branch can never terminate.
                        continue
                    for support in _support_candidates(
                        schema,
                        state,
                        value,
                        domain,
                        fresh,
                        support_value_choices,
                        emitters,
                    ):
                        state.pending.append((support, None))
                        state.supports.append(support)
                        yield from plans(state)
                        state.supports.pop()
                        state.pending.pop()
                        if produced_count >= max_plans or nodes_explored >= max_nodes:
                            return
        finally:
            for index, item, added in reversed(trail):
                state.remove_available(added)
                state.steps.pop()
                state.pending.insert(index, item)

    # Traced enumeration: the span covers the generator's whole lifetime —
    # plan-guided searches consume plans inline, so its duration reads as
    # "time spent in (and between) chase enumeration for this search".  The
    # tracing import is deferred to call time: repro.runtime transitively
    # imports this module.
    from repro.runtime.tracing import current_tracer

    tracer = current_tracer()
    if not tracer.enabled:
        yield from plans(state)
        return
    with tracer.span("chase.plans", targets=len(deduped)) as span:
        yield from plans(state)
        span.annotate(plans=produced_count, nodes=nodes_explored)


def _method_eventually_producible(
    schema: Schema,
    fact: Fact,
    method: AccessMethod,
    available: Set[Tuple[object, object]],
    emittable: FrozenSet[object],
) -> bool:
    """Whether ``method`` could produce ``fact`` after some support chain."""
    if method.relation.name != fact.relation:
        return False
    if not method.dependent:
        return True
    relation = schema.relation(fact.relation)
    for place in method.input_places:
        pair = (fact.values[place], relation.domain_of(place))
        if pair not in available and pair[1] not in emittable:
            return False
    return True


def _support_candidates(
    schema: Schema,
    state: _SearchState,
    value: object,
    domain: object,
    fresh: FreshConstants,
    support_value_choices: int,
    emitters: Dict[object, Tuple[Tuple[AccessMethod, int], ...]],
) -> List[Fact]:
    """Candidate support facts that would emit ``value`` (of ``domain``).

    A support fact lives in a relation with an access method whose *output*
    places include a place of the right domain; its input places are filled
    with already-available values (a bounded number of choices) or fresh
    values (which will recursively need their own support), and its remaining
    output places are filled with fresh values so that the support interferes
    as little as possible with the rest of the witness.

    The candidates are materialised eagerly so the enumeration reads one
    consistent snapshot of the availability index (the caller mutates it
    while recursing between candidates).
    """
    candidates: List[Fact] = []
    available_by_domain = state.available_by_domain
    for method, output_place in emitters.get(domain, ()):
        relation = method.relation
        input_choice_lists: List[List[object]] = []
        feasible = True
        for place in method.input_places:
            place_domain = relation.domain_of(place)
            if method.dependent:
                choices = list(
                    available_by_domain.get(place_domain, ())[:support_value_choices]
                )
                fresh_value = fresh.new(place_domain)
                if fresh_value is not None:
                    choices.append(fresh_value)
            else:
                fresh_value = fresh.new(place_domain)
                choices = [fresh_value] if fresh_value is not None else []
            if not choices:
                feasible = False
                break
            input_choice_lists.append(choices)
        if not feasible:
            continue
        for input_values in itertools.product(*input_choice_lists):
            values: List[object] = [None] * relation.arity
            for place, chosen in zip(method.input_places, input_values):
                values[place] = chosen
            values[output_place] = value
            usable = True
            for place in method.output_places:
                if place == output_place:
                    continue
                filler = fresh.new(relation.domain_of(place))
                if filler is None:
                    usable = False
                    break
                values[place] = filler
            if usable:
                candidates.append(Fact(relation.name, tuple(values)))
    return candidates
