"""Crayfish-chase style construction of well-formed witness paths.

The upper-bound proofs of the paper (following Calì and Martinenghi) rely on
*tree-like* counterexample instances: every element outside the initial
configuration is generated as the output of exactly one access, and may be
used as the input of later accesses.  This module implements the constructive
side of that idea: given a set of *target facts* that a witness must contain,
it searches for

* an ordering of the targets such that each can be produced by a well-formed
  access (its chosen method's input values are available when it is made), and
* a set of *support facts* — extra accesses whose only purpose is to emit a
  value that some target needs as a dependent input (the "chains" of the
  crayfish chase).

The search is a bounded backtracking enumeration.  Different support choices
lead to different final fact sets, which matters for the containment search
(the support facts may accidentally satisfy the containing query — this is
exactly the phenomenon of Example 3.2), so all plans within the budget are
enumerated and the caller filters them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.data import AccessPath, AccessResponse, Configuration, Fact
from repro.chase.fresh import FreshConstants
from repro.schema import Access, AccessMethod, Schema

__all__ = ["ProductionPlan", "iter_production_plans", "can_ever_produce"]


@dataclass(frozen=True)
class ProductionPlan:
    """A successful plan: a well-formed path producing the targets.

    Attributes
    ----------
    path:
        The well-formed access path (starting at the initial configuration).
    target_facts:
        The facts the caller asked for.
    support_facts:
        Extra facts introduced only to make dependent inputs available.
    """

    path: AccessPath
    target_facts: Tuple[Fact, ...]
    support_facts: Tuple[Fact, ...]

    def all_new_facts(self) -> Tuple[Fact, ...]:
        """Targets and supports together (the facts added to the configuration)."""
        return tuple(self.target_facts) + tuple(self.support_facts)

    def final_configuration(self) -> Configuration:
        """The configuration reached at the end of the plan's path."""
        return self.path.final_configuration()


def can_ever_produce(schema: Schema, fact: Fact) -> bool:
    """Whether some access method exists for the fact's relation.

    Facts over relations without access methods can never be revealed — their
    content is fixed to the initial configuration.
    """
    return schema.has_access(fact.relation)


@dataclass
class _SearchState:
    available: Set[Tuple[object, object]]
    pending: List[Tuple[Fact, Optional[AccessMethod]]]
    steps: List[AccessResponse]
    supports: List[Fact]

    def clone(self) -> "_SearchState":
        return _SearchState(
            set(self.available),
            list(self.pending),
            list(self.steps),
            list(self.supports),
        )


def _fact_available_pairs(schema: Schema, fact: Fact) -> Tuple[Tuple[object, object], ...]:
    relation = schema.relation(fact.relation)
    return tuple(
        (value, relation.domain_of(place)) for place, value in enumerate(fact.values)
    )


def _producible_with(
    schema: Schema,
    fact: Fact,
    method: AccessMethod,
    available: Set[Tuple[object, object]],
) -> bool:
    """Whether ``fact`` can be produced by ``method`` given available values."""
    if method.relation.name != fact.relation:
        return False
    if not method.dependent:
        return True
    relation = schema.relation(fact.relation)
    for place in method.input_places:
        pair = (fact.values[place], relation.domain_of(place))
        if pair not in available:
            return False
    return True


def _access_for(schema: Schema, fact: Fact, method: AccessMethod) -> AccessResponse:
    binding = tuple(fact.values[place] for place in method.input_places)
    access = Access(method, binding)
    return AccessResponse(access, (fact.values,))


def iter_production_plans(
    schema: Schema,
    configuration: Configuration,
    targets: Sequence[Fact],
    *,
    max_support_facts: int = 4,
    max_plans: int = 64,
    support_value_choices: int = 2,
    max_nodes: int = 20000,
) -> Iterator[ProductionPlan]:
    """Enumerate well-formed plans producing every fact of ``targets``.

    Parameters
    ----------
    max_support_facts:
        Budget on the number of support facts a single plan may introduce.
    max_plans:
        Stop after yielding this many plans.
    support_value_choices:
        When a support fact needs an available input value, how many distinct
        available values are tried (the rest of the branching is pruned).
    max_nodes:
        Global budget on explored search nodes, a safety valve against
        exponential blow-up.
    """
    deduped: List[Fact] = []
    seen: Set[Tuple[str, Tuple[object, ...]]] = set()
    for fact in targets:
        key = (fact.relation, fact.values)
        if key in seen or configuration.contains(fact.relation, fact.values):
            continue
        seen.add(key)
        deduped.append(fact)

    for fact in deduped:
        if not can_ever_produce(schema, fact):
            return

    reserved = {value for value, _ in configuration.active_domain()}
    for fact in deduped:
        reserved.update(fact.values)

    produced_count = 0
    nodes_explored = 0

    initial = _SearchState(
        available=set(configuration.active_domain()),
        pending=[(fact, None) for fact in deduped],
        steps=[],
        supports=[],
    )

    def plans(state: _SearchState, fresh: FreshConstants) -> Iterator[ProductionPlan]:
        nonlocal produced_count, nodes_explored
        if produced_count >= max_plans or nodes_explored >= max_nodes:
            return
        nodes_explored += 1

        # Greedily produce every pending fact that is already producible.
        progressed = True
        while progressed:
            progressed = False
            for index, (fact, _forced) in enumerate(list(state.pending)):
                methods = schema.methods_for(fact.relation)
                usable = [
                    method
                    for method in methods
                    if _producible_with(schema, fact, method, state.available)
                ]
                if usable:
                    method = usable[0]
                    state.pending.pop(index)
                    state.steps.append(_access_for(schema, fact, method))
                    state.available.update(_fact_available_pairs(schema, fact))
                    progressed = True
                    break

        if not state.pending:
            path = AccessPath(configuration.copy(), list(state.steps))
            produced_count += 1
            yield ProductionPlan(path, tuple(deduped), tuple(state.supports))
            return

        if len(state.supports) >= max_support_facts:
            return

        # Stuck: some pending fact needs an unavailable dependent input value.
        # Branch over (pending fact, method, missing value) and over ways of
        # supporting that value.
        for fact, _forced in state.pending:
            relation = schema.relation(fact.relation)
            for method in schema.methods_for(fact.relation):
                if not method.dependent:
                    continue
                missing = [
                    (fact.values[place], relation.domain_of(place))
                    for place in method.input_places
                    if (fact.values[place], relation.domain_of(place))
                    not in state.available
                ]
                if not missing:
                    continue
                value, domain = missing[0]
                for support in _support_candidates(
                    schema, state, value, domain, fresh, support_value_choices
                ):
                    branched = state.clone()
                    branched.pending.append((support, None))
                    branched.supports.append(support)
                    yield from plans(branched, fresh)
                    if produced_count >= max_plans or nodes_explored >= max_nodes:
                        return

    yield from plans(initial, FreshConstants(reserved))


def _support_candidates(
    schema: Schema,
    state: _SearchState,
    value: object,
    domain: object,
    fresh: FreshConstants,
    support_value_choices: int,
) -> Iterator[Fact]:
    """Candidate support facts that would emit ``value`` (of ``domain``).

    A support fact lives in a relation with an access method whose *output*
    places include a place of the right domain; its input places are filled
    with already-available values (a bounded number of choices) or fresh
    values (which will recursively need their own support), and its remaining
    output places are filled with fresh values so that the support interferes
    as little as possible with the rest of the witness.
    """
    available_by_domain: Dict[object, List[object]] = {}
    for val, dom in state.available:
        available_by_domain.setdefault(dom, []).append(val)
    for values in available_by_domain.values():
        values.sort(key=repr)
    for method in schema.access_methods:
        relation = method.relation
        for output_place in method.output_places:
            if relation.domain_of(output_place) != domain:
                continue
            input_choice_lists: List[List[object]] = []
            feasible = True
            for place in method.input_places:
                place_domain = relation.domain_of(place)
                if method.dependent:
                    available_values = available_by_domain.get(place_domain, [])[
                        :support_value_choices
                    ]
                    choices = list(available_values)
                    fresh_value = fresh.new(place_domain)
                    if fresh_value is not None:
                        choices.append(fresh_value)
                else:
                    fresh_value = fresh.new(place_domain)
                    choices = [fresh_value] if fresh_value is not None else []
                if not choices:
                    feasible = False
                    break
                input_choice_lists.append(choices)
            if not feasible:
                continue
            for input_values in _cartesian(input_choice_lists):
                values: List[object] = [None] * relation.arity
                for place, chosen in zip(method.input_places, input_values):
                    values[place] = chosen
                values[output_place] = value
                usable = True
                for place in method.output_places:
                    if place == output_place:
                        continue
                    filler = fresh.new(relation.domain_of(place))
                    if filler is None:
                        usable = False
                        break
                    values[place] = filler
                if usable:
                    yield Fact(relation.name, tuple(values))


def _cartesian(choice_lists: Sequence[Sequence[object]]) -> Iterator[Tuple[object, ...]]:
    if not choice_lists:
        yield ()
        return
    head, *rest = choice_lists
    for value in head:
        for tail in _cartesian(rest):
            yield (value,) + tail
