"""Crayfish-chase machinery: fresh constants, support chains, production plans."""

from repro.chase.crayfish import ProductionPlan, can_ever_produce, iter_production_plans
from repro.chase.fresh import FreshConstants

__all__ = [
    "FreshConstants",
    "ProductionPlan",
    "can_ever_produce",
    "iter_production_plans",
]
