"""Static (ab-initio) query planning under access patterns.

This is the baseline the paper contrasts with: prior work (Rajaraman, Sagiv,
Ullman; Li and Chang) asks whether a query can be answered by a *fixed* plan
that respects the binding patterns, without looking at the configuration.

A conjunctive query is *executable* (feasible) when its subgoals can be
ordered so that each subgoal is answered through some access method whose
input places are, at that point of the plan, bound by constants of the query
or by variables occurring in earlier subgoals.  :func:`find_executable_order`
searches for such an ordering; :func:`is_feasible` is the Boolean version.

When no executable ordering exists, the dynamic strategies of
:mod:`repro.planner.dynamic` may still produce the complete answer by using
values discovered at run time — that contrast is what
``benchmarks/bench_dynamic_answering.py`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.queries import ConjunctiveQuery
from repro.queries.atoms import Atom
from repro.queries.terms import Variable, is_variable
from repro.schema import AccessMethod, Schema

__all__ = ["PlanStep", "ExecutablePlan", "find_executable_order", "is_feasible"]


@dataclass(frozen=True)
class PlanStep:
    """One step of a static plan: answer ``atom`` through ``method``."""

    atom: Atom
    method: AccessMethod


@dataclass(frozen=True)
class ExecutablePlan:
    """An executable ordering of the query's subgoals."""

    query: ConjunctiveQuery
    steps: Tuple[PlanStep, ...]

    def methods_used(self) -> Tuple[str, ...]:
        """Names of the access methods used, in plan order."""
        return tuple(step.method.name for step in self.steps)


def _atom_answerable(
    atom: Atom, method: AccessMethod, bound_variables: Set[Variable]
) -> bool:
    """Whether ``atom`` can be answered by ``method`` given bound variables.

    Every input place of the method must carry either a constant of the atom
    or a variable that is already bound.  Independent methods have no such
    requirement (any value can be guessed).
    """
    if method.relation.name != atom.relation.name:
        return False
    if not method.dependent:
        return True
    for place in method.input_places:
        term = atom.terms[place]
        if is_variable(term) and term not in bound_variables:
            return False
    return True


def find_executable_order(
    query: ConjunctiveQuery, schema: Schema
) -> Optional[ExecutablePlan]:
    """Search for an executable ordering of the query's subgoals.

    Greedy with backtracking: at each step, pick a remaining subgoal
    answerable with the currently bound variables; after answering it, all of
    its variables become bound.
    """
    if not isinstance(query, ConjunctiveQuery):
        raise QueryError("static planning is implemented for conjunctive queries")

    def backtrack(
        remaining: List[Atom], bound: Set[Variable], steps: List[PlanStep]
    ) -> Optional[List[PlanStep]]:
        if not remaining:
            return steps
        for index, atom in enumerate(remaining):
            for method in schema.methods_for(atom.relation.name):
                if not _atom_answerable(atom, method, bound):
                    continue
                next_remaining = remaining[:index] + remaining[index + 1 :]
                next_bound = bound | set(atom.variables)
                result = backtrack(
                    next_remaining, next_bound, steps + [PlanStep(atom, method)]
                )
                if result is not None:
                    return result
        return None

    steps = backtrack(list(query.atoms), set(), [])
    if steps is None:
        return None
    return ExecutablePlan(query, tuple(steps))


def is_feasible(query: ConjunctiveQuery, schema: Schema) -> bool:
    """Whether the query admits a static executable plan."""
    return find_executable_order(query, schema) is not None
