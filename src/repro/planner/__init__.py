"""Query answering under access limitations: static plans, inverse rules,
and dynamic (exhaustive vs. relevance-guided) strategies."""

from repro.planner.dynamic import (
    AnsweringResult,
    exhaustive_strategy,
    relevance_guided_strategy,
)
from repro.planner.inverse_rules import maximally_contained_answers, query_plan_program
from repro.planner.static_plans import (
    ExecutablePlan,
    PlanStep,
    find_executable_order,
    is_feasible,
)

__all__ = [
    "PlanStep",
    "ExecutablePlan",
    "find_executable_order",
    "is_feasible",
    "query_plan_program",
    "maximally_contained_answers",
    "AnsweringResult",
    "exhaustive_strategy",
    "relevance_guided_strategy",
]
