"""Dynamic query answering: exhaustive vs. relevance-guided access strategies.

This is the application layer that motivates the paper.  A mediator holds a
configuration that grows with every access; the question at each step is
*which access to make next*:

* the **exhaustive** strategy (the recursive enumeration of Li [18], built on
  the inverse-rules idea) performs every well-formed access it has not made
  yet, until no access returns anything new — it retrieves the full
  accessible part of the sources;
* the **relevance-guided** strategies only perform accesses that are
  immediately relevant, long-term relevant, or both, for the query at the
  current configuration, and stop as soon as the (Boolean) query becomes
  certain.

Both strategies run on the :mod:`repro.runtime` layer: accesses are executed
through a deduplicating :class:`~repro.runtime.executor.AccessExecutor`
(exhaustive rounds are dispatched as batches), relevance and certainty
verdicts go through a :class:`~repro.runtime.cache.RelevanceOracle` that
memoizes them against the configuration's content fingerprint, and all
decisions read the mediator's *live view* of the configuration instead of
taking per-candidate deep copies.

All strategies return an :class:`AnsweringResult` recording the answers, the
number of accesses made, and the number of facts retrieved, so they can be
compared head to head in ``benchmarks/bench_dynamic_answering.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core import ContainmentOptions
from repro.data import Configuration
from repro.exceptions import QueryError
from repro.queries import certain_answers
from repro.runtime import (
    AccessExecutor,
    CandidateScreen,
    Deadline,
    PersistentWitnessCache,
    ProcessRelevancePool,
    RelevanceOracle,
    RuntimeMetrics,
    SharedVerdictStore,
)
from repro.runtime.executor import candidate_accesses as _candidate_accesses
from repro.runtime.screening import access_is_relevant, resolve_group_verdict
from repro.runtime.tracing import TracerLike, activate_tracer, current_tracer
from repro.schema import Access
from repro.sources.service import Mediator

__all__ = ["AnsweringResult", "exhaustive_strategy", "relevance_guided_strategy"]


@dataclass(frozen=True)
class AnsweringResult:
    """Outcome of a dynamic answering run.

    ``degraded`` marks a *sound but possibly incomplete* run: accesses
    failed past their retries (their keys are in ``failed_accesses``) or
    the run's deadline expired before certainty.  The answers are still the
    certain answers at the facts actually merged — by monotonicity a subset
    of the fault-free answers, never a wrong claim.  ``attempts`` totals
    the source-call attempts (including retries) the run spent.
    """

    answers: FrozenSet[Tuple[object, ...]]
    accesses_made: int
    facts_retrieved: int
    relevance_checks: int = 0
    cache_hits: int = 0
    rounds_exhausted: bool = False
    degraded: bool = False
    failed_accesses: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    attempts: int = 0

    @property
    def boolean_answer(self) -> bool:
        """Boolean reading of the answer set (true iff non-empty)."""
        return bool(self.answers)


def _result(
    mediator: Mediator,
    query,
    facts_before: int,
    relevance_checks: int,
    cache_hits: int,
    rounds_exhausted: bool = False,
    degraded: bool = False,
    failed_accesses: Tuple[Tuple[str, Tuple[object, ...]], ...] = (),
    attempts: int = 0,
) -> AnsweringResult:
    final_configuration = mediator.configuration_view
    answers = certain_answers(query, final_configuration)
    return AnsweringResult(
        answers=answers,
        accesses_made=mediator.access_count,
        facts_retrieved=len(final_configuration) - facts_before,
        relevance_checks=relevance_checks,
        cache_hits=cache_hits,
        rounds_exhausted=rounds_exhausted,
        degraded=degraded,
        failed_accesses=failed_accesses,
        attempts=attempts,
    )


def exhaustive_strategy(
    mediator: Mediator,
    query,
    *,
    max_rounds: int = 50,
    metrics: Optional[RuntimeMetrics] = None,
    parallelism: int = 1,
    tracer: Optional[TracerLike] = None,
) -> AnsweringResult:
    """Perform every well-formed access until a fixpoint (Li [18]).

    Each round's candidate accesses are dispatched as one batch through the
    executor (with ``parallelism > 1``, up to that many accesses of the round
    overlap their source latency); the run stops when a round merges no new
    fact.  If ``max_rounds`` ends the run while rounds were still making
    progress, the result is flagged ``rounds_exhausted`` — the retrieved
    accessible part (and hence the answer) may be incomplete.

    ``tracer`` activates span recording for the run (a root ``query`` span
    with one ``round`` span per batch); omitted, the run inherits whatever
    tracer is ambient on the calling thread.  Per-query and per-round wall
    time always land in the ``query.latency`` / ``round.latency`` histograms
    of the metrics sink.
    """
    executor = AccessExecutor(mediator, metrics=metrics)
    facts_before = len(mediator.configuration_view)
    exhausted = False
    started = time.perf_counter()
    with activate_tracer(tracer if tracer is not None else current_tracer()) as active:
        with active.span(
            "query", query=getattr(query, "name", None), strategy="exhaustive"
        ):
            for round_index in range(max_rounds):
                executor.metrics.incr("strategy.rounds")
                round_started = time.perf_counter()
                with active.span("round", index=round_index):
                    candidates = _candidate_accesses(
                        mediator.schema,
                        mediator.configuration_view,
                        executor.has_performed_key,
                    )
                    batch = executor.execute_batch(
                        candidates, max_concurrency=parallelism
                    )
                executor.metrics.observe(
                    "round.latency", time.perf_counter() - round_started
                )
                if not batch.progressed:
                    break
            else:
                # The budget ran out while rounds were still progressing.  One
                # free re-enumeration settles the common complete case: no
                # candidate left means the fixpoint was reached in exactly
                # ``max_rounds`` rounds.
                if _candidate_accesses(
                    mediator.schema,
                    mediator.configuration_view,
                    executor.has_performed_key,
                ):
                    exhausted = True
                    executor.metrics.incr("strategy.rounds_exhausted")
    executor.metrics.observe("query.latency", time.perf_counter() - started)
    return _result(mediator, query, facts_before, 0, 0, rounds_exhausted=exhausted)


def relevance_guided_strategy(
    mediator: Mediator,
    query,
    *,
    use_immediate: bool = False,
    use_long_term: bool = True,
    options: Optional[ContainmentOptions] = None,
    max_rounds: int = 50,
    oracle: Optional[RelevanceOracle] = None,
    metrics: Optional[RuntimeMetrics] = None,
    parallelism: int = 1,
    store: Optional[SharedVerdictStore] = None,
    search_workers: int = 1,
    pool: Optional[ProcessRelevancePool] = None,
    cache_path: Optional[str] = None,
    cache_backend: str = "auto",
    tracer: Optional[TracerLike] = None,
    deadline_s: Optional[float] = None,
    tolerate_failures: bool = False,
) -> AnsweringResult:
    """Only perform accesses that are relevant for the query.

    ``use_long_term`` filters accesses through the oracle's memoized
    long-term relevance; ``use_immediate`` additionally (or alternatively)
    requires immediate relevance.  For Boolean queries the run stops as soon
    as the query becomes certain.  A pre-built ``oracle`` may be supplied to
    share its verdict cache across runs over the same query and schema; in
    that case pass containment ``options`` when constructing the oracle
    (supplying both is rejected), and ``metrics`` only reaches the executor
    and the screening layer (the oracle keeps recording into its own sink).
    Alternatively a :class:`SharedVerdictStore` for the same (query, schema)
    lets this run inherit — and extend — the delta-inheritable LTR history
    and witness paths of earlier runs.

    Each round screens its candidates as a batch before touching the oracle:
    candidates outside the relevant-relation closure are dropped, the rest
    are grouped so structurally equivalent bindings share one verdict, and
    only the accesses the screening judged relevant are executed — each one
    re-checked against the configuration it actually runs at, which the
    oracle answers incrementally (witness revalidation or delta inheritance)
    rather than by a fresh search.

    With ``parallelism > 1`` the relevant accesses of a round execute
    concurrently (their simulated or real source latency overlaps), the
    certainty ``stop`` check still runs between completions, and all oracle
    work stays on the calling thread.  The answers are the same as a
    sequential run — the configuration's final content is the union of the
    same responses — though up to ``parallelism`` accesses dispatched before
    certainty is reached may additionally complete.

    Two further knobs address the *CPU-bound* side (``parallelism`` only
    overlaps source latency; the relevance searches themselves stay under
    the GIL):

    * ``search_workers > 1`` (or an explicit ``pool``) attaches a
      :class:`ProcessRelevancePool` — each round's fresh LTR searches run
      concurrently on worker processes and only the incremental shortcuts
      (cache hits, delta inheritance, witness revalidation) stay inline.
      Verdicts are pure functions of the configuration content, so answers
      and access sets are identical to the single-process run.  A pool built
      here is closed when the run returns; pass ``pool`` to amortise worker
      start-up across runs.
    * ``cache_path`` attaches a :class:`PersistentWitnessCache`
      (``cache_backend`` selects ``"auto"`` / ``"jsonl"`` / ``"sqlite"``
      storage — see :mod:`repro.runtime.storage`): witness paths captured by
      this run are recorded, and paths from earlier runs (even earlier
      *processes*) are seeded so this run revalidates instead of searching
      fresh.

    Both knobs configure the run's own oracle; with a pre-built ``oracle``
    attach them at its construction instead (supplying both is rejected,
    like ``options``).

    If ``max_rounds`` ends the run before certainty or a no-progress
    fixpoint, the result is flagged ``rounds_exhausted``.

    ``deadline_s`` gives the run a wall-clock budget: rounds stop at
    expiry, batch waits never outlast it, and a hung source is abandoned
    unmerged rather than blocking the run.  ``tolerate_failures`` keeps the
    run going when an access fails past the mediator's retry policy (the
    failing key lands in ``failed_accesses``) instead of raising the
    enriched :class:`~repro.exceptions.AccessError`; a deadline implies
    tolerance (an abandoned access must not abort the batchmates that did
    respond).  Either way the result flags ``degraded`` when faults cost
    the run certainty — the answers are then a sound subset.

    ``tracer`` activates span recording for the run: a root ``query`` span,
    one ``round`` span per round, and under each round the screening,
    oracle, access-batch, and source-call spans the instrumented layers
    record (see :mod:`repro.runtime.tracing`).  Omitted, the run inherits
    the calling thread's ambient tracer — off by default.  Per-query and
    per-round wall time always land in the ``query.latency`` /
    ``round.latency`` histograms of the metrics sink.
    """
    if not use_immediate and not use_long_term:
        raise QueryError("at least one relevance notion must be enabled")
    if oracle is not None and options is not None:
        raise QueryError(
            "pass containment options when constructing the RelevanceOracle; "
            "a pre-built oracle's cached verdicts already reflect its options"
        )
    if oracle is not None and store is not None:
        raise QueryError(
            "pass either a pre-built oracle or a SharedVerdictStore, not "
            "both; attach the store when constructing the oracle instead"
        )
    if oracle is not None and (search_workers > 1 or pool is not None or cache_path):
        raise QueryError(
            "attach the process pool / persistent cache when constructing "
            "the RelevanceOracle; a pre-built oracle keeps its own"
        )
    schema = mediator.schema
    boolean_query = query if query.is_boolean else query.boolean_closure()
    own_pool: Optional[ProcessRelevancePool] = None
    if oracle is None:
        # The run's private oracle needs no shards: all oracle calls stay on
        # this (the dispatching) thread.  Sharding pays on the genuinely
        # shared surfaces — the attached store, or a caller-built oracle
        # probed from several answering threads.
        if pool is None and search_workers > 1:
            own_pool = pool = ProcessRelevancePool(search_workers)
        persist = (
            PersistentWitnessCache(cache_path, backend=cache_backend, metrics=metrics)
            if cache_path
            else None
        )
        oracle = RelevanceOracle(
            query,
            schema,
            options=options,
            metrics=metrics,
            store=store,
            pool=pool,
            persist=persist,
        )
    elif oracle.query != boolean_query:
        raise QueryError(
            "the supplied RelevanceOracle was built for a different query; "
            "its cached verdicts do not apply"
        )
    elif oracle.schema is not schema:
        raise QueryError(
            "the supplied RelevanceOracle was built for a different schema "
            "object than the mediator's; build it with mediator.schema"
        )
    executor = AccessExecutor(mediator, metrics=metrics)
    screen = CandidateScreen(
        boolean_query,
        schema,
        metrics=metrics if metrics is not None else oracle.metrics,
    )
    # The closure prefilter mirrors the bounded witness searches; the
    # containment-reduction procedures do not share that structure, so a
    # pre-built oracle dispatching to them opts out of prefiltering.
    prefilter_ltr = use_long_term and oracle.ltr_method in (
        "auto",
        "direct",
        "independent",
        "single-occurrence",
    )
    relevance_checks = 0
    hits_before = oracle.cache_hits
    facts_before = len(mediator.configuration_view)
    deadline = Deadline.after(deadline_s) if deadline_s is not None else None
    # A deadline implies tolerance: expiry abandons in-flight accesses as
    # failures, which must degrade the run, not abort it.
    tolerate = tolerate_failures or deadline is not None
    failed_keys = set()
    attempts_total = 0

    def done(configuration: Configuration) -> bool:
        return query.is_boolean and oracle.is_certain(configuration)

    def should_perform(access: Access, configuration: Configuration) -> bool:
        return access_is_relevant(
            oracle,
            access,
            configuration,
            use_long_term=use_long_term,
            use_immediate=use_immediate,
        )

    def _one_round() -> bool:
        """Run one answering round; True when the run is finished."""
        nonlocal relevance_checks
        configuration = mediator.configuration_view
        if done(configuration):
            return True
        candidates = _candidate_accesses(
            schema, configuration, executor.has_performed_key
        )
        if prefilter_ltr:
            candidates = screen.prefilter(candidates)
        elif use_immediate and not use_long_term:
            candidates = screen.prefilter(candidates, immediate_only=True)

        groups = screen.group(candidates, configuration)
        if use_long_term:
            # With a process pool attached the round's fresh LTR
            # searches run concurrently on the workers; the loop below
            # then hits the warmed cache.  Without a pool this is a
            # no-op and every verdict resolves inline as before.
            oracle.prefetch_long_term(
                [representative for representative, _members in groups],
                configuration,
            )
        relevant: List[Access] = []
        for representative, members in groups:
            relevance_checks += 1
            if resolve_group_verdict(
                oracle,
                representative,
                members,
                configuration,
                use_long_term=use_long_term,
                use_immediate=use_immediate,
            ):
                relevant.append(representative)
                relevant.extend(member for member, _mapping in members)

        def precheck(access: Access) -> bool:
            nonlocal relevance_checks
            relevance_checks += 1
            return should_perform(access, mediator.configuration_view)

        # Each merged response advances the oracle's certainty fixpoint on
        # this thread before the next stop() check, so mid-batch and
        # end-of-round certainty probes resolve by delta advance instead of
        # re-evaluating the whole configuration.
        batch = executor.execute_batch(
            relevant,
            precheck=precheck,
            stop=lambda: done(mediator.configuration_view),
            max_concurrency=parallelism,
            on_response=oracle.absorb_response,
            deadline=deadline,
            tolerate_failures=tolerate,
        )
        nonlocal attempts_total
        for access, _error, _attempts in batch.failed:
            failed_keys.add(executor.key(access))
        attempts_total += sum(batch.attempts_by_key.values())
        return not batch.progressed or done(mediator.configuration_view)

    def _guided_rounds(active: TracerLike) -> bool:
        """Run the answering rounds; returns the rounds-exhausted flag."""
        for round_index in range(max_rounds):
            if deadline is not None and deadline.expired():
                executor.metrics.incr("deadline.expired")
                break
            executor.metrics.incr("strategy.rounds")
            round_started = time.perf_counter()
            with active.span("round", index=round_index):
                finished = _one_round()
            executor.metrics.observe(
                "round.latency", time.perf_counter() - round_started
            )
            if finished:
                return False
        # Every allowed round progressed without reaching certainty (or, for
        # non-Boolean queries, a fixpoint): the answer may be incomplete.
        # Certainty reached exactly at the budget's edge, or no candidate
        # left to screen, still count as complete.
        if not done(mediator.configuration_view) and _candidate_accesses(
            schema, mediator.configuration_view, executor.has_performed_key
        ):
            executor.metrics.incr("strategy.rounds_exhausted")
            return True
        return False

    started = time.perf_counter()
    try:
        with activate_tracer(
            tracer if tracer is not None else current_tracer()
        ) as active:
            with active.span(
                "query", query=getattr(query, "name", None), strategy="guided"
            ):
                exhausted = _guided_rounds(active)
    finally:
        if own_pool is not None:
            own_pool.close()
    executor.metrics.observe("query.latency", time.perf_counter() - started)

    # Degraded = faults actually cost the run something.  For Boolean
    # queries certainty at the final configuration clears the flag (the
    # failures were moot); non-Boolean runs stay conservatively degraded.
    deadline_hit = deadline is not None and deadline.expired()
    degraded = bool(failed_keys) or deadline_hit
    if degraded and done(mediator.configuration_view):
        degraded = False
    return _result(
        mediator,
        query,
        facts_before,
        relevance_checks,
        oracle.cache_hits - hits_before,
        rounds_exhausted=exhausted,
        degraded=degraded,
        failed_accesses=tuple(sorted(failed_keys, key=repr)),
        attempts=attempts_total,
    )
