"""Dynamic query answering: exhaustive vs. relevance-guided access strategies.

This is the application layer that motivates the paper.  A mediator holds a
configuration that grows with every access; the question at each step is
*which access to make next*:

* the **exhaustive** strategy (the recursive enumeration of Li [18], built on
  the inverse-rules idea) performs every well-formed access it has not made
  yet, until no access returns anything new — it retrieves the full
  accessible part of the sources;
* the **relevance-guided** strategies only perform accesses that are
  immediately relevant, long-term relevant, or both, for the query at the
  current configuration, and stop as soon as the (Boolean) query becomes
  certain.

All strategies return an :class:`AnsweringResult` recording the answers, the
number of accesses made, and the number of facts retrieved, so they can be
compared head to head in ``benchmarks/bench_dynamic_answering.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core import ContainmentOptions, is_immediately_relevant, is_long_term_relevant
from repro.data import Configuration
from repro.exceptions import QueryError
from repro.queries import certain_answers, evaluate_boolean, is_certain
from repro.schema import Access, Schema
from repro.sources.service import Mediator

__all__ = ["AnsweringResult", "exhaustive_strategy", "relevance_guided_strategy"]


@dataclass(frozen=True)
class AnsweringResult:
    """Outcome of a dynamic answering run."""

    answers: FrozenSet[Tuple[object, ...]]
    accesses_made: int
    facts_retrieved: int
    relevance_checks: int = 0

    @property
    def boolean_answer(self) -> bool:
        """Boolean reading of the answer set (true iff non-empty)."""
        return bool(self.answers)


def _candidate_accesses(
    schema: Schema,
    configuration: Configuration,
    performed: Set[Tuple[str, Tuple[object, ...]]],
) -> List[Access]:
    """Well-formed accesses (dependent bindings from the active domain) not yet made."""
    candidates: List[Access] = []
    adom = configuration.active_domain()
    for method in schema.access_methods:
        pools: List[List[object]] = []
        feasible = True
        for place in method.input_places:
            domain = method.relation.domain_of(place)
            values = sorted(
                {value for value, dom in adom if dom == domain}, key=repr
            )
            if not values:
                feasible = False
                break
            pools.append(values)
        if not feasible:
            continue
        for binding in itertools.product(*pools) if pools else [()]:
            key = (method.name, tuple(binding))
            if key in performed:
                continue
            candidates.append(Access(method, tuple(binding)))
    return candidates


def _run(
    mediator: Mediator,
    query,
    should_perform: Callable[[Access, Configuration], bool],
    *,
    stop_when_certain: bool,
    max_rounds: int = 50,
) -> AnsweringResult:
    performed: Set[Tuple[str, Tuple[object, ...]]] = set()
    relevance_checks = 0
    facts_before = len(mediator.configuration)

    def done(configuration: Configuration) -> bool:
        return (
            stop_when_certain
            and query.is_boolean
            and is_certain(query, configuration)
        )

    for _round in range(max_rounds):
        configuration = mediator.configuration
        if done(configuration):
            break
        candidates = _candidate_accesses(mediator.schema, configuration, performed)
        progressed = False
        for access in candidates:
            current = mediator.configuration
            if done(current):
                break
            relevance_checks += 1
            if not should_perform(access, current):
                continue
            response = mediator.perform(access)
            performed.add((access.method.name, tuple(access.binding)))
            if len(response) > 0:
                progressed = True
        if not progressed or done(mediator.configuration):
            break

    final_configuration = mediator.configuration
    answers = certain_answers(query, final_configuration)
    return AnsweringResult(
        answers=answers,
        accesses_made=mediator.access_count,
        facts_retrieved=len(final_configuration) - facts_before,
        relevance_checks=relevance_checks,
    )


def exhaustive_strategy(
    mediator: Mediator, query, *, max_rounds: int = 50
) -> AnsweringResult:
    """Perform every well-formed access until a fixpoint (Li [18])."""
    return _run(
        mediator,
        query,
        lambda _access, _configuration: True,
        stop_when_certain=False,
        max_rounds=max_rounds,
    )


def relevance_guided_strategy(
    mediator: Mediator,
    query,
    *,
    use_immediate: bool = False,
    use_long_term: bool = True,
    options: Optional[ContainmentOptions] = None,
    max_rounds: int = 50,
) -> AnsweringResult:
    """Only perform accesses that are relevant for the query.

    ``use_long_term`` filters accesses through
    :func:`repro.core.is_long_term_relevant`; ``use_immediate`` additionally
    (or alternatively) requires immediate relevance.  For Boolean queries the
    run stops as soon as the query becomes certain.
    """
    if not use_immediate and not use_long_term:
        raise QueryError("at least one relevance notion must be enabled")
    schema = mediator.schema
    boolean_query = query if query.is_boolean else query.boolean_closure()

    def should_perform(access: Access, configuration: Configuration) -> bool:
        if use_long_term and not is_long_term_relevant(
            boolean_query, access, configuration, schema, options=options
        ):
            return False
        if use_immediate and not is_immediately_relevant(
            boolean_query, access, configuration
        ):
            return False
        return True

    return _run(
        mediator,
        query,
        should_perform,
        stop_when_certain=True,
        max_rounds=max_rounds,
    )
