"""Inverse-rule style Datalog plans (Duschka–Levy / Li–Chang baseline).

The classical way to compute the *maximally contained answer* of a query
under access limitations is a recursive Datalog plan: compute the accessible
constants of every domain, retrieve every accessible fact, and evaluate the
query over the accessible part.  This module assembles such a plan from the
accessible-part program of :mod:`repro.datalog.accessible` plus one rule per
query (or per disjunct for positive queries), and executes it against a
hidden instance — which yields the *complete obtainable answer*, the yardstick
against which the dynamic strategies are compared.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.data import Configuration, Instance
from repro.datalog import (
    Literal,
    Program,
    Rule,
    accessible_part,
    accessible_program,
    evaluate_program,
    query_database,
    relation_predicate,
)
from repro.exceptions import QueryError
from repro.queries import ConjunctiveQuery, PositiveQuery, evaluate
from repro.queries.terms import Variable
from repro.schema import Schema

__all__ = ["query_plan_program", "maximally_contained_answers"]

_ANSWER_PREDICATE = "answer__"


def query_plan_program(query, schema: Schema) -> Program:
    """The Datalog plan: accessible-part rules plus one rule per disjunct."""
    program = accessible_program(schema)
    if isinstance(query, ConjunctiveQuery):
        disjuncts = (query,)
    elif isinstance(query, PositiveQuery):
        disjuncts = query.to_ucq()
    else:
        raise QueryError(f"unsupported query type {type(query)!r}")
    head = Literal(_ANSWER_PREDICATE, tuple(query.free_variables))
    for disjunct in disjuncts:
        body = tuple(
            Literal(relation_predicate(atom.relation.name), atom.terms)
            for atom in disjunct.atoms
        )
        program.add(Rule(head, body))
    return program


def maximally_contained_answers(
    query,
    hidden_instance: Instance,
    configuration: Configuration,
) -> FrozenSet[Tuple[object, ...]]:
    """The complete answer obtainable through the access methods.

    Evaluates the query over the accessible part of the hidden instance —
    the facts that *some* sequence of well-formed accesses can reveal,
    starting from the configuration.  For Boolean queries the result is
    ``frozenset({()})`` (true) or ``frozenset()`` (false).
    """
    reachable = accessible_part(hidden_instance, configuration)
    return evaluate(query, reachable)
