"""repro — Determining relevance of accesses at runtime.

A reproduction of Benedikt, Gottlob, and Senellart, *Determining Relevance of
Accesses at Runtime* (PODS 2011): querying data sources under limited access
patterns, with decision procedures for immediate relevance, long-term
relevance, and containment under access limitations, plus the substrates they
need (schemas with access methods, configurations, access paths, CQ/PQ query
engine, Datalog accessible-part computation, crayfish-chase witnesses) and an
application layer (simulated deep-Web sources and a relevance-guided
mediator).

The most common entry points are re-exported here:

>>> from repro import SchemaBuilder, Configuration, Access, parse_cq
>>> from repro import is_immediately_relevant, is_long_term_relevant
"""

from repro.core import (
    ContainmentOptions,
    ContainmentWitness,
    containment_to_ltr,
    decide_cm_containment,
    decide_containment,
    find_non_containment_witness,
    is_immediately_relevant,
    is_long_term_relevant,
    ltr_to_containment,
)
from repro.data import (
    AccessPath,
    AccessResponse,
    Configuration,
    Fact,
    Instance,
    apply_access,
    enumerate_well_formed_accesses,
    is_well_formed,
    response_from_instance,
)
from repro.exceptions import (
    AccessError,
    ConsistencyError,
    QueryError,
    ReproError,
    SchemaError,
    SearchBudgetExceeded,
)
from repro.queries import (
    Atom,
    ConjunctiveQuery,
    PositiveQuery,
    Variable,
    certain_answers,
    contained_in,
    cq_contained_in,
    evaluate,
    evaluate_boolean,
    is_certain,
    parse_atom,
    parse_cq,
    parse_pq,
    parse_query,
)
from repro.runtime import (
    AccessExecutor,
    MultiQueryMediator,
    PersistentWitnessCache,
    ProcessRelevancePool,
    QueryOutcome,
    QueryServer,
    RelevanceOracle,
    RuntimeMetrics,
    ServerResult,
    SharedVerdictStore,
    WitnessStore,
    open_witness_store,
)
from repro.schema import (
    AbstractDomain,
    Access,
    AccessMethod,
    Attribute,
    Relation,
    Schema,
    SchemaBuilder,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # schema
    "AbstractDomain",
    "Attribute",
    "Relation",
    "AccessMethod",
    "Access",
    "Schema",
    "SchemaBuilder",
    # data
    "Fact",
    "Instance",
    "Configuration",
    "AccessResponse",
    "AccessPath",
    "is_well_formed",
    "apply_access",
    "response_from_instance",
    "enumerate_well_formed_accesses",
    # queries
    "Variable",
    "Atom",
    "ConjunctiveQuery",
    "PositiveQuery",
    "parse_atom",
    "parse_cq",
    "parse_pq",
    "parse_query",
    "evaluate",
    "evaluate_boolean",
    "certain_answers",
    "is_certain",
    "contained_in",
    "cq_contained_in",
    # core
    "is_immediately_relevant",
    "is_long_term_relevant",
    "decide_containment",
    "decide_cm_containment",
    "find_non_containment_witness",
    "ContainmentOptions",
    "ContainmentWitness",
    "containment_to_ltr",
    "ltr_to_containment",
    # runtime
    "AccessExecutor",
    "MultiQueryMediator",
    "PersistentWitnessCache",
    "ProcessRelevancePool",
    "QueryOutcome",
    "QueryServer",
    "RelevanceOracle",
    "RuntimeMetrics",
    "ServerResult",
    "SharedVerdictStore",
    "WitnessStore",
    "open_witness_store",
    # exceptions
    "ReproError",
    "SchemaError",
    "QueryError",
    "AccessError",
    "ConsistencyError",
    "SearchBudgetExceeded",
]
