"""Exporters for runtime metrics and traces.

:mod:`repro.runtime.metrics` and :mod:`repro.runtime.tracing` collect;
this module renders.  Four output shapes, each targeting a different
consumer:

* :func:`prometheus_text` — the Prometheus text exposition format.  This is
  the payload the network-facing ``/metrics`` endpoint of
  :mod:`repro.runtime.service` serves verbatim: counters become ``_total``
  counters, runtime gauges (queue depth, in-flight queries, admission
  state) become plain gauges, cumulative timers become ``_seconds_total``
  / ``_calls_total`` pairs, latency histograms become classic
  ``le``-bucketed histogram families, and registered cache gauges become
  labelled ``cache_hits`` / ``cache_misses`` / ``cache_entries``.
* :func:`json_snapshot` — the :meth:`RuntimeMetrics.snapshot` dict (plus,
  optionally, the encoded span list) as a JSON document, for ad-hoc
  scripting and the bench artifacts.
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — Chrome
  ``chrome://tracing`` / Perfetto "X" (complete) events, one per span, so a
  traced answering run can be inspected as a flame graph offline.
* :func:`explain_trace` — a human-readable rendering of one query's span
  tree with per-span outcome and why-was-this-access-performed annotations:
  the ``explain()`` report the issue asks for.

Everything here is read-only over snapshots — no exporter takes a lock the
runtime holds, so exporting from a live server is safe.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.tracing import NullTracer, Span, Tracer, encode_spans

__all__ = [
    "chrome_trace_events",
    "explain_trace",
    "json_snapshot",
    "prometheus_text",
    "write_chrome_trace",
]

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, suffix: str = "") -> str:
    """Sanitise a runtime metric name into a legal Prometheus identifier."""
    cleaned = _INVALID_METRIC_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}{suffix}"


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (no exponents needed)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(metrics: RuntimeMetrics) -> str:
    """Render ``metrics`` in the Prometheus text exposition format.

    One family per counter/timer/histogram, plus three labelled families for
    the registered caches.  The output is what a ``/metrics`` HTTP endpoint
    would return verbatim, and what CI uploads as the bench observability
    artifact.
    """
    snap = metrics.snapshot()
    lines: List[str] = []

    for name, value in sorted(snap["counters"].items()):
        metric = _metric_name(name, "_total")
        lines.append(f"# HELP {metric} Runtime counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in sorted(snap.get("gauges", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} Runtime gauge {name!r}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    timer_calls = snap["timer_calls"]
    for name, elapsed in sorted(snap["timers"].items()):
        metric = _metric_name(name, "_seconds_total")
        lines.append(f"# HELP {metric} Cumulative seconds in timer {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(elapsed)}")
        calls_metric = _metric_name(name, "_calls_total")
        lines.append(f"# HELP {calls_metric} Completed timer blocks for {name!r}.")
        lines.append(f"# TYPE {calls_metric} counter")
        lines.append(f"{calls_metric} {_format_value(timer_calls.get(name, 0))}")

    for name in sorted(snap["histograms"]):
        histogram = metrics.histogram(name)
        if histogram is None:  # racing reset; skip rather than lie
            continue
        metric = _metric_name(name, "_seconds")
        lines.append(f"# HELP {metric} Latency histogram {name!r} (seconds).")
        lines.append(f"# TYPE {metric} histogram")
        for upper, cumulative in histogram.buckets():
            lines.append(f'{metric}_bucket{{le="{_format_value(upper)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")

    caches: Dict[str, Dict[str, object]] = snap["caches"]
    if caches:
        for family, key in (
            ("repro_cache_hits", "hits"),
            ("repro_cache_misses", "misses"),
            ("repro_cache_entries", "entries"),
        ):
            lines.append(f"# HELP {family} Registered cache gauge ({key}).")
            lines.append(f"# TYPE {family} gauge")
            for name, stats in sorted(caches.items()):
                lines.append(f'{family}{{cache="{name}"}} {stats[key]}')

    return "\n".join(lines) + "\n"


def json_snapshot(
    metrics: RuntimeMetrics,
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    *,
    indent: Optional[int] = 2,
) -> str:
    """The metrics snapshot (and optionally the encoded spans) as JSON.

    ``math.inf`` never appears (the snapshot uses ``None`` for empty
    min/max), so the document is strict JSON.
    """
    document: Dict[str, object] = {"metrics": metrics.snapshot()}
    if tracer is not None:
        document["spans"] = [list(spec) for spec in encode_spans(tracer.spans())]
    return json.dumps(document, indent=indent, default=str)


def chrome_trace_events(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Spans as Chrome-trace "X" (complete) events.

    Timestamps and durations are microseconds per the trace-event format;
    ``pid``/``tid`` come from whichever process/thread recorded the span, so
    the Perfetto timeline separates pool workers from the serving process.
    Tags ride along as ``args`` (with the outcome and trace id included),
    which Perfetto shows in the span detail pane.
    """
    events: List[Dict[str, object]] = []
    for span in spans:
        args: Dict[str, object] = {str(k): v for k, v in span.tags.items()}
        args["trace_id"] = span.trace_id
        if span.remote:
            args["remote"] = True
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.thread,
                "args": args,
            }
        )
    return events


def write_chrome_trace(
    path: str, spans_or_tracer: Union[Tracer, NullTracer, Iterable[Span]]
) -> int:
    """Write a ``chrome://tracing`` / Perfetto JSON file; returns event count.

    Accepts a tracer (its snapshot is taken) or any iterable of spans.  The
    file is the standard ``{"traceEvents": [...]}`` envelope, loadable by
    Perfetto's "Open trace file" as-is.
    """
    spans = (
        spans_or_tracer.spans()
        if isinstance(spans_or_tracer, (Tracer, NullTracer))
        else list(spans_or_tracer)
    )
    events = chrome_trace_events(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


# --------------------------------------------------------------------------- #
# explain(): human-readable span tree
# --------------------------------------------------------------------------- #

#: Tags rendered inline after the span name, in this order, when present.
_EXPLAIN_TAGS = (
    "query",
    "round",
    "outcome",
    "why",
    "provenance",
    "verdict",
    "certain",
    "relevant",
    "method",
    "access",
    "kept",
    "dropped",
    "groups",
    "shared",
    "performed",
    "new_facts",
    "plans",
    "facts",
    "seeded",
    "chunks",
    "remote",
    "attempt",
    "gave_up",
    "breaker",
    "error",
    "degraded",
)


def _describe(span: Span) -> str:
    parts = [f"{span.name}  [{span.duration * 1000:.3f} ms]"]
    rendered = []
    for key in _EXPLAIN_TAGS:
        if key in span.tags:
            rendered.append(f"{key}={span.tags[key]}")
    for key in sorted(span.tags):
        if key not in _EXPLAIN_TAGS:
            rendered.append(f"{key}={span.tags[key]}")
    if span.remote and "remote" not in span.tags:
        rendered.append("remote=True")
    if rendered:
        parts.append("(" + ", ".join(rendered) + ")")
    return "  ".join(parts)


def explain_trace(
    spans_or_tracer: Union[Tracer, NullTracer, Sequence[Span]],
    trace_id: Optional[int] = None,
) -> str:
    """Render one trace's span tree as an indented, annotated report.

    ``trace_id=None`` renders every collected trace, in first-completion
    order.  Children sort by wall-clock start, so the report reads in the
    order the work actually happened; each line carries the span's duration
    and its explanatory tags — for ``source-call`` spans that includes the
    ``why`` annotation the server attaches from the screening layer, which
    is the "why was this access performed" answer the report exists for.
    """
    spans = (
        spans_or_tracer.spans()
        if isinstance(spans_or_tracer, (Tracer, NullTracer))
        else list(spans_or_tracer)
    )
    if trace_id is not None:
        spans = [span for span in spans if span.trace_id == trace_id]
    if not spans:
        return "(no spans recorded)\n"

    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[int], List[Span]] = {}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.start)
    roots.sort(key=lambda s: s.start)

    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        lines.append("  " * depth + _describe(span))
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    current: Optional[int] = None
    for root in roots:
        if root.trace_id != current:
            current = root.trace_id
            lines.append(f"trace {current}:")
        render(root, 1)
    return "\n".join(lines) + "\n"
