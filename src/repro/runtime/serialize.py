"""Wire formats and process-stable digests for the query-server runtime.

Two consumers need to move the paper's objects across process boundaries:

* the :class:`~repro.runtime.procpool.ProcessRelevancePool` ships relevance
  search tasks — a query, a schema, an access, and a configuration snapshot —
  to worker processes and merges witness paths back;
* the :class:`~repro.runtime.persist.PersistentWitnessCache` writes witness
  paths to disk and must key them in a way that survives restarts.

Pickling the objects themselves is handled by the classes (compact
``__reduce__`` wire formats on :class:`~repro.data.instance.Instance` and
:class:`~repro.data.configuration.Configuration`, hash-recomputing
``__setstate__`` on :class:`~repro.schema.domains.AbstractDomain`).  This
module adds what pickle cannot give:

* **stable tokens** — ``schema_token`` / ``query_token`` / ``access_token`` /
  ``configuration_digest`` are cryptographic digests of canonical structural
  encodings, identical in every process and across restarts (Python's builtin
  ``hash`` is salted per process and useless for persistent keys);
* **witness step specs** — a witness path reduced to
  ``(method name, binding, facts)`` triples, decodable against *any* equal
  schema (in particular the parent's schema objects after a worker found the
  path against its own unpickled copy);
* **a JSON value codec** — witness facts restricted to JSON-representable
  values (strings, numbers, booleans, ``None``, nested tuples/lists) so the
  persistent cache is a plain-text artifact; values outside that set raise
  :class:`UnencodableValueError` and the caller skips persisting them.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.data import AccessResponse, Configuration, Instance
from repro.exceptions import ReproError
from repro.schema import Access, Schema

__all__ = [
    "RECORD_VERSION",
    "UnencodableValueError",
    "access_spec",
    "access_token",
    "configuration_digest",
    "decode_access",
    "decode_json_steps",
    "decode_json_value",
    "decode_witness_record",
    "decode_witness_steps",
    "encode_json_steps",
    "encode_json_value",
    "encode_witness_record",
    "encode_witness_steps",
    "instance_digest",
    "query_token",
    "record_digest",
    "schema_canonical",
    "schema_token",
    "witness_digest",
]


class UnencodableValueError(ReproError):
    """A value cannot be represented in the persistent JSON wire format."""


def _digest(payload: object) -> str:
    """A short hex digest of ``repr(payload)`` (stable across processes)."""
    return hashlib.blake2b(repr(payload).encode("utf-8"), digest_size=16).hexdigest()


# --------------------------------------------------------------------------- #
# Stable tokens
# --------------------------------------------------------------------------- #
def schema_canonical(schema: Schema) -> Tuple[object, ...]:
    """A canonical structural encoding of a schema (strings and tuples only)."""
    relations = tuple(
        (
            relation.name,
            tuple(
                (
                    attribute.name,
                    attribute.domain.name,
                    tuple(sorted(attribute.domain.values, key=repr))
                    if attribute.domain.is_enumerated
                    else None,
                )
                for attribute in relation.attributes
            ),
        )
        for relation in schema.relations
    )
    methods = tuple(
        (method.name, method.relation.name, method.input_places, method.dependent)
        for method in schema.access_methods
    )
    return (relations, methods)


def schema_token(schema: Schema) -> str:
    """A process-stable digest identifying a schema by structure."""
    return _digest(schema_canonical(schema))


def query_token(query) -> str:
    """A process-stable digest of a query's :meth:`canonical_form`.

    The canonical form excludes the cosmetic query name (mirroring query
    equality), so renaming a query neither splits a shared verdict store nor
    misses the persistent cache.
    """
    return _digest(query.canonical_form())


def access_spec(access: Access) -> Tuple[str, Tuple[object, ...]]:
    """The wire identity of an access: its method name and binding."""
    return (access.method.name, tuple(access.binding))


def access_token(access: Access) -> str:
    """A process-stable digest of an access (method name + binding reprs)."""
    method, binding = access_spec(access)
    return _digest((method, tuple(repr(value) for value in binding)))


def decode_access(spec: Sequence[object], schema: Schema) -> Access:
    """Rebuild an access from :func:`access_spec` against ``schema``."""
    method_name, binding = spec
    return Access(schema.access_method(method_name), tuple(binding))


def configuration_digest(configuration: Configuration) -> str:
    """A process-stable content digest of a configuration.

    Unlike :meth:`~repro.data.instance.Instance.fingerprint` (built on the
    per-process string hash, by design — it only feeds in-memory caches),
    this digest is identical across processes and restarts: it hashes the
    deterministically ordered wire facts and seed constants through
    ``repr``.  The persistent witness cache stamps records with it.
    """
    facts = tuple(sorted(configuration.wire_facts().items()))
    constants = tuple(
        (repr(value), domain.name) for value, domain in configuration.wire_constants()
    )
    return _digest((facts, constants))


def instance_digest(instance: Instance) -> str:
    """A process-stable content digest of a plain instance."""
    return _digest(tuple(sorted(instance.wire_facts().items())))


# --------------------------------------------------------------------------- #
# Witness step specs
# --------------------------------------------------------------------------- #
def encode_witness_steps(
    steps: Iterable[AccessResponse],
) -> Tuple[Tuple[str, Tuple[object, ...], Tuple[Tuple[object, ...], ...]], ...]:
    """Reduce a witness path to ``(method name, binding, facts)`` triples."""
    return tuple(
        (step.access.method.name, tuple(step.access.binding), tuple(step.facts))
        for step in steps
    )


def decode_witness_steps(
    specs: Sequence[Sequence[object]], schema: Schema
) -> Tuple[AccessResponse, ...]:
    """Rebuild a witness path against ``schema``.

    The accesses are re-validated through the :class:`~repro.schema.Access`
    constructor (binding arity and domain admission), so a spec recorded
    against a different schema fails loudly instead of producing a path the
    revalidator would misinterpret.  The facts are revalidated per tuple.
    """
    steps: List[AccessResponse] = []
    for method_name, binding, facts in specs:
        access = Access(schema.access_method(method_name), tuple(binding))
        steps.append(
            AccessResponse(access, tuple(tuple(values) for values in facts))
        )
    return tuple(steps)


# --------------------------------------------------------------------------- #
# JSON value codec (persistent cache)
# --------------------------------------------------------------------------- #
def encode_json_value(value: object) -> object:
    """Encode one fact/binding value for the JSON wire format.

    Scalars pass through tagged (``["s", ...]`` etc. keeps ``True`` and ``1``
    or ``"1"`` and ``1`` apart after a JSON round-trip); tuples and lists
    recurse.  Anything else raises :class:`UnencodableValueError` — the
    persistent cache then skips the witness rather than storing a lossy
    representation.
    """
    if value is None:
        return ["n"]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, (tuple, list)):
        return ["t", [encode_json_value(item) for item in value]]
    raise UnencodableValueError(
        f"value {value!r} of type {type(value).__name__} has no JSON wire encoding"
    )


def decode_json_value(payload: object) -> object:
    """Invert :func:`encode_json_value` (tuples come back as tuples)."""
    if not isinstance(payload, list) or not payload:
        raise UnencodableValueError(f"malformed value payload {payload!r}")
    tag = payload[0]
    if tag == "n":
        return None
    if tag in ("b", "s", "i", "f"):
        return payload[1]
    if tag == "t":
        return tuple(decode_json_value(item) for item in payload[1])
    raise UnencodableValueError(f"unknown value tag {tag!r}")


def encode_json_steps(specs: Sequence[Sequence[object]]) -> List[List[object]]:
    """Witness step specs → JSON payload (may raise on exotic values)."""
    encoded: List[List[object]] = []
    for method_name, binding, facts in specs:
        encoded.append(
            [
                method_name,
                [encode_json_value(value) for value in binding],
                [[encode_json_value(value) for value in row] for row in facts],
            ]
        )
    return encoded


def decode_json_steps(
    payload: Sequence[Sequence[object]],
) -> Tuple[Tuple[str, Tuple[object, ...], Tuple[Tuple[object, ...], ...]], ...]:
    """JSON payload → witness step specs."""
    specs = []
    for method_name, binding, facts in payload:
        specs.append(
            (
                method_name,
                tuple(decode_json_value(value) for value in binding),
                tuple(
                    tuple(decode_json_value(value) for value in row) for row in facts
                ),
            )
        )
    return tuple(specs)


def witness_digest(specs: Sequence[Sequence[object]]) -> str:
    """A stable digest of a witness path spec (used to deduplicate appends)."""
    return _digest(
        tuple((m, tuple(b), tuple(tuple(row) for row in f)) for m, b, f in specs)
    )


# --------------------------------------------------------------------------- #
# Witness records (the persistent stores' row format)
# --------------------------------------------------------------------------- #
#: Version tag stamped on every persisted witness record.  Bump it when the
#: record shape changes incompatibly; stores keep unknown-version records as
#: opaque payloads (compaction preserves them) while the decode layer skips
#: them, counted under ``skipped_undecodable`` — a rolled-back reader never
#: misinterprets a newer writer's rows.
RECORD_VERSION = 1


def encode_witness_record(
    qtoken: str,
    stoken: str,
    access: Access,
    step_specs: Sequence[Sequence[object]],
    configuration: Optional[Configuration] = None,
) -> dict:
    """One persisted witness record as a JSON-ready payload dictionary.

    ``step_specs`` is the :func:`encode_witness_steps` form of the witness
    path.  Raises :class:`UnencodableValueError` when the binding or any fact
    carries a value outside the JSON wire format.
    """
    payload = {
        "v": RECORD_VERSION,
        "query": qtoken,
        "schema": stoken,
        "access": access_token(access),
        "method": access.method.name,
        "binding": [encode_json_value(value) for value in access.binding],
        "steps": encode_json_steps(step_specs),
    }
    if configuration is not None:
        payload["fingerprint"] = configuration_digest(configuration)
    return payload


def decode_witness_record(
    payload: dict,
) -> Tuple[Tuple[str, str], str, Tuple[str, Tuple[object, ...]], Tuple]:
    """Invert :func:`encode_witness_record`.

    Returns ``((query token, schema token), access token, (method name,
    binding), step specs)``.  Raises :class:`UnencodableValueError` on a
    malformed payload or an unknown (newer) record version; records written
    before the version tag existed decode as version 1.
    """
    if not isinstance(payload, dict):
        raise UnencodableValueError(f"witness record is not an object: {payload!r}")
    version = payload.get("v", 1)
    if not isinstance(version, int) or version > RECORD_VERSION:
        raise UnencodableValueError(
            f"witness record version {version!r} is newer than supported "
            f"version {RECORD_VERSION}"
        )
    try:
        key = (payload["query"], payload["schema"])
        atoken = payload["access"]
        spec = (
            payload["method"],
            tuple(decode_json_value(value) for value in payload["binding"]),
        )
        steps = decode_json_steps(payload["steps"])
    except (KeyError, TypeError, ValueError) as exc:
        raise UnencodableValueError(f"malformed witness record: {exc}") from exc
    return key, atoken, spec, steps


def record_digest(payload: dict) -> str:
    """A stable digest of a record's content (method + binding + steps).

    This is what the stores deduplicate against: an append whose digest
    equals the *currently stored* record for its key is a no-op, so repeated
    warm runs re-recording the same witness never grow a store.  The key
    fields themselves are excluded — they are the row identity, not content.
    """
    return _digest(
        (
            payload.get("v", 1),
            payload.get("method"),
            repr(payload.get("binding")),
            repr(payload.get("steps")),
        )
    )
