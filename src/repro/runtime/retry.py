"""Fault-tolerance primitives for the access path: deadlines, retries, breakers.

Three small, composable pieces:

* :class:`Deadline` — a monotonic-clock budget carried from the service
  layer down into executor waits.  ``remaining()``/``expired()`` are the
  whole API; a ``None`` deadline everywhere means "unlimited".
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* full jitter.  The jitter fraction is drawn from a
  ``blake2b`` hash of ``(seed, method, binding, attempt)`` — the same idiom
  :class:`~repro.sources.service.DataSource` uses for completeness draws —
  so a chaos run's retry schedule is reproducible per seed, across threads
  and processes.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — the per-source
  closed → open → half-open state machine.  While open, ``allow()`` rejects
  immediately (fail fast, no source call); after ``reset_timeout_s`` the
  breaker admits exactly **one** half-open probe at a time, under any
  number of concurrent callers, and closes or re-opens on the probe's
  outcome.  The board lazily keeps one breaker per access method and
  mirrors state transitions into ``breaker.*`` counters and
  ``breaker.state.<method>`` gauges.

Everything here is pure bookkeeping — no source calls, no merges — so the
fault-free fast path through these objects is a few dict/clock operations.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    MalformedResponseError,
    TransientAccessError,
)

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "stable_fraction",
]


def stable_fraction(*parts: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from hashable parts.

    Mirrors ``DataSource._keeps``: a ``blake2b`` digest of the ``repr`` of
    the parts, mapped to a fraction.  Stable across processes and Python
    hash randomization, unlike ``hash()``.
    """
    digest = hashlib.blake2b(repr(parts).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class Deadline:
    """A point on the monotonic clock by which work must finish.

    Construct with :meth:`after`; pass ``None`` seconds for an unlimited
    deadline (``remaining()`` is ``inf``, ``expired()`` is always False) so
    call sites can thread one object through without branching.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, expires_at: Optional[float], clock: Callable[[], float] = time.monotonic):
        self._expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: Optional[float], clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Deadline ``seconds`` from now; ``None`` means unlimited."""
        if seconds is None:
            return cls(None, clock)
        return cls(clock() + float(seconds), clock)

    @property
    def unlimited(self) -> bool:
        return self._expires_at is None

    def remaining(self) -> float:
        """Seconds left (may be negative once expired); ``inf`` if unlimited."""
        if self._expires_at is None:
            return float("inf")
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._expires_at is None:
            return "Deadline(unlimited)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic full jitter.

    ``max_attempts`` counts *total* attempts (1 = no retries).  The backoff
    before attempt ``n+1`` is ``uniform(0, min(max_backoff_s,
    base_backoff_s * 2**(n-1)))`` — full jitter à la the AWS architecture
    blog — with the uniform draw replaced by :func:`stable_fraction` of
    ``(seed, method, binding, n)`` so two runs with the same seed retry on
    an identical schedule.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be >= 0")

    def is_retryable(self, error: BaseException) -> bool:
        """Transient/malformed source failures retry; everything else is fatal.

        :class:`~repro.exceptions.CircuitOpenError` and
        :class:`~repro.exceptions.DeadlineExceeded` are always fatal —
        retrying them inside the batch would just burn the budget the
        breaker/deadline exists to protect.
        """
        if isinstance(error, (CircuitOpenError, DeadlineExceeded)):
            return False
        if isinstance(error, (TransientAccessError, MalformedResponseError)):
            return True
        # Real deployments see socket-level trouble as OSError/TimeoutError.
        return isinstance(error, (ConnectionError, TimeoutError))

    def backoff_s(self, method: str, binding: Tuple, attempt: int) -> float:
        """Backoff to sleep after failed attempt number ``attempt`` (1-based)."""
        cap = min(self.max_backoff_s, self.base_backoff_s * (2 ** max(0, attempt - 1)))
        return cap * stable_fraction(self.seed, "backoff", method, binding, attempt)


class CircuitBreaker:
    """Per-source closed → open → half-open breaker, safe under concurrency.

    * **closed** — all calls admitted; ``failure_threshold`` *consecutive*
      failures trip it open.
    * **open** — ``allow()`` returns False (callers fail fast) until
      ``reset_timeout_s`` has elapsed since it opened.
    * **half-open** — exactly one caller at a time is admitted as a probe;
      everyone else keeps failing fast until the probe reports back via
      :meth:`record_success` (→ closed) or :meth:`record_failure` (→ open,
      timer restarted).

    The single-probe guarantee holds because ``allow()`` reserves the probe
    slot under the breaker's lock before returning True.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = (
        "_lock",
        "_state",
        "_failures",
        "_opened_at",
        "_probe_inflight",
        "failure_threshold",
        "reset_timeout_s",
        "_clock",
        "_on_transition",
    )

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._on_transition = on_transition

    def _transition(self, new_state: str) -> None:
        # Called with the lock held.
        old = self._state
        self._state = new_state
        if old != new_state and self._on_transition is not None:
            self._on_transition(old, new_state)

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """True if the caller may attempt a source call *now*.

        In half-open this *reserves* the single probe slot; the caller that
        got True must report back with :meth:`record_success` or
        :meth:`record_failure` to release it.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._transition(self.HALF_OPEN)
                self._probe_inflight = True
                return True
            # half-open: admit at most one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def fail_fast(self) -> bool:
        """True if a call dispatched now would certainly be rejected.

        Unlike :meth:`allow` this never mutates state — the dispatch thread
        uses it to skip queueing doomed work without consuming the half-open
        probe slot a worker thread should claim.
        """
        with self._lock:
            if self._state == self.OPEN:
                return self._clock() - self._opened_at < self.reset_timeout_s
            if self._state == self.HALF_OPEN:
                return self._probe_inflight
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_inflight = False
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_inflight = False
            self._failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED and self._failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(self.OPEN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(state={self.state!r}, threshold={self.failure_threshold})"


#: Gauge encoding for breaker states (0 is healthy so dashboards sum to 0).
_STATE_GAUGE = {
    CircuitBreaker.CLOSED: 0,
    CircuitBreaker.HALF_OPEN: 1,
    CircuitBreaker.OPEN: 2,
}


class BreakerBoard:
    """One :class:`CircuitBreaker` per access method, created lazily.

    Mirrors transitions into the metrics sink when one is attached:
    ``breaker.opened`` / ``breaker.closed`` / ``breaker.half_open_probes``
    counters and a ``breaker.state.<method>`` gauge (0 closed, 1 half-open,
    2 open).  :meth:`states` snapshots the board for ``/healthz``.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ):
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._metrics = metrics

    def attach_metrics(self, metrics) -> None:
        self._metrics = metrics

    def _record_transition(self, method: str, old: str, new: str) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        if new == CircuitBreaker.OPEN:
            metrics.incr("breaker.opened")
        elif new == CircuitBreaker.CLOSED:
            metrics.incr("breaker.closed")
        elif new == CircuitBreaker.HALF_OPEN:
            metrics.incr("breaker.half_open_probes")
        metrics.set_gauge(f"breaker.state.{method}", _STATE_GAUGE[new])

    def breaker_for(self, method: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(method)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    reset_timeout_s=self.reset_timeout_s,
                    clock=self._clock,
                    on_transition=lambda old, new, _m=method: self._record_transition(
                        _m, old, new
                    ),
                )
                self._breakers[method] = breaker
                if self._metrics is not None:
                    self._metrics.set_gauge(f"breaker.state.{method}", 0)
            return breaker

    def states(self) -> Dict[str, str]:
        """Snapshot of per-method breaker states (for ``/healthz``)."""
        with self._lock:
            breakers = dict(self._breakers)
        return {method: breaker.state for method, breaker in sorted(breakers.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BreakerBoard({self.states()!r})"
