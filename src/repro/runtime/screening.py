"""Batched screening of candidate accesses before the relevance oracle.

A dynamic-answering round enumerates every well-formed access not yet made
and asks the oracle about each.  Two cheap structural arguments cut that
work before any witness search runs:

* **necessary-condition prefilter** — an access can only be long-term
  relevant when its relation either occurs in the query or can *feed* it:
  some chain of dependent accesses consumes the relation's output values and
  ends in a query relation.  The fixpoint of that "feeds" relation — the
  :func:`relevant_relation_closure` — is computed once per (query, schema);
  candidates outside it are discarded without consulting the oracle.  The
  closure mirrors the structure of the bounded witness searches (every access
  of a searched path is a target over a query relation or a transitive
  support of one), so no access those searches could certify is dropped;
* **structural-equivalence grouping** — two bindings of the same method that
  differ by a value renaming extending to an automorphism of the
  configuration (and fixing the query constants) receive identical verdicts:
  the renaming maps witness paths of one access to witness paths of the
  other.  Each round's candidates are grouped by that relation, one
  representative per group is sent to the oracle, and the other members adopt
  the verdict — positively, together with the translated witness path, so the
  incremental engine can revalidate it later.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.data import Configuration
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.tracing import current_tracer
from repro.schema import Access, Schema

__all__ = [
    "CandidateScreen",
    "access_is_relevant",
    "relevant_relation_closure",
    "resolve_group_verdict",
]


def access_is_relevant(
    oracle,
    access: Access,
    configuration: Configuration,
    *,
    use_long_term: bool,
    use_immediate: bool,
) -> bool:
    """Whether ``access`` passes the enabled relevance notions right now.

    The shared dispatch-time re-check of the single-query strategy's
    ``precheck`` and the query server's per-owner precheck: both must apply
    exactly the same policy, or a pooled/multi-query run could perform a
    different access set than the sequential one.
    """
    if use_long_term and not oracle.long_term_relevant(access, configuration):
        return False
    if use_immediate and not oracle.immediately_relevant(access, configuration):
        return False
    return True


def resolve_group_verdict(
    oracle,
    representative: Access,
    members: Sequence[Tuple[Access, Dict[object, object]]],
    configuration: Configuration,
    *,
    use_long_term: bool,
    use_immediate: bool,
) -> bool:
    """Resolve one screening group's verdicts through ``oracle``.

    Decides the representative (long-term and/or immediate relevance), has
    every member adopt the verdicts — positively together with the
    representative's witness translated through the member's automorphism
    mapping, so later rounds revalidate instead of searching — and returns
    whether the group's accesses are relevant.  This is the one copy of the
    group-adoption semantics; the single-query strategy and the query server
    both call it (they previously each had their own, which is exactly how
    adoption fixes would silently diverge).
    """
    ltr_verdict = (
        oracle.long_term_relevant(representative, configuration)
        if use_long_term
        else True
    )
    ir_verdict = (
        oracle.immediately_relevant(representative, configuration)
        if use_immediate
        else True
    )
    if members:
        witness = (
            oracle.witness_for(representative)
            if use_long_term and ltr_verdict
            else None
        )
        for member, mapping in members:
            if use_long_term:
                oracle.adopt_long_term_verdict(
                    member,
                    configuration,
                    ltr_verdict,
                    witness=(witness.translated(mapping) if witness else None),
                )
            if use_immediate:
                oracle.adopt_immediate_verdict(member, configuration, ir_verdict)
    return ltr_verdict and ir_verdict


def relevant_relation_closure(query, schema: Schema) -> FrozenSet[str]:
    """Relations whose accesses could possibly matter for ``query``.

    Least fixpoint of: the query's relations are relevant; a relation is
    relevant when one of its methods outputs a value domain that some
    *dependent* method of an already-relevant relation consumes as input.
    Accesses over relations outside the closure can neither witness a query
    subgoal nor (transitively) feed a value any witness or support chain
    needs, so the bounded LTR searches never answer ``True`` for them.
    """
    names = {
        name for name in query.relation_names() if schema.has_relation(name)
    }
    changed = True
    while changed:
        changed = False
        needed_domains = set()
        for name in names:
            for method in schema.methods_for(name):
                if not method.dependent:
                    continue
                for place in method.input_places:
                    needed_domains.add(method.relation.domain_of(place))
        for relation in schema.relations:
            if relation.name in names:
                continue
            for method in schema.methods_for(relation):
                if any(
                    relation.domain_of(place) in needed_domains
                    for place in method.output_places
                ):
                    names.add(relation.name)
                    changed = True
                    break
    return frozenset(names)


def _binding_automorphism(
    source: Sequence[object],
    target: Sequence[object],
    configuration: Configuration,
    fixed_values: FrozenSet[object],
) -> Optional[Dict[object, object]]:
    """A configuration automorphism mapping ``source`` to ``target``, if the
    pointwise transpositions extend to one.

    The candidate permutation swaps ``source[i] ↔ target[i]`` for every
    position; it qualifies when the swaps are mutually consistent, move no
    fixed (query-constant) value, map the seed-constant set onto itself, and
    map every configuration fact containing a moved value to a configuration
    fact.  Being an involution, ``π(Conf) ⊆ Conf`` already forces
    ``π(Conf) = Conf``.
    """
    mapping: Dict[object, object] = {}
    for s_value, t_value in zip(source, target):
        if s_value == t_value:
            continue
        if mapping.get(s_value, t_value) != t_value:
            return None
        if mapping.get(t_value, s_value) != s_value:
            return None
        mapping[s_value] = t_value
        mapping[t_value] = s_value
    if not mapping:
        return {}
    moved = set(mapping)
    if moved & fixed_values:
        return None
    seeds = configuration.seed_constants
    for value, domain in seeds:
        if value in moved and (mapping[value], domain) not in seeds:
            return None
    schema = configuration.schema
    for relation in schema.relations:
        name = relation.name
        for place in range(relation.arity):
            for value in moved:
                for row in configuration.tuples_matching(name, {place: value}):
                    mapped = tuple(mapping.get(v, v) for v in row)
                    if not configuration.contains(name, mapped):
                        return None
    return mapping


class CandidateScreen:
    """Per-(query, schema) screening state shared across answering rounds."""

    def __init__(
        self,
        query,
        schema: Schema,
        *,
        metrics: Optional[RuntimeMetrics] = None,
        max_group_probes: int = 16,
    ) -> None:
        self._schema = schema
        self._metrics = metrics if metrics is not None else RuntimeMetrics()
        self._closure = relevant_relation_closure(query, schema)
        self._query_relations = frozenset(
            name for name in query.relation_names() if schema.has_relation(name)
        )
        self._fixed_values = frozenset(
            value for value, _domain in query.constants_with_domains()
        )
        self._max_group_probes = max_group_probes

    @property
    def closure(self) -> FrozenSet[str]:
        """The relevant-relation closure the prefilter tests against."""
        return self._closure

    def prefilter(
        self, candidates: Sequence[Access], *, immediate_only: bool = False
    ) -> List[Access]:
        """Drop candidates that fail the necessary condition for relevance.

        Long-term relevance admits the full feeds-closure; immediate
        relevance (``immediate_only``) requires the accessed relation to
        occur in the query itself, since a single response can only witness
        subgoals of its own relation.
        """
        allowed = self._query_relations if immediate_only else self._closure
        tracer = current_tracer()
        with tracer.span("screen.prefilter") as span:
            kept = [
                access for access in candidates if access.relation.name in allowed
            ]
            dropped = len(candidates) - len(kept)
            if tracer.enabled:
                span.annotate(kept=len(kept), dropped=dropped)
        if dropped:
            self._metrics.incr("screen.prefiltered", dropped)
        return kept

    def group(
        self, candidates: Sequence[Access], configuration: Configuration
    ) -> List[Tuple[Access, List[Tuple[Access, Dict[object, object]]]]]:
        """Partition a round's candidates into verdict-sharing groups.

        Returns ``(representative, members)`` pairs where each member carries
        the value renaming taking the representative's binding to its own.
        Comparisons are capped at ``max_group_probes`` representatives per
        method; candidates beyond the cap open their own group (correct,
        merely less sharing).
        """
        tracer = current_tracer()
        with tracer.span("screen.group") as span:
            groups: List[Tuple[Access, List[Tuple[Access, Dict[object, object]]]]] = []
            by_method: Dict[str, List[int]] = {}
            for access in candidates:
                indices = by_method.setdefault(access.method.name, [])
                mapped = None
                for group_index in indices[: self._max_group_probes]:
                    representative = groups[group_index][0]
                    mapping = _binding_automorphism(
                        representative.binding,
                        access.binding,
                        configuration,
                        self._fixed_values,
                    )
                    if mapping is not None:
                        groups[group_index][1].append((access, mapping))
                        mapped = group_index
                        break
                if mapped is None:
                    indices.append(len(groups))
                    groups.append((access, []))
            shared = sum(len(members) for _rep, members in groups)
            if tracer.enabled:
                span.annotate(groups=len(groups), shared=shared)
        if shared:
            self._metrics.incr("screen.shared_verdicts", shared)
        return groups
