"""Lightweight runtime metrics: counters and wall-clock timers.

The runtime layer (oracle, executor, mediator) records how much work it does
— accesses performed, facts retrieved, cache hits and misses, time spent in
relevance procedures — so benchmark runs and production deployments can
observe the effect of memoization without attaching a profiler.  The
implementation is deliberately dependency-free: plain dictionaries, explicit
snapshots, one lock.

The lock matters because a single metrics sink is shared by every component
of an answering run, including the worker threads of the parallel executor:
``dict.get`` + store is not atomic, so unlocked concurrent ``incr`` calls
lose counts.  Timers only lock the accumulation, never the timed body, so
concurrent ``timer`` blocks overlap freely (their durations sum, as before).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["RuntimeMetrics"]


class RuntimeMetrics:
    """A thread-safe bag of named counters and cumulative timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the ``with`` body."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._timers[name] = self._timers.get(name, 0.0) + elapsed

    def elapsed(self, name: str) -> float:
        """Cumulative seconds recorded under timer ``name``."""
        with self._lock:
            return self._timers.get(name, 0.0)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """A plain-dict snapshot (counters and timers)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": dict(self._timers),
            }

    def reset(self) -> None:
        """Drop all recorded values."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RuntimeMetrics(counters={self._counters!r})"
