"""Lightweight runtime metrics: counters, wall-clock timers, cache gauges.

The runtime layer (oracle, executor, mediator, query server) records how much
work it does — accesses performed, facts retrieved, cache hits and misses,
time spent in relevance procedures — so benchmark runs and production
deployments can observe the effect of memoization without attaching a
profiler.  The implementation is deliberately dependency-free: plain
dictionaries, explicit snapshots, one lock.

The lock matters because a single metrics sink is shared by every component
of an answering run, including the worker threads of the parallel executor:
``dict.get`` + store is not atomic, so unlocked concurrent ``incr`` calls
lose counts.  Timers only lock the accumulation, never the timed body, so
concurrent ``timer`` blocks overlap freely — their durations *sum*, which
with the parallel runtimes means a summed timer can legitimately exceed
wall-clock.  To keep that interpretable every timer also counts its calls
(:meth:`timer_calls`): ``elapsed / calls`` is the mean per-call cost whatever
the overlap.

Components may additionally :meth:`register_cache` their LRU caches; a
:meth:`snapshot` then includes each cache's hit/miss gauges — including the
per-shard breakdown of a :class:`~repro.runtime.shards.ShardedLRUCache`, so
shard imbalance is visible without poking at internals.
"""

from __future__ import annotations

import threading
import time
import weakref
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["RuntimeMetrics"]


class RuntimeMetrics:
    """A thread-safe bag of named counters, cumulative timers, and gauges."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, float] = {}
        self._timer_calls: Dict[str, int] = {}
        # name -> weakref to the cache.  Weak on purpose: oracles register
        # their caches at construction, and a long-lived server constructs
        # oracles per answer call — a strong registry would pin every dead
        # oracle's LRU forever.  Dead entries are pruned on registration and
        # on snapshot.
        self._caches: Dict[str, "weakref.ref"] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the ``with`` body."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._timers[name] = self._timers.get(name, 0.0) + elapsed
                self._timer_calls[name] = self._timer_calls.get(name, 0) + 1

    def elapsed(self, name: str) -> float:
        """Cumulative seconds recorded under timer ``name``."""
        with self._lock:
            return self._timers.get(name, 0.0)

    def timer_calls(self, name: str) -> int:
        """How many ``timer`` blocks completed under ``name``.

        Together with :meth:`elapsed` this keeps overlapped timers readable:
        parallel runs sum concurrent durations (the total can exceed
        wall-clock), but ``elapsed / timer_calls`` is always the mean
        per-call cost.
        """
        with self._lock:
            return self._timer_calls.get(name, 0)

    # ------------------------------------------------------------------ #
    # Cache gauges
    # ------------------------------------------------------------------ #
    def register_cache(self, name: str, cache: object) -> str:
        """Expose a cache's hit/miss gauges in :meth:`snapshot`.

        ``cache`` must provide a ``stats()`` method (both LRU cache classes
        in :mod:`repro.runtime.shards` do).  Registering an already-used name
        uniquifies it (``name#2``, ``name#3``, ...), so several oracles can
        share one sink — the server does — without clobbering each other's
        gauges.  Only a weak reference is kept: a cache that dies with its
        oracle disappears from the snapshot instead of being pinned, and its
        name becomes reusable.  Registering the *same object* again is
        idempotent (it keeps its original name) — per-request oracles
        re-registering a long-lived store's caches must not mint a new name
        per request.  Returns the name actually registered.
        """
        with self._lock:
            self._prune_dead_caches()
            for existing, ref in self._caches.items():
                if ref() is cache:
                    return existing
            final = name
            suffix = 2
            while final in self._caches:
                final = f"{name}#{suffix}"
                suffix += 1
            self._caches[final] = weakref.ref(cache)
            return final

    def _prune_dead_caches(self) -> None:
        """Drop registrations whose cache was garbage-collected (lock held)."""
        dead = [name for name, ref in self._caches.items() if ref() is None]
        for name in dead:
            del self._caches[name]

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """A plain-dict snapshot (counters, timers, call counts, caches)."""
        with self._lock:
            self._prune_dead_caches()
            caches = {name: ref() for name, ref in self._caches.items()}
            snap: Dict[str, object] = {
                "counters": dict(self._counters),
                "timers": dict(self._timers),
                "timer_calls": dict(self._timer_calls),
            }
        # Cache stats take per-cache locks; collect them outside our own.
        snap["caches"] = {
            name: cache.stats() for name, cache in caches.items() if cache is not None
        }
        return snap

    def reset(self) -> None:
        """Drop all recorded values (registered caches stay registered)."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._timer_calls.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RuntimeMetrics(counters={self._counters!r})"
