"""Lightweight runtime metrics: counters and wall-clock timers.

The runtime layer (oracle, executor, mediator) records how much work it does
— accesses performed, facts retrieved, cache hits and misses, time spent in
relevance procedures — so benchmark runs and production deployments can
observe the effect of memoization without attaching a profiler.  The
implementation is deliberately dependency-free: plain dictionaries, explicit
snapshots.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["RuntimeMetrics"]


class RuntimeMetrics:
    """A bag of named counters and cumulative timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the ``with`` body."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._timers[name] = self._timers.get(name, 0.0) + elapsed

    def elapsed(self, name: str) -> float:
        """Cumulative seconds recorded under timer ``name``."""
        return self._timers.get(name, 0.0)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """A plain-dict snapshot (counters and timers)."""
        return {
            "counters": dict(self._counters),
            "timers": dict(self._timers),
        }

    def reset(self) -> None:
        """Drop all recorded values."""
        self._counters.clear()
        self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RuntimeMetrics(counters={self._counters!r})"
