"""Lightweight runtime metrics: counters, wall-clock timers, cache gauges.

The runtime layer (oracle, executor, mediator, query server) records how much
work it does — accesses performed, facts retrieved, cache hits and misses,
time spent in relevance procedures — so benchmark runs and production
deployments can observe the effect of memoization without attaching a
profiler.  The implementation is deliberately dependency-free: plain
dictionaries, explicit snapshots, one lock.

The lock matters because a single metrics sink is shared by every component
of an answering run, including the worker threads of the parallel executor:
``dict.get`` + store is not atomic, so unlocked concurrent ``incr`` calls
lose counts.  Timers only lock the accumulation, never the timed body, so
concurrent ``timer`` blocks overlap freely — their durations *sum*, which
with the parallel runtimes means a summed timer can legitimately exceed
wall-clock.  To keep that interpretable every timer also counts its calls
(:meth:`timer_calls`): ``elapsed / calls`` is the mean per-call cost whatever
the overlap.

Components may additionally :meth:`register_cache` their LRU caches; a
:meth:`snapshot` then includes each cache's hit/miss gauges — including the
per-shard breakdown of a :class:`~repro.runtime.shards.ShardedLRUCache`, so
shard imbalance is visible without poking at internals.

Cumulative timers answer *how much* total time a component consumed; they
cannot answer "what latency does the p99 query see", which is the number a
traffic-serving deployment is gated on.  :meth:`observe` records individual
latency samples into bounded :class:`LatencyHistogram` buckets (geometric,
microseconds to minutes, fixed memory regardless of sample count), and
:meth:`quantile` / the snapshot's ``histograms`` section report p50/p95/p99
from them.  The runtime records three families: per-query latency
(``server.query_latency`` / ``query.latency``), per-round latency
(``server.round_latency`` / ``round.latency``), and per-source access
latency (``access.latency`` plus ``access.latency.<method>``).
"""

from __future__ import annotations

import math
import threading
import time
import weakref
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["LatencyHistogram", "RuntimeMetrics"]


def _geometric_bounds() -> Tuple[float, ...]:
    """Bucket upper bounds: 1µs growing ~15% per bucket up to ~600s."""
    bounds: List[float] = []
    value = 1e-6
    while value < 600.0:
        bounds.append(value)
        value *= 1.15
    return tuple(bounds)


class LatencyHistogram:
    """A bounded-memory latency histogram with quantile estimates.

    Samples (seconds) land in geometric buckets — ~15% relative resolution
    from a microsecond to ten minutes, a fixed ~140 integers however many
    samples arrive — so a long-lived server can record every query without
    growing state.  Quantiles interpolate within the winning bucket and are
    clamped to the exact observed ``min``/``max``, which keeps small-sample
    estimates honest (a 3-sample p99 is the max, not a bucket bound).
    """

    _BOUNDS = _geometric_bounds()

    __slots__ = ("_counts", "_lock", "count", "total", "min", "max")

    def __init__(self) -> None:
        # One overflow bucket beyond the last bound.
        self._counts = [0] * (len(self._BOUNDS) + 1)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Add one sample (negative values are clamped to zero)."""
        value = seconds if seconds > 0.0 else 0.0
        index = bisect_left(self._BOUNDS, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def quantile(self, q: float) -> Optional[float]:
        """The estimated ``q``-quantile in seconds (``None`` when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be between 0 and 1")
        with self._lock:
            if self.count == 0:
                return None
            rank = max(1, math.ceil(q * self.count))
            cumulative = 0
            index = len(self._counts) - 1
            for i, bucket in enumerate(self._counts):
                cumulative += bucket
                if cumulative >= rank:
                    index = i
                    break
            if index >= len(self._BOUNDS):
                return self.max
            upper = self._BOUNDS[index]
            lower = self._BOUNDS[index - 1] if index > 0 else 0.0
            estimate = (lower + upper) / 2.0
            return min(max(estimate, self.min), self.max)

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper bound, count)`` pairs (Prometheus shape).

        Trimmed to the populated range plus one trailing bucket, so an
        all-microsecond histogram does not export a hundred empty lines.
        """
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        cumulative = 0
        last_nonzero = -1
        for i, bucket in enumerate(counts):
            if bucket:
                last_nonzero = i
        for i in range(min(last_nonzero + 1, len(self._BOUNDS) - 1) + 1):
            cumulative += counts[i]
            out.append((self._BOUNDS[i], cumulative))
        return out

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict summary: count, sum, mean, min/max, p50/p95/p99."""
        with self._lock:
            count, total = self.count, self.total
            minimum = self.min if count else None
            maximum = self.max if count else None
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else None,
            "min": minimum,
            "max": maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __len__(self) -> int:
        return self.count


class RuntimeMetrics:
    """A thread-safe bag of named counters, timers, gauges, and histograms.

    Counters only go up (:meth:`incr`); gauges are set to the current value
    of something (:meth:`set_gauge` — queue depth, in-flight queries, tokens
    left in a rate bucket) and may go down again; timers accumulate
    wall-clock; histograms record latency samples.  The admission layer of
    the network service is the main gauge writer: ``service.queue_depth``
    and ``service.inflight_queries`` are what an operator watches to tell
    "busy" from "about to shed load".
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, float] = {}
        self._timer_calls: Dict[str, int] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        # name -> weakref to the cache.  Weak on purpose: oracles register
        # their caches at construction, and a long-lived server constructs
        # oracles per answer call — a strong registry would pin every dead
        # oracle's LRU forever.  Dead entries are pruned on registration and
        # on snapshot.
        self._caches: Dict[str, "weakref.ref"] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------ #
    # Gauges
    # ------------------------------------------------------------------ #
    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        """Current value of gauge ``name`` (``None`` if never set)."""
        with self._lock:
            return self._gauges.get(name)

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the ``with`` body."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._timers[name] = self._timers.get(name, 0.0) + elapsed
                self._timer_calls[name] = self._timer_calls.get(name, 0) + 1

    def elapsed(self, name: str) -> float:
        """Cumulative seconds recorded under timer ``name``."""
        with self._lock:
            return self._timers.get(name, 0.0)

    def timer_calls(self, name: str) -> int:
        """How many ``timer`` blocks completed under ``name``.

        Together with :meth:`elapsed` this keeps overlapped timers readable:
        parallel runs sum concurrent durations (the total can exceed
        wall-clock), but ``elapsed / timer_calls`` is always the mean
        per-call cost.
        """
        with self._lock:
            return self._timer_calls.get(name, 0)

    # ------------------------------------------------------------------ #
    # Histograms
    # ------------------------------------------------------------------ #
    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample into histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
        # The histogram has its own lock; record outside ours.
        histogram.record(seconds)

    def histogram(self, name: str) -> Optional[LatencyHistogram]:
        """The histogram recorded under ``name`` (``None`` if never observed)."""
        with self._lock:
            return self._histograms.get(name)

    def quantile(self, name: str, q: float) -> Optional[float]:
        """The ``q``-quantile of histogram ``name`` (``None`` when absent/empty)."""
        histogram = self.histogram(name)
        return histogram.quantile(q) if histogram is not None else None

    # ------------------------------------------------------------------ #
    # Cache gauges
    # ------------------------------------------------------------------ #
    def register_cache(self, name: str, cache: object) -> str:
        """Expose a cache's hit/miss gauges in :meth:`snapshot`.

        ``cache`` must provide a ``stats()`` method (both LRU cache classes
        in :mod:`repro.runtime.shards` do).  Registering an already-used name
        uniquifies it (``name#2``, ``name#3``, ...), so several oracles can
        share one sink — the server does — without clobbering each other's
        gauges.  Only a weak reference is kept: a cache that dies with its
        oracle disappears from the snapshot instead of being pinned, and its
        name becomes reusable.  Registering the *same object* again is
        idempotent (it keeps its original name) — per-request oracles
        re-registering a long-lived store's caches must not mint a new name
        per request.  Returns the name actually registered.
        """
        with self._lock:
            self._prune_dead_caches()
            for existing, ref in self._caches.items():
                if ref() is cache:
                    return existing
            final = name
            suffix = 2
            while final in self._caches:
                final = f"{name}#{suffix}"
                suffix += 1
            self._caches[final] = weakref.ref(cache)
            return final

    def _prune_dead_caches(self) -> None:
        """Drop registrations whose cache was garbage-collected (lock held)."""
        dead = [name for name, ref in self._caches.items() if ref() is None]
        for name in dead:
            del self._caches[name]

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """A plain-dict snapshot (counters, timers + means, histograms, caches).

        ``timer_means`` is ``elapsed / calls`` per timer — the mean per-call
        cost, readable directly from bench output without post-processing,
        and the number that stays meaningful when parallel runs make the
        summed total exceed wall-clock.
        """
        with self._lock:
            self._prune_dead_caches()
            caches = {name: ref() for name, ref in self._caches.items()}
            histograms = dict(self._histograms)
            snap: Dict[str, object] = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": dict(self._timers),
                "timer_calls": dict(self._timer_calls),
                "timer_means": {
                    name: elapsed / self._timer_calls[name]
                    for name, elapsed in self._timers.items()
                    if self._timer_calls.get(name)
                },
            }
        # Cache and histogram stats take per-object locks; collect them
        # outside our own.
        snap["histograms"] = {
            name: histogram.snapshot() for name, histogram in histograms.items()
        }
        snap["caches"] = {
            name: cache.stats() for name, cache in caches.items() if cache is not None
        }
        return snap

    def reset(self) -> None:
        """Drop all recorded values and zero registered caches' gauges.

        Registered caches stay registered, but their hit/miss counters are
        reset (via ``reset_stats()`` where the cache provides it) so a
        post-reset snapshot genuinely starts from zero — previously the
        cache gauges kept counting across resets, which made before/after
        bench comparisons silently wrong.
        """
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._timer_calls.clear()
            self._histograms.clear()
            self._prune_dead_caches()
            caches = [ref() for ref in self._caches.values()]
        # Cache stat resets take per-cache locks; run them outside ours.
        for cache in caches:
            reset_stats = getattr(cache, "reset_stats", None)
            if cache is not None and reset_stats is not None:
                reset_stats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RuntimeMetrics(counters={self._counters!r})"
