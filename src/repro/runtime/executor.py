"""Batched access execution against a mediator.

The answering strategies of :mod:`repro.planner.dynamic` used to interleave
bookkeeping (which accesses were already made, how many facts each returned)
with strategy logic.  :class:`AccessExecutor` centralises that bookkeeping:

* it deduplicates accesses, so an access performed once is never re-sent to a
  source;
* it executes *batches* — for the exhaustive strategy, a whole round of
  candidate accesses is dispatched in one call, and with ``max_concurrency``
  the batch's independent accesses overlap their source latency through
  :meth:`~repro.sources.service.Mediator.perform_many`;
* it records per-run metrics (accesses performed, skipped, facts retrieved,
  *new* facts merged).

Progress is measured in **new facts merged**, not tuples returned: with
overlapping sources an access can return plenty of tuples the configuration
already knows, and a round of such accesses must not count as progress (the
strategies would run a provably idle extra round).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.data import AccessResponse, Configuration, Fact
from repro.exceptions import DeadlineExceeded
from repro.runtime.cache import access_key
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.tracing import current_tracer
from repro.schema import Access, Schema
from repro.sources.service import Mediator

__all__ = ["AccessExecutor", "BatchResult", "candidate_accesses"]


def candidate_accesses(
    schema: Schema,
    configuration: Configuration,
    performed_key: Callable[[Tuple[str, Tuple[object, ...]]], bool],
) -> List[Access]:
    """Well-formed accesses (dependent bindings from the active domain) not yet made.

    This is the per-round enumeration every answering strategy starts from —
    the single-query strategies of :mod:`repro.planner.dynamic` and the
    multi-query rounds of :class:`~repro.runtime.server.QueryServer` (which
    enumerates once per round and shares the list across all its queries).
    ``performed_key`` is usually :meth:`AccessExecutor.has_performed_key`.
    """
    candidates: List[Access] = []
    by_domain = configuration.active_values_by_domain()
    for method in schema.access_methods:
        pools: List[Tuple[object, ...]] = []
        feasible = True
        for place in method.input_places:
            domain = method.relation.domain_of(place)
            values = by_domain.get(domain)
            if not values:
                feasible = False
                break
            pools.append(values)
        if not feasible:
            continue
        for binding in itertools.product(*pools) if pools else [()]:
            if performed_key((method.name, binding)):
                continue
            candidates.append(Access(method, binding))
    return candidates


@dataclass
class BatchResult:
    """Outcome of a batch of accesses.

    ``failed`` lists ``(access, error, attempts)`` for accesses that could
    not be performed (only populated in degraded mode, i.e. when the batch
    ran with ``tolerate_failures=True``); ``attempts_by_key`` maps each
    access key that reached a source to its source-call attempt count
    (1 unless the retry policy kicked in); ``deadline_expired`` records that
    the batch's deadline cut it short.
    """

    responses: List[AccessResponse] = field(default_factory=list)
    performed: int = 0
    skipped: int = 0
    new_facts: int = 0
    failed: List[Tuple[Access, BaseException, int]] = field(default_factory=list)
    attempts_by_key: Dict[Tuple[str, Tuple[object, ...]], int] = field(default_factory=dict)
    deadline_expired: bool = False

    @property
    def facts_returned(self) -> int:
        """Total tuples returned across the batch's responses."""
        return sum(len(response) for response in self.responses)

    @property
    def progressed(self) -> bool:
        """Whether the batch merged at least one fact the configuration lacked.

        Tuples that were already present (overlapping sources re-returning
        known facts) do not count: re-running a round after a no-new-facts
        batch is provably idle, since the configuration — and therefore every
        candidate set and relevance verdict — is unchanged.
        """
        return self.new_facts > 0

    def delta_facts(self) -> List[Fact]:
        """The batch's merged facts, deduplicated across responses.

        Responses are merged all-or-nothing before being recorded, so the
        post-batch configuration is exactly the pre-batch one plus these
        facts; consumers maintaining incremental state (the certainty
        fixpoint) can advance by this delta instead of re-reading the
        configuration.  May still include facts the configuration already
        had before the batch — sound for any dedup-on-absorb consumer.
        """
        seen: Set[Fact] = set()
        delta: List[Fact] = []
        for response in self.responses:
            for fact in response.as_facts():
                if fact not in seen:
                    seen.add(fact)
                    delta.append(fact)
        return delta


class AccessExecutor:
    """Deduplicating, metric-recording executor over one mediator."""

    def __init__(self, mediator: Mediator, *, metrics: Optional[RuntimeMetrics] = None) -> None:
        self._mediator = mediator
        self._metrics = metrics if metrics is not None else RuntimeMetrics()
        self._performed: Set[Tuple[str, Tuple[object, ...]]] = set()

    @property
    def mediator(self) -> Mediator:
        """The mediator accesses are executed against."""
        return self._mediator

    @property
    def metrics(self) -> RuntimeMetrics:
        """The metrics sink the executor records into."""
        return self._metrics

    def key(self, access: Access) -> Tuple[str, Tuple[object, ...]]:
        """The deduplication key of an access (shared with the oracle)."""
        return access_key(access)

    def already_performed(self, access: Access) -> bool:
        """Whether the executor has already performed this access."""
        return self.key(access) in self._performed

    def has_performed_key(self, key: Tuple[str, Tuple[object, ...]]) -> bool:
        """Key-based variant of :meth:`already_performed` (no Access needed)."""
        return key in self._performed

    def execute(self, access: Access) -> Optional[AccessResponse]:
        """Perform one access (``None`` if it was already performed)."""
        key = self.key(access)
        if key in self._performed:
            self._metrics.incr("executor.skipped")
            return None
        response, _new_facts = self._mediator.perform_counted(access)
        self._performed.add(key)
        self._metrics.incr("executor.performed")
        self._metrics.incr("executor.facts", len(response))
        return response

    def execute_batch(
        self,
        accesses: Iterable[Access],
        *,
        precheck: Optional[Callable[[Access], bool]] = None,
        stop: Optional[Callable[[], bool]] = None,
        max_concurrency: int = 1,
        annotate_access: Optional[Callable[[Access], Optional[Dict[str, object]]]] = None,
        on_response: Optional[Callable[[AccessResponse], None]] = None,
        deadline=None,
        tolerate_failures: bool = False,
    ) -> BatchResult:
        """Perform every not-yet-performed access of the batch.

        ``precheck`` is consulted immediately before each dispatch, against
        whatever state earlier completions of the batch merged — the
        relevance-guided strategy passes its oracle here, so an access
        screened relevant at the top of the round is re-validated (cheaply,
        through the incremental engine) at the configuration it actually
        executes against.  ``stop`` ends the batch between completions (e.g.
        the query became certain); responses already in flight are still
        merged, so the performed set always equals the dispatched set.
        ``on_response`` is invoked on the calling thread for each response,
        immediately after its facts are merged into the configuration and
        before any subsequent ``stop`` or ``precheck`` evaluation — the
        ordering incremental consumers (the certainty fixpoint) rely on to
        stay in lineage with the live configuration mid-batch.

        With ``max_concurrency > 1`` the batch overlaps source latency
        through :meth:`Mediator.perform_many`; prechecks, stop checks, and
        merges all stay on the calling thread (see the mediator's concurrency
        notes), so the semantics match the sequential path except that up to
        ``max_concurrency`` accesses dispatched before a stop may complete.

        When tracing is active the batch runs under an ``access-batch`` span
        (each performed access's ``source-call`` span parents under it, even
        from pool worker threads), and ``annotate_access`` — evaluated at
        dispatch time — supplies extra tags for each access's span; the
        query server passes the screening layer's why-was-this-performed
        annotations here.  Per-access latency always lands in the
        ``access.latency`` and ``access.latency.<method>`` histograms.

        Fault tolerance: with ``tolerate_failures=True`` a failing access
        does not abort the batch — it lands in ``result.failed`` as
        ``(access, error, attempts)`` and its batchmates proceed; the access
        is *not* marked performed, so a later round (or ``answer`` call) may
        retry it.  ``deadline`` bounds the batch through
        :meth:`Mediator.perform_many`: after expiry nothing new is
        dispatched, hung in-flight work is abandoned unmerged, and
        ``result.deadline_expired`` is set.  With both left at their
        defaults the batch is bit-identical to the pre-fault-tolerance
        behavior (first failure raises, enriched with ``error.access`` and
        partial ``error.timings``).
        """
        result = BatchResult()

        deduplicated: List[Access] = []
        seen: Set[Tuple[str, Tuple[object, ...]]] = set()
        for access in accesses:
            key = self.key(access)
            if key in self._performed or key in seen:
                result.skipped += 1
                self._metrics.incr("executor.skipped")
                continue
            seen.add(key)
            deduplicated.append(access)

        def should_perform(access: Access) -> bool:
            if precheck is not None and not precheck(access):
                result.skipped += 1
                self._metrics.incr("executor.precheck_skipped")
                return False
            return True

        def on_performed(access: Access, response: AccessResponse, new_facts: int) -> None:
            # Recorded per merge, not after the batch: accesses performed
            # before a mid-batch failure stay deduplicated on a retry.
            self._performed.add(self.key(access))
            self._metrics.incr("executor.performed")
            self._metrics.incr("executor.facts", len(response))
            result.performed += 1
            result.responses.append(response)
            result.new_facts += new_facts
            if on_response is not None:
                on_response(response)

        def on_timing(access: Access, duration: float) -> None:
            self._metrics.observe("access.latency", duration)
            self._metrics.observe(f"access.latency.{access.method.name}", duration)

        def on_attempts(access: Access, attempts: int) -> None:
            result.attempts_by_key[self.key(access)] = attempts

        def on_failure(access: Access, error: BaseException, attempts: int) -> None:
            result.failed.append((access, error, attempts))
            if attempts:
                result.attempts_by_key[self.key(access)] = attempts
            if isinstance(error, DeadlineExceeded):
                result.deadline_expired = True
            self._metrics.incr("executor.failed")

        tracer = current_tracer()
        with tracer.span(
            "access-batch",
            candidates=len(deduplicated),
            max_concurrency=max_concurrency,
        ) as batch_span:
            self._mediator.perform_many(
                deduplicated,
                max_concurrency=max_concurrency,
                stop=stop,
                should_perform=should_perform if precheck is not None else None,
                on_performed=on_performed,
                on_timing=on_timing,
                on_attempts=on_attempts,
                on_failure=on_failure if tolerate_failures else None,
                tags_for=annotate_access,
                deadline=deadline,
            )
            if deadline is not None and deadline.expired():
                result.deadline_expired = True
            batch_span.annotate(
                performed=result.performed,
                skipped=result.skipped,
                new_facts=result.new_facts,
            )
            if result.failed:
                batch_span.annotate(failed=len(result.failed))
        return result
