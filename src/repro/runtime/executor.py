"""Batched access execution against a mediator.

The answering strategies of :mod:`repro.planner.dynamic` used to interleave
bookkeeping (which accesses were already made, how many facts each returned)
with strategy logic.  :class:`AccessExecutor` centralises that bookkeeping:

* it deduplicates accesses, so an access performed once is never re-sent to a
  source;
* it executes *batches* — for the exhaustive strategy, a whole round of
  candidate accesses is dispatched in one call;
* it records per-run metrics (accesses performed, skipped, facts retrieved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Set, Tuple

from repro.data import AccessResponse
from repro.runtime.cache import access_key
from repro.runtime.metrics import RuntimeMetrics
from repro.schema import Access
from repro.sources.service import Mediator

__all__ = ["AccessExecutor", "BatchResult"]


@dataclass
class BatchResult:
    """Outcome of a batch of accesses."""

    responses: List[AccessResponse] = field(default_factory=list)
    performed: int = 0
    skipped: int = 0

    @property
    def facts_returned(self) -> int:
        """Total tuples returned across the batch's responses."""
        return sum(len(response) for response in self.responses)

    @property
    def progressed(self) -> bool:
        """Whether at least one access of the batch returned a tuple."""
        return any(len(response) > 0 for response in self.responses)


class AccessExecutor:
    """Deduplicating, metric-recording executor over one mediator."""

    def __init__(self, mediator: Mediator, *, metrics: Optional[RuntimeMetrics] = None) -> None:
        self._mediator = mediator
        self._metrics = metrics if metrics is not None else RuntimeMetrics()
        self._performed: Set[Tuple[str, Tuple[object, ...]]] = set()

    @property
    def mediator(self) -> Mediator:
        """The mediator accesses are executed against."""
        return self._mediator

    @property
    def metrics(self) -> RuntimeMetrics:
        """The metrics sink the executor records into."""
        return self._metrics

    def key(self, access: Access) -> Tuple[str, Tuple[object, ...]]:
        """The deduplication key of an access (shared with the oracle)."""
        return access_key(access)

    def already_performed(self, access: Access) -> bool:
        """Whether the executor has already performed this access."""
        return self.key(access) in self._performed

    def has_performed_key(self, key: Tuple[str, Tuple[object, ...]]) -> bool:
        """Key-based variant of :meth:`already_performed` (no Access needed)."""
        return key in self._performed

    def execute(self, access: Access) -> Optional[AccessResponse]:
        """Perform one access (``None`` if it was already performed)."""
        key = self.key(access)
        if key in self._performed:
            self._metrics.incr("executor.skipped")
            return None
        response = self._mediator.perform(access)
        self._performed.add(key)
        self._metrics.incr("executor.performed")
        self._metrics.incr("executor.facts", len(response))
        return response

    def execute_batch(
        self,
        accesses: Iterable[Access],
        *,
        precheck: Optional[Callable[[Access], bool]] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> BatchResult:
        """Perform every not-yet-performed access of the batch, in order.

        ``precheck`` is consulted immediately before each execution, against
        whatever state earlier accesses of the batch produced — the
        relevance-guided strategy passes its oracle here, so an access
        screened relevant at the top of the round is re-validated (cheaply,
        through the incremental engine) at the configuration it actually
        executes against.  ``stop`` aborts the rest of the batch (e.g. the
        query became certain).
        """
        result = BatchResult()
        for access in accesses:
            if stop is not None and stop():
                break
            if precheck is not None and not precheck(access):
                result.skipped += 1
                self._metrics.incr("executor.precheck_skipped")
                continue
            response = self.execute(access)
            if response is None:
                result.skipped += 1
                continue
            result.performed += 1
            result.responses.append(response)
        return result
