"""Hierarchical tracing for the answering runtime.

:class:`~repro.runtime.metrics.RuntimeMetrics` answers *how much* work a run
did; it cannot answer *where one query's time went*.  This module records
that: a :class:`Tracer` collects :class:`Span` records — named, tagged,
wall-clocked intervals with parent links — forming one tree per answering
call (``query → round → screen → oracle → witness-revalidate/fresh-search →
access-batch → source-call``).  The exporters in
:mod:`repro.runtime.export` render the collected spans as a Prometheus text
snapshot, a JSON document, a Chrome-trace/Perfetto file, or a human-readable
``explain`` report.

Three properties shape the design:

* **Off by default, and free when off.**  Instrumented code asks
  :func:`current_tracer` for the thread's active tracer and gets the
  :data:`NO_TRACER` singleton unless a caller activated a real one
  (:func:`activate_tracer`, or the ``tracer=`` knob of the server and the
  answering strategies).  Every :class:`NullTracer` operation returns a
  shared no-op span object — no allocation, no lock, no clock read — and the
  hot paths additionally guard on ``tracer.enabled`` so an untraced run skips
  even the keyword-argument packing.  ``tests/test_tracing.py`` asserts the
  per-call overhead of the no-op recorder stays negligible.

* **Explicit context propagation across pools.**  Thread-locals don't follow
  work onto executor threads or pool processes, so nothing implicit is
  relied on at a boundary.  Crossing the :class:`AccessExecutor` thread pool,
  the dispatching thread captures :meth:`Tracer.context` and the worker opens
  its span with an explicit ``parent=``.  Crossing the
  :class:`~repro.runtime.procpool.ProcessRelevancePool` boundary, the worker
  process records spans into its own local tracer, ships them back as plain
  tuples (:func:`encode_spans` — the same wire discipline as
  :mod:`repro.runtime.serialize`), and the parent re-anchors them under the
  submitting span (:meth:`Tracer.adopt_spans`), remapping ids and tagging
  them ``remote`` so a flame graph shows which subtrees ran out of process.

* **Dual clocks.**  Spans stamp ``time.time()`` at entry (comparable across
  the processes of one machine, and the Chrome-trace timestamp base) and
  measure duration with ``time.perf_counter()`` (monotonic, so durations
  never go negative under clock steps).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

__all__ = [
    "NO_TRACER",
    "NullTracer",
    "Span",
    "SpanContext",
    "Tracer",
    "activate_tracer",
    "current_tracer",
    "encode_spans",
]


class SpanContext(NamedTuple):
    """The addressable identity of a span: enough to parent children under it."""

    trace_id: int
    span_id: int


class Span:
    """One recorded interval: name, tags, wall-clock start, duration, parent.

    Spans double as context managers: ``with tracer.span("round"):`` opens
    the span, makes it the implicit parent for spans opened on the same
    thread inside the body, and records it on exit.  :meth:`annotate` may add
    tags at any time — including after the span closed, which is how the
    executor attaches merge-time facts (``new_facts``) to a source call that
    timed out on a worker thread.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "tags",
        "pid",
        "thread",
        "remote",
        "_tracer",
        "_t0",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        tags: Dict[str, object],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = 0.0
        self.duration = 0.0
        self.tags = tags
        self.pid = os.getpid()
        self.thread = threading.get_ident()
        self.remote = False
        self._tracer = tracer
        self._t0 = 0.0

    @property
    def context(self) -> SpanContext:
        """This span's :class:`SpanContext` (pass as ``parent=`` anywhere)."""
        return SpanContext(self.trace_id, self.span_id)

    def annotate(self, **tags: object) -> None:
        """Merge tags into the span (usable before, during, or after closing)."""
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        self.start = time.time()
        self._t0 = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, *_exc: object) -> None:
        self.duration = time.perf_counter() - self._t0
        self._tracer._pop(self)
        self._tracer._record(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration * 1000:.3f}ms, tags={self.tags!r})"
        )


class _NullSpan:
    """The shared do-nothing span: every no-op trace call returns this object."""

    __slots__ = ()
    #: Mirrors :attr:`Span.context`; ``None`` means "no parent to propagate".
    context: Optional[SpanContext] = None

    def annotate(self, **_tags: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled recorder: structurally a :class:`Tracer`, costs nothing.

    All methods return immediately with shared singletons; ``enabled`` is
    ``False`` so hot paths can skip even building the tag dictionary.
    """

    __slots__ = ()
    enabled = False

    def span(
        self, name: str, *, parent: Optional[SpanContext] = None, **tags: object
    ) -> _NullSpan:
        """Return the shared no-op span (records nothing)."""
        return _NULL_SPAN

    def context(self) -> Optional[SpanContext]:
        """No current span: always ``None``."""
        return None

    def record_span(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        parent: Optional[SpanContext] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> _NullSpan:
        """Discard the pre-timed span; returns the shared no-op span."""
        return _NULL_SPAN

    def adopt_spans(
        self,
        specs: Sequence[Tuple],
        parent: Optional[SpanContext],
        **extra_tags: object,
    ) -> List["Span"]:
        """Discard wire-encoded spans from workers; returns no spans."""
        return []

    def spans(self) -> List["Span"]:
        """Nothing was recorded: always an empty list."""
        return []

    def reset(self) -> None:
        """Nothing to clear; present for :class:`Tracer` interchangeability."""
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: The process-wide disabled recorder (what :func:`current_tracer` returns
#: when nothing is activated).  Never mutated, safe to share everywhere.
NO_TRACER = NullTracer()


class Tracer:
    """A thread-safe span recorder with per-thread implicit parenting.

    Spans opened with ``with tracer.span(...)`` nest through a per-thread
    stack; an explicit ``parent=`` (a :class:`SpanContext`, typically carried
    across a pool boundary) overrides the stack.  Completed spans accumulate
    in insertion (completion) order; :meth:`spans` snapshots them for the
    exporters.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._stacks = threading.local()

    # ------------------------------------------------------------------ #
    # Per-thread span stack
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[SpanContext]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span.context)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1].span_id == span.span_id:
            stack.pop()

    def context(self) -> Optional[SpanContext]:
        """The innermost open span on *this* thread (to hand across a pool)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(
        self, name: str, *, parent: Optional[SpanContext] = None, **tags: object
    ) -> Span:
        """A new span; enter it with ``with``.

        Without ``parent`` the innermost open span on this thread (if any)
        becomes the parent; a root span opens a fresh trace whose id is its
        own span id.
        """
        if parent is None:
            parent = self.context()
        span_id = next(self._ids)
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = span_id, None
        return Span(self, name, trace_id, span_id, parent_id, tags)

    def record_span(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        parent: Optional[SpanContext] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Record an already-measured interval as a completed span.

        For work timed elsewhere (e.g. a worker thread measured a source
        call and only the timing crossed back): no stack interaction, the
        span is appended directly.
        """
        span = self.span(name, parent=parent, **(tags or {}))
        span.start = start
        span.duration = duration
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------------ #
    # Wire-format adoption (process-pool boundary)
    # ------------------------------------------------------------------ #
    def adopt_spans(
        self,
        specs: Sequence[Tuple],
        parent: Optional[SpanContext],
        **extra_tags: object,
    ) -> List[Span]:
        """Re-anchor worker-process spans (from :func:`encode_spans`) here.

        Every spec gets a fresh span id from this tracer; worker-local parent
        links are remapped through the same assignment, and spans whose
        worker-side parent is unknown (the worker's roots) are parented under
        ``parent``.  Adopted spans keep their worker wall-clock ``start`` and
        ``duration`` (same machine, same epoch) plus the recording process id,
        and are flagged ``remote`` so exporters and nesting checks can tell
        shipped subtrees from local ones.
        """
        if not specs:
            return []
        id_map: Dict[int, int] = {}
        for spec in specs:
            id_map[spec[0]] = next(self._ids)
        trace_id = parent.trace_id if parent is not None else id_map[specs[0][0]]
        adopted: List[Span] = []
        for spec in specs:
            old_id, old_parent, name, start, duration, tag_items, pid, thread = spec
            tags = dict(tag_items)
            tags.update(extra_tags)
            span = Span(
                self,
                name,
                trace_id,
                id_map[old_id],
                (
                    id_map[old_parent]
                    if old_parent in id_map
                    else (parent.span_id if parent is not None else None)
                ),
                tags,
            )
            span.start = start
            span.duration = duration
            span.pid = pid
            span.thread = thread
            span.remote = True
            adopted.append(span)
        with self._lock:
            self._spans.extend(adopted)
        return adopted

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def spans(self) -> List[Span]:
        """A snapshot of every completed span, in completion order."""
        with self._lock:
            return list(self._spans)

    def trace_ids(self) -> List[int]:
        """Distinct trace ids, in first-completion order."""
        seen: Dict[int, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def reset(self) -> None:
        """Drop every recorded span (open spans on other threads unaffected)."""
        with self._lock:
            self._spans.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return f"Tracer(spans={len(self._spans)})"


def encode_spans(spans: Iterable[Span]) -> Tuple[Tuple, ...]:
    """Flatten spans to plain pickle-friendly tuples for the pool wire.

    Each spec is ``(span_id, parent_id, name, start, duration, tag items,
    pid, thread)`` — the inverse of :meth:`Tracer.adopt_spans`.  Tag values
    recorded by the runtime are primitives, so the tuples pickle and JSON-ify
    without custom reducers.
    """
    return tuple(
        (
            span.span_id,
            span.parent_id,
            span.name,
            span.start,
            span.duration,
            tuple(span.tags.items()),
            span.pid,
            span.thread,
        )
        for span in spans
    )


# --------------------------------------------------------------------------- #
# Ambient (per-thread) active tracer
# --------------------------------------------------------------------------- #
_ACTIVE = threading.local()

TracerLike = Union[Tracer, NullTracer]


def current_tracer() -> TracerLike:
    """The tracer active on this thread (:data:`NO_TRACER` when none is).

    Deliberately thread-local, not inherited: a worker thread or process must
    receive its context explicitly (``parent=`` / :func:`activate_tracer`),
    which is what keeps parent links correct across the pools.
    """
    tracer = getattr(_ACTIVE, "tracer", None)
    return tracer if tracer is not None else NO_TRACER


class _Activation:
    """Context manager making a tracer the thread's ambient recorder."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[TracerLike]) -> None:
        self._tracer = tracer if tracer is not None else NO_TRACER
        self._previous: Optional[TracerLike] = None

    def __enter__(self) -> TracerLike:
        self._previous = getattr(_ACTIVE, "tracer", None)
        _ACTIVE.tracer = self._tracer
        return self._tracer

    def __exit__(self, *_exc: object) -> None:
        _ACTIVE.tracer = self._previous


def activate_tracer(tracer: Optional[TracerLike]) -> _Activation:
    """Activate ``tracer`` for this thread within a ``with`` block.

    ``None`` activates :data:`NO_TRACER` (explicitly disabling tracing for
    the block).  The previous ambient tracer is restored on exit, so
    activations nest.
    """
    return _Activation(tracer)
