"""Runtime layer: memoized relevance verdicts, batched execution, metrics.

This package hosts the pieces a *production* dynamic-answering deployment
needs around the paper's decision procedures:

* :class:`~repro.runtime.cache.RelevanceOracle` — memoizes immediate
  relevance, long-term relevance, and certainty verdicts, keyed by the
  access and the configuration's content fingerprint;
* :class:`~repro.runtime.executor.AccessExecutor` — deduplicating, batched
  access execution against a :class:`~repro.sources.service.Mediator`;
* :class:`~repro.runtime.metrics.RuntimeMetrics` — counters and timers the
  other components record into.
"""

from repro.runtime.cache import LRUCache, RelevanceOracle, access_key
from repro.runtime.executor import AccessExecutor, BatchResult
from repro.runtime.metrics import RuntimeMetrics

__all__ = [
    "AccessExecutor",
    "BatchResult",
    "LRUCache",
    "RelevanceOracle",
    "RuntimeMetrics",
    "access_key",
]
