"""Runtime layer: incremental relevance verdicts, batched execution, metrics.

This package hosts the pieces a *production* dynamic-answering deployment
needs around the paper's decision procedures:

* :class:`~repro.runtime.cache.RelevanceOracle` — memoizes immediate
  relevance, long-term relevance, and certainty verdicts, keyed by the
  access and the configuration's content fingerprint, and reuses long-term
  verdicts *incrementally* across configuration growth (delta inheritance,
  witness-path revalidation);
* :mod:`~repro.runtime.witness` — the incremental machinery itself: captured
  witness paths (:class:`~repro.runtime.witness.LtrWitness`) and verdict
  dependency snapshots (:class:`~repro.runtime.witness.ConfigurationSnapshot`);
* :class:`~repro.runtime.screening.CandidateScreen` — batched pre-oracle
  screening: the relevant-relation-closure prefilter and structural
  equivalence grouping of candidate bindings;
* :class:`~repro.runtime.executor.AccessExecutor` — deduplicating, batched
  access execution against a :class:`~repro.sources.service.Mediator`, with
  ``max_concurrency`` overlapping a batch's source latency;
* :mod:`~repro.runtime.shards` — lock-protected and sharded LRU caches plus
  the :class:`~repro.runtime.shards.SharedVerdictStore` that pools LTR
  history and witnesses across oracles for one (query, schema);
* :class:`~repro.runtime.metrics.RuntimeMetrics` — thread-safe counters and
  timers the other components record into.
"""

from repro.runtime.cache import LRUCache, RelevanceOracle, access_key
from repro.runtime.executor import AccessExecutor, BatchResult
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.screening import CandidateScreen, relevant_relation_closure
from repro.runtime.shards import ShardedLRUCache, SharedVerdictStore
from repro.runtime.witness import (
    ConfigurationSnapshot,
    LtrWitness,
    dependent_input_domains,
)

__all__ = [
    "AccessExecutor",
    "BatchResult",
    "CandidateScreen",
    "ConfigurationSnapshot",
    "LRUCache",
    "LtrWitness",
    "RelevanceOracle",
    "RuntimeMetrics",
    "ShardedLRUCache",
    "SharedVerdictStore",
    "access_key",
    "dependent_input_domains",
    "relevant_relation_closure",
]
