"""Runtime layer: incremental relevance verdicts, batched execution, metrics.

This package hosts the pieces a *production* dynamic-answering deployment
needs around the paper's decision procedures:

* :class:`~repro.runtime.cache.RelevanceOracle` — memoizes immediate
  relevance, long-term relevance, and certainty verdicts, keyed by the
  access and the configuration's content fingerprint, and reuses long-term
  verdicts *incrementally* across configuration growth (delta inheritance,
  witness-path revalidation);
* :mod:`~repro.runtime.witness` — the incremental machinery itself: captured
  witness paths (:class:`~repro.runtime.witness.LtrWitness`) and verdict
  dependency snapshots (:class:`~repro.runtime.witness.ConfigurationSnapshot`);
* :class:`~repro.runtime.screening.CandidateScreen` — batched pre-oracle
  screening: the relevant-relation-closure prefilter and structural
  equivalence grouping of candidate bindings;
* :class:`~repro.runtime.executor.AccessExecutor` — deduplicating, batched
  access execution against a :class:`~repro.sources.service.Mediator`, with
  ``max_concurrency`` overlapping a batch's source latency;
* :mod:`~repro.runtime.shards` — lock-protected and sharded LRU caches plus
  the :class:`~repro.runtime.shards.SharedVerdictStore` that pools LTR
  history and witnesses across oracles for one (query, schema);
* :class:`~repro.runtime.procpool.ProcessRelevancePool` — ships CPU-bound
  LTR/certainty searches to worker processes (the thread pool above only
  overlaps latency; the GIL serializes the searches themselves);
* :class:`~repro.runtime.persist.PersistentWitnessCache` — witness paths on
  disk, so a warm restart revalidates instead of searching fresh;
* :mod:`~repro.runtime.storage` — the pluggable storage backends under the
  persistent cache: compacting JSONL (single writer) and WAL-mode SQLite
  (safe for N concurrent server processes sharing one store);
* :mod:`~repro.runtime.serialize` — the wire formats and process-stable
  digests both of the above are built on;
* :class:`~repro.runtime.server.QueryServer` — the multi-query answering
  runtime: a batch of Boolean queries over one shared configuration, every
  performed access advancing every query's strategy;
* :class:`~repro.runtime.metrics.RuntimeMetrics` — thread-safe counters,
  timers (with call counts), latency histograms (p50/p95/p99), and cache
  gauges the other components record into;
* :mod:`~repro.runtime.tracing` — hierarchical spans over the whole answering
  path (``answer → round → screen → oracle → access-batch → source-call``),
  off by default via an ambient no-op tracer, propagated across the thread
  pool and re-anchored across the process-pool wire;
* :mod:`~repro.runtime.export` — Prometheus text, JSON snapshot, and
  Chrome-trace (Perfetto) exporters plus the per-query ``explain`` report;
* :class:`~repro.runtime.service.AnsweringService` — the network-facing
  HTTP front end: query submission over the wire, coalesced shared rounds,
  outcome streaming/polling, ``/metrics`` and per-query trace endpoints;
* :class:`~repro.runtime.admission.AdmissionController` — the service's
  per-client token-bucket rate limits, in-flight quotas, queue/pool
  backpressure (429/503 + ``Retry-After``), and round/access fairness
  budgets;
* :mod:`~repro.runtime.retry` — the fault-tolerance primitives: seeded
  :class:`~repro.runtime.retry.RetryPolicy` backoff, per-source
  :class:`~repro.runtime.retry.CircuitBreaker` state machines (grouped in a
  :class:`~repro.runtime.retry.BreakerBoard`), and the monotonic
  :class:`~repro.runtime.retry.Deadline` the server propagates into batch
  waits so degraded answers stay sound instead of hanging.
"""

from repro.runtime.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.runtime.cache import LRUCache, RelevanceOracle, access_key
from repro.runtime.executor import AccessExecutor, BatchResult
from repro.runtime.export import (
    chrome_trace_events,
    explain_trace,
    json_snapshot,
    prometheus_text,
    write_chrome_trace,
)
from repro.runtime.metrics import LatencyHistogram, RuntimeMetrics
from repro.runtime.persist import PersistentWitnessCache
from repro.runtime.procpool import ProcessRelevancePool, default_search_workers
from repro.runtime.retry import (
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from repro.runtime.screening import CandidateScreen, relevant_relation_closure
from repro.runtime.server import MultiQueryMediator, QueryOutcome, QueryServer, ServerResult
from repro.runtime.service import AnsweringService, ServiceHandle, serve_in_background
from repro.runtime.shards import ShardedLRUCache, SharedVerdictStore
from repro.runtime.storage import (
    CompactionResult,
    JsonlWitnessStore,
    SqliteWitnessStore,
    WitnessStore,
    open_witness_store,
)
from repro.runtime.tracing import (
    NO_TRACER,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    activate_tracer,
    current_tracer,
    encode_spans,
)
from repro.runtime.witness import (
    ConfigurationSnapshot,
    LtrWitness,
    dependent_input_domains,
)

__all__ = [
    "AccessExecutor",
    "AdmissionController",
    "AdmissionDecision",
    "AnsweringService",
    "BatchResult",
    "BreakerBoard",
    "CandidateScreen",
    "CircuitBreaker",
    "CompactionResult",
    "ConfigurationSnapshot",
    "Deadline",
    "JsonlWitnessStore",
    "LRUCache",
    "LatencyHistogram",
    "LtrWitness",
    "MultiQueryMediator",
    "NO_TRACER",
    "NullTracer",
    "PersistentWitnessCache",
    "ProcessRelevancePool",
    "QueryOutcome",
    "QueryServer",
    "RelevanceOracle",
    "RetryPolicy",
    "RuntimeMetrics",
    "ServerResult",
    "ServiceHandle",
    "ShardedLRUCache",
    "SharedVerdictStore",
    "Span",
    "SqliteWitnessStore",
    "SpanContext",
    "TokenBucket",
    "Tracer",
    "WitnessStore",
    "access_key",
    "activate_tracer",
    "chrome_trace_events",
    "current_tracer",
    "default_search_workers",
    "dependent_input_domains",
    "encode_spans",
    "explain_trace",
    "json_snapshot",
    "open_witness_store",
    "prometheus_text",
    "relevant_relation_closure",
    "serve_in_background",
    "write_chrome_trace",
]
