"""Incremental reuse of long-term relevance verdicts.

The direct LTR search (:func:`repro.core.longterm_dependent.find_ltr_witness_steps`)
is the dominant cost of relevance-guided answering: every verdict at a new
configuration fingerprint redoes a witness-assignment × production-plan
search.  The paper's tree-like (crayfish-chase) witness shape makes most of
that work reusable, in both directions:

* **positive verdicts** carry an explicit witness path.  A path found at
  configuration ``C`` usually stays a valid witness at a later configuration
  ``C' ⊇ C`` — the active domain only grew, so every step stays well-formed —
  and checking that takes time linear in the path length
  (:meth:`LtrWitness.revalidate`) instead of a fresh search;
* **negative (and positive) verdicts** can be *inherited* across a
  configuration delta that provably cannot change them.  A verdict computed
  at ``C`` is a function of the query-relation facts of ``C``, of the active
  domain values usable as dependent-access inputs, and of nothing else; a
  superset configuration whose delta adds only facts over query-irrelevant
  relations, with values confined to domains no dependent method consumes,
  yields the same verdict (:meth:`ConfigurationSnapshot.delta_safe`).

This module is the mechanism; the policy (when to revalidate, when to fall
back to a fresh search) lives in :class:`repro.runtime.cache.RelevanceOracle`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Tuple

from repro.data import AccessPath, AccessResponse, Configuration, is_well_formed
from repro.queries import evaluate_boolean
from repro.schema import AbstractDomain, Access, Schema

__all__ = [
    "ConfigurationSnapshot",
    "LtrWitness",
    "dependent_input_domains",
]


def dependent_input_domains(schema: Schema) -> FrozenSet[AbstractDomain]:
    """Domains some dependent access method consumes at an input place.

    A new active-domain value can only change a relevance verdict when a
    witness could bind it as a dependent input (directly, or inside a support
    chain); values of any other domain are interchangeable with fresh
    constants.  This is the *unsafe* domain set of the delta test.
    """
    unsafe = set()
    for method in schema.access_methods:
        if not method.dependent:
            continue
        for place in method.input_places:
            unsafe.add(method.relation.domain_of(place))
    return frozenset(unsafe)


@dataclass(frozen=True)
class ConfigurationSnapshot:
    """What a relevance verdict depended on, captured at computation time.

    The snapshot holds the configuration's fingerprint, its active domain
    (facts plus seed constants), and the frozen tuple sets of the query's
    relations.  Capturing is O(#query relations): the active-domain frozenset
    and the per-relation frozen views are maintained by
    :class:`~repro.data.instance.Instance` and shared, not copied.
    """

    fingerprint: Tuple[int, ...]
    active_domain: FrozenSet[Tuple[object, AbstractDomain]]
    query_facts: Tuple[Tuple[str, FrozenSet[Tuple[object, ...]]], ...]

    @staticmethod
    def capture(
        configuration: Configuration, query_relations: Iterable[str]
    ) -> "ConfigurationSnapshot":
        """Snapshot ``configuration`` for verdicts about ``query_relations``."""
        return ConfigurationSnapshot(
            fingerprint=configuration.fingerprint(),
            active_domain=configuration.active_domain(),
            query_facts=tuple(
                (name, configuration.tuples(name))
                for name in sorted(query_relations)
                if configuration.schema.has_relation(name)
            ),
        )

    def delta_safe(
        self,
        configuration: Configuration,
        unsafe_domains: FrozenSet[AbstractDomain],
    ) -> bool:
        """Whether a verdict captured with this snapshot holds at ``configuration``.

        Sound for both polarities of long-term relevance.  The test accepts
        when

        1. the snapshot's active domain survives (no value a witness may
           have used disappeared),
        2. the query relations hold exactly the same facts (certainty, the
           "already witnessed by the configuration" classification, and the
           truncation evaluation all read only these), and
        3. every *new* active-domain pair lies in a domain no dependent
           access method consumes (so no witness, support chain, or
           truncation step gains an input value it lacked before).

        Under these conditions every witness path valid at one configuration
        is valid at the other, with the same truncation, so the fresh search
        would return the same verdict.
        """
        if configuration.fingerprint() == self.fingerprint:
            return True
        current = configuration.active_domain()
        if not self.active_domain <= current:
            return False
        for name, facts in self.query_facts:
            if configuration.tuples(name) != facts:
                return False
        for _value, domain in current - self.active_domain:
            if domain in unsafe_domains:
                return False
        return True


@dataclass(frozen=True)
class LtrWitness:
    """A captured long-term relevance witness: a well-formed path.

    The first step is the probed access; the remaining steps realise the rest
    of the witness (later accesses and their support chains).  By
    construction the query holds at the end of the path and fails on its
    truncation — that is exactly what :meth:`revalidate` re-checks against a
    *different* configuration, in O(|path|) plus two query evaluations.
    """

    steps: Tuple[AccessResponse, ...]

    @property
    def access(self) -> Access:
        """The access the witness certifies as long-term relevant."""
        return self.steps[0].access

    def revalidate(self, query, configuration: Configuration) -> bool:
        """Whether the stored path still witnesses LTR at ``configuration``.

        ``True`` is always sound: the path is then an explicit well-formed
        witness at ``configuration`` (every step well-formed in sequence, the
        query true at the end, and false on the truncation — if the query is
        already certain the truncation satisfies it, so certainty needs no
        separate check).  ``False`` only means the *stored* path no longer
        works; the caller decides whether to search afresh.

        The truncation is replayed through
        :meth:`~repro.data.paths.AccessPath.truncation_view` —
        the same code the fresh search evaluates candidate paths with — so an
        accepted revalidation certifies the path by *exactly* the criterion
        :func:`~repro.core.longterm_dependent.find_ltr_witness_steps` uses:
        the longest well-formed prefix after dropping the probed access (a
        step that is only well-formed given the probed access's outputs ends
        the truncation there, and later steps are dropped with it, whether or
        not they depend on the probed access).

        Cost: |path| well-formedness checks and fact merges, and two query
        evaluations — with **zero configuration copies**.  Both replays
        mutate ``configuration`` in place behind an undo log and restore it
        exactly (content, fingerprint, cached views) before returning, so
        revalidation is O(|path|) in allocations as well as steps.  Like the
        rest of the oracle's incremental machinery this runs on the
        strategy's dispatching thread, where the live configuration view
        only changes between callbacks.
        """
        added = []
        try:
            for step in self.steps:
                if not is_well_formed(step.access, configuration):
                    return False
                for fact in step.as_facts():
                    if configuration.add_fact(fact):
                        added.append(fact)
            if not evaluate_boolean(query, configuration):
                return False
        finally:
            for fact in reversed(added):
                configuration.remove(fact.relation, fact.values)
        with AccessPath(configuration, list(self.steps)).truncation_view() as truncated:
            return not evaluate_boolean(query, truncated)

    def translated(self, mapping: Mapping[object, object]) -> "LtrWitness":
        """The witness under a value renaming (for verdict sharing).

        When ``mapping`` extends to an automorphism of the configuration (and
        fixes the query constants), the image path witnesses LTR of the
        image access — this is how structurally equivalent bindings share one
        search result.
        """
        steps = []
        for step in self.steps:
            access = Access(
                step.access.method,
                tuple(mapping.get(value, value) for value in step.access.binding),
            )
            facts = tuple(
                tuple(mapping.get(value, value) for value in row)
                for row in step.facts
            )
            steps.append(AccessResponse.trusted(access, facts))
        return LtrWitness(tuple(steps))
