"""A persistent (process-surviving) witness cache.

The incremental engine's biggest win — serving a long-term relevance verdict
by revalidating a stored witness path in O(|path|) — previously died with
the process: every restart paid the full search cost again before the
in-memory caches warmed up.  :class:`PersistentWitnessCache` writes captured
witness paths to a :class:`~repro.runtime.storage.WitnessStore` backend and
seeds them back into a fresh oracle (or
:class:`~repro.runtime.shards.SharedVerdictStore`), so a *warm restart*
revalidates instead of searching.

The cache is a thin layer: **encoding, decoding, memoization, seeding**.
Bytes live in the backend — :class:`~repro.runtime.storage.JsonlWitnessStore`
(single writer, compacting, human-greppable) or
:class:`~repro.runtime.storage.SqliteWitnessStore` (WAL mode, safe for N
concurrent server processes sharing one store).  Design notes:

* **Keying.**  Records are keyed by the process-stable digests of
  :mod:`repro.runtime.serialize`: ``(query token, schema token, access
  token)``.  Python's builtin ``hash`` is salted per process, so none of the
  in-memory cache keys survive a restart — the digests do.  Each record also
  stamps the :func:`~repro.runtime.serialize.configuration_digest` of the
  configuration the witness was captured at, for observability (the path is
  revalidated at the *probe* configuration regardless, so a stale stamp
  costs nothing but a failed revalidation).
* **Cross-process invalidation.**  The per-(query, schema) decode memo is
  tagged with the backend's generation token and re-pulled when the token
  moves — a record landed by worker process A seeds worker B's next
  :meth:`witnesses_for` miss without B restarting.
* **Soundness.**  A loaded witness is never *trusted*: seeding only hands
  the path to :meth:`~repro.runtime.witness.LtrWitness.revalidate`, which
  replays it step by step at the current configuration.  A corrupt, stale,
  or adversarial record can therefore cost a wasted revalidation, never a
  wrong verdict; records that no longer decode against the schema (or carry
  a newer :data:`~repro.runtime.serialize.RECORD_VERSION`) are skipped and
  counted.
* **Value coverage.**  Only JSON-representable values (strings, numbers,
  booleans, ``None``, nested tuples) are persisted; a witness containing
  anything else is skipped and counted under ``skipped_unencodable``.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Optional, Tuple

from repro.runtime.serialize import (
    UnencodableValueError,
    decode_witness_record,
    decode_witness_steps,
    encode_witness_record,
    encode_witness_steps,
    query_token,
    schema_token,
)
from repro.runtime.storage import CompactionResult, WitnessStore, open_witness_store
from repro.runtime.tracing import current_tracer
from repro.runtime.witness import LtrWitness
from repro.schema import Access, Schema

__all__ = ["PersistentWitnessCache"]

#: Store counters mirrored into ``persist.<backend>.*`` metric counters.
_MIRRORED_COUNTERS = ("appends", "dedup_skips", "compactions", "reloads")


class PersistentWitnessCache:
    """Witness paths for LTR verdicts, surviving process restarts.

    One store may hold records for any number of (query, schema) pairs;
    loads and seeds are scoped to one pair.  The cache is safe to share
    across the oracles of one process (all mutation is lock-protected).
    Whether *concurrent processes* may share the underlying file is the
    backend's call: JSONL supports sequential processes only (last record
    per key wins), SQLite supports N concurrent writers.

    Parameters
    ----------
    path:
        Store file to open (mutually exclusive with ``store``).  The
        backend is inferred from ``backend`` — ``"auto"`` picks SQLite for
        ``.sqlite`` / ``.sqlite3`` / ``.db`` suffixes or files bearing the
        SQLite magic, JSONL otherwise.
    backend:
        ``"auto"`` (default), ``"jsonl"``, or ``"sqlite"``.
    store:
        A prebuilt :class:`~repro.runtime.storage.WitnessStore` to use
        instead of opening one from ``path``.
    metrics:
        An optional :class:`~repro.runtime.metrics.RuntimeMetrics`; when
        attached, the cache mirrors backend counters as
        ``persist.<backend>.appends`` / ``dedup_skips`` / ``compactions`` /
        ``reloads`` and gauges ``persist.<backend>.records`` / ``bytes``.
    store_options:
        Extra keyword arguments for the backend constructor (compaction
        triggers for JSONL, busy timeout for SQLite).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        backend: str = "auto",
        store: Optional[WitnessStore] = None,
        metrics=None,
        store_options: Optional[dict] = None,
    ) -> None:
        if (path is None) == (store is None):
            raise ValueError("pass exactly one of path or store")
        if store is None:
            store = open_witness_store(path, backend, **(store_options or {}))
        self._store = store
        self._metrics = metrics
        self._lock = threading.Lock()
        #: (query token, schema token) -> (store generation at decode time,
        #: decoded {access key: LtrWitness}).  Memoized because oracles seed
        #: at construction and a server constructs oracles per answer call —
        #: re-decoding every stored record per request would make warm
        #: restarts O(records) per query.  Invalidated when the generation
        #: token moves (a write by this or *any other* process).
        self._decoded: Dict[
            Tuple[str, str], Tuple[Hashable, Dict[Hashable, LtrWitness]]
        ] = {}
        #: Store counter values already mirrored into metrics.
        self._mirrored: Dict[str, int] = {}
        self._stats: Dict[str, int] = {
            "loaded": 0,
            "recorded": 0,
            "seeded": 0,
            "skipped_unencodable": 0,
            "skipped_undecodable": 0,
        }

    @property
    def path(self) -> Optional[str]:
        """The file backing the cache (None for pathless stores)."""
        return getattr(self._store, "path", None)

    @property
    def store(self) -> WitnessStore:
        """The storage backend."""
        return self._store

    @property
    def backend(self) -> str:
        """The backend name (``jsonl`` / ``sqlite``)."""
        return self._store.backend

    def attach_metrics(self, metrics) -> None:
        """Adopt a metrics sink if none is attached yet (idempotent)."""
        with self._lock:
            if self._metrics is None:
                self._metrics = metrics

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def witnesses_for(self, query, schema: Schema) -> Dict[Hashable, LtrWitness]:
        """Decode the stored witnesses for one (query, schema) pair.

        Returns a mapping from the in-memory access key (``(method name,
        binding)`` — the key the oracle's witness cache uses) to the decoded
        :class:`LtrWitness`.  Records whose payload no longer decodes
        against ``schema`` are skipped and counted.  The returned dict is a
        **copy** — callers may mutate it freely without corrupting the memo
        shared by every later oracle.
        """
        key = (query_token(query), schema_token(schema))
        # Decode under the lock: the class promises safety when shared
        # across the oracles of one process, and an unlocked memo store
        # could both lose a concurrent record()'s invalidation and race the
        # stats counters.  Decoding is modest (it only runs when the store
        # generation moved), so holding the lock for it is fine.
        with self._lock:
            # Read the generation *before* the load: a write landing between
            # the two makes the memo look stale next call (a harmless
            # re-decode), never current-but-incomplete (a lost update).
            generation = self._store.generation()
            cached = self._decoded.get(key)
            if cached is not None and cached[0] == generation:
                return dict(cached[1])
            payloads = self._store.load_pair(*key)
            decoded: Dict[Hashable, LtrWitness] = {}
            for _atoken, payload in payloads.items():
                try:
                    _key, _atok, spec, step_specs = decode_witness_record(payload)
                    steps = decode_witness_steps(step_specs, schema)
                except Exception:
                    self._stats["skipped_undecodable"] += 1
                    continue
                method_name, binding = spec
                decoded[(method_name, tuple(binding))] = LtrWitness(steps)
            self._stats["loaded"] += len(decoded)
            # The decoded accesses reference *a* schema's method objects;
            # any equal schema works with them (all comparisons are by
            # value), so the memo is keyed by the structural tokens, not
            # object identity.
            self._decoded[key] = (generation, decoded)
            return dict(decoded)

    def seed(self, witness_cache, query, schema: Schema):
        """Copy stored witnesses into an in-memory witness cache.

        Only keys the cache does not already hold are written (a live
        witness captured this run is fresher than a persisted one).  Returns
        the list of seeded access keys — the oracle keeps them for witness
        *provenance* (a trace can then say whether a revalidation ran against
        a persisted path or one captured live this process).
        """
        tracer = current_tracer()
        with tracer.span("persist.seed") as span:
            seeded = []
            for akey, witness in self.witnesses_for(query, schema).items():
                if akey not in witness_cache:
                    witness_cache.put(akey, witness)
                    seeded.append(akey)
            if tracer.enabled:
                span.annotate(seeded=len(seeded), backend=self._store.backend)
        with self._lock:
            self._stats["seeded"] += len(seeded)
        self._sync_metrics()
        return seeded

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(
        self,
        query,
        schema: Schema,
        access: Access,
        witness: LtrWitness,
        configuration=None,
    ) -> bool:
        """Store one captured witness path (deduplicated); True if written."""
        tracer = current_tracer()
        with tracer.span("persist.record") as span:
            written = self._record(query, schema, access, witness, configuration)
            if tracer.enabled:
                span.annotate(
                    written=written,
                    method=access.method.name,
                    backend=self._store.backend,
                )
        return written

    def _record(self, query, schema, access, witness, configuration) -> bool:
        step_specs = encode_witness_steps(witness.steps)
        qtoken, stoken = query_token(query), schema_token(schema)
        try:
            payload = encode_witness_record(
                qtoken, stoken, access, step_specs, configuration
            )
        except UnencodableValueError:
            with self._lock:
                self._stats["skipped_unencodable"] += 1
            return False
        written = self._store.append(payload)
        with self._lock:
            if written:
                self._stats["recorded"] += 1
                self._decoded.pop((qtoken, stoken), None)
        self._sync_metrics()
        return written

    # ------------------------------------------------------------------ #
    # Maintenance and observability
    # ------------------------------------------------------------------ #
    def compact(self) -> CompactionResult:
        """Compact the backend (see :meth:`WitnessStore.compact`)."""
        result = self._store.compact()
        with self._lock:
            self._decoded.clear()
        self._sync_metrics()
        return result

    @property
    def stats(self) -> Dict[str, object]:
        """Cache counters merged with the backend's, as a plain dict.

        ``skipped_undecodable`` sums the cache's decode failures with the
        store's (truncated lines, corrupt rows); the raw backend counters
        are nested under ``"store"``.
        """
        store_stats = self._store.stats()
        with self._lock:
            merged: Dict[str, object] = dict(self._stats)
        merged["skipped_undecodable"] = int(merged["skipped_undecodable"]) + int(
            store_stats.get("skipped_undecodable", 0)
        )
        merged["backend"] = store_stats.get("backend", self._store.backend)
        merged["store"] = store_stats
        return merged

    def _sync_metrics(self) -> None:
        """Mirror backend counters/gauges into the attached metrics sink."""
        with self._lock:
            metrics = self._metrics
        if metrics is None:
            return
        snapshot = self._store.stats()
        backend = snapshot.get("backend", self._store.backend)
        with self._lock:
            for name in _MIRRORED_COUNTERS:
                value = int(snapshot.get(name, 0))
                delta = value - self._mirrored.get(name, 0)
                if delta > 0:
                    metrics.incr(f"persist.{backend}.{name}", delta)
                    self._mirrored[name] = value
        metrics.set_gauge(f"persist.{backend}.records", int(snapshot.get("records", 0)))
        metrics.set_gauge(f"persist.{backend}.bytes", int(snapshot.get("bytes", 0)))

    def close(self) -> None:
        """Close the backend (idempotent)."""
        self._store.close()

    def __enter__(self) -> "PersistentWitnessCache":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PersistentWitnessCache({self._store!r})"
