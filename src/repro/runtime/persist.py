"""A persistent (process-surviving) witness cache.

The incremental engine's biggest win — serving a long-term relevance verdict
by revalidating a stored witness path in O(|path|) — previously died with
the process: every restart paid the full search cost again before the
in-memory caches warmed up.  :class:`PersistentWitnessCache` writes captured
witness paths to an append-only JSONL file and seeds them back into a fresh
oracle (or :class:`~repro.runtime.shards.SharedVerdictStore`), so a *warm
restart* revalidates instead of searching.

Design notes:

* **Keying.**  Records are keyed by the process-stable digests of
  :mod:`repro.runtime.serialize`: ``(query token, schema token, access
  token)``.  Python's builtin ``hash`` is salted per process, so none of the
  in-memory cache keys survive a restart — the digests do.  Each record also
  stamps the :func:`~repro.runtime.serialize.configuration_digest` of the
  configuration the witness was captured at, for observability (the path is
  revalidated at the *probe* configuration regardless, so a stale stamp
  costs nothing but a failed revalidation).
* **Append-only JSONL.**  One JSON object per line; the last record per key
  wins on load.  Appends happen under a lock, with an in-memory digest set
  deduplicating identical paths, so repeated runs do not grow the file
  unboundedly with copies of one witness.
* **Soundness.**  A loaded witness is never *trusted*: seeding only hands
  the path to :meth:`~repro.runtime.witness.LtrWitness.revalidate`, which
  replays it step by step at the current configuration.  A corrupt, stale,
  or adversarial record can therefore cost a wasted revalidation, never a
  wrong verdict; records that no longer decode against the schema are
  skipped and counted.
* **Value coverage.**  Only JSON-representable values (strings, numbers,
  booleans, ``None``, nested tuples) are persisted; a witness containing
  anything else is skipped and counted under ``skipped_unencodable``.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Hashable, Optional, Tuple

from repro.runtime.serialize import (
    UnencodableValueError,
    access_token,
    configuration_digest,
    decode_json_steps,
    decode_json_value,
    decode_witness_steps,
    encode_json_steps,
    encode_json_value,
    encode_witness_steps,
    query_token,
    schema_token,
    witness_digest,
)
from repro.runtime.tracing import current_tracer
from repro.runtime.witness import LtrWitness
from repro.schema import Access, Schema

__all__ = ["PersistentWitnessCache"]


class PersistentWitnessCache:
    """Witness paths for LTR verdicts, surviving process restarts.

    One cache file may hold records for any number of (query, schema) pairs;
    loads and seeds are scoped to one pair.  The cache is safe to share
    across the oracles of one process (appends are lock-protected) and
    across *sequential* processes (append-only writes; the last record per
    key wins).  Concurrent writer processes are outside the contract — run
    one server per cache file.
    """

    def __init__(self, path: str) -> None:
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        #: (query token, schema token) -> {access token: (access spec, step specs)}
        self._records: Optional[Dict[Tuple[str, str], Dict[str, Tuple]]] = None
        #: (query token, schema token) -> decoded {access key: LtrWitness},
        #: memoized because oracles seed at construction and a server
        #: constructs oracles per answer call — re-decoding every stored
        #: record per request would make warm restarts O(records) per query.
        #: Invalidated whenever a new record lands for the pair.
        self._decoded: Dict[Tuple[str, str], Dict[Hashable, LtrWitness]] = {}
        self._appended: set = set()
        self.stats: Dict[str, int] = {
            "loaded": 0,
            "recorded": 0,
            "seeded": 0,
            "skipped_unencodable": 0,
            "skipped_undecodable": 0,
        }

    @property
    def path(self) -> str:
        """The JSONL file backing the cache."""
        return self._path

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def _ensure_loaded(self) -> Dict[Tuple[str, str], Dict[str, Tuple]]:
        with self._lock:
            if self._records is not None:
                return self._records
            records: Dict[Tuple[str, str], Dict[str, Tuple]] = {}
            if os.path.exists(self._path):
                with open(self._path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            payload = json.loads(line)
                            key = (payload["query"], payload["schema"])
                            spec = (
                                payload["method"],
                                tuple(
                                    decode_json_value(value)
                                    for value in payload["binding"]
                                ),
                            )
                            steps = decode_json_steps(payload["steps"])
                        except Exception:
                            # A truncated tail line (interrupted append) or a
                            # foreign record: skip it, never fail the load.
                            self.stats["skipped_undecodable"] += 1
                            continue
                        records.setdefault(key, {})[payload["access"]] = (spec, steps)
                        self._appended.add(
                            (key, payload["access"], witness_digest(steps))
                        )
                        self.stats["loaded"] += 1
            self._records = records
            return records

    def witnesses_for(self, query, schema: Schema) -> Dict[Hashable, LtrWitness]:
        """Decode the stored witnesses for one (query, schema) pair.

        Returns a mapping from the in-memory access key (``(method name,
        binding)`` — the key the oracle's witness cache uses) to the decoded
        :class:`LtrWitness`.  Records whose steps no longer decode against
        ``schema`` are skipped and counted.
        """
        records = self._ensure_loaded()
        key = (query_token(query), schema_token(schema))
        # Decode under the lock: the class promises safety when shared
        # across the oracles of one process, and an unlocked memo store
        # could both lose a concurrent record()'s invalidation and race the
        # stats counters.  Decoding is modest (it only runs on a memo miss),
        # so holding the lock for it is fine.
        with self._lock:
            cached = self._decoded.get(key)
            if cached is not None:
                return cached
            scoped = records.get(key, {})
            decoded: Dict[Hashable, LtrWitness] = {}
            for _atoken, (spec, step_specs) in scoped.items():
                try:
                    steps = decode_witness_steps(step_specs, schema)
                except Exception:
                    self.stats["skipped_undecodable"] += 1
                    continue
                method_name, binding = spec
                decoded[(method_name, tuple(binding))] = LtrWitness(steps)
            # The decoded accesses reference *a* schema's method objects;
            # any equal schema works with them (all comparisons are by
            # value), so the memo is keyed by the structural tokens, not
            # object identity.
            self._decoded[key] = decoded
            return decoded

    def seed(self, witness_cache, query, schema: Schema):
        """Copy stored witnesses into an in-memory witness cache.

        Only keys the cache does not already hold are written (a live
        witness captured this run is fresher than a persisted one).  Returns
        the list of seeded access keys — the oracle keeps them for witness
        *provenance* (a trace can then say whether a revalidation ran against
        a persisted path or one captured live this process).
        """
        tracer = current_tracer()
        with tracer.span("persist.seed") as span:
            seeded = []
            for akey, witness in self.witnesses_for(query, schema).items():
                if akey not in witness_cache:
                    witness_cache.put(akey, witness)
                    seeded.append(akey)
            if tracer.enabled:
                span.annotate(seeded=len(seeded))
        with self._lock:
            self.stats["seeded"] += len(seeded)
        return seeded

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(
        self,
        query,
        schema: Schema,
        access: Access,
        witness: LtrWitness,
        configuration=None,
    ) -> bool:
        """Append one captured witness path (deduplicated); True if written."""
        tracer = current_tracer()
        with tracer.span("persist.record") as span:
            written = self._record(query, schema, access, witness, configuration)
            if tracer.enabled:
                span.annotate(written=written, method=access.method.name)
        return written

    def _record(self, query, schema, access, witness, configuration) -> bool:
        self._ensure_loaded()
        step_specs = encode_witness_steps(witness.steps)
        try:
            json_steps = encode_json_steps(step_specs)
            binding = [encode_json_value(value) for value in access.binding]
        except UnencodableValueError:
            with self._lock:
                self.stats["skipped_unencodable"] += 1
            return False
        key = (query_token(query), schema_token(schema))
        atoken = access_token(access)
        dedup = (key, atoken, witness_digest(step_specs))
        with self._lock:
            if dedup in self._appended:
                return False
            payload = {
                "query": key[0],
                "schema": key[1],
                "access": atoken,
                "method": access.method.name,
                "binding": binding,
                "steps": json_steps,
            }
            if configuration is not None:
                payload["fingerprint"] = configuration_digest(configuration)
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
            self._appended.add(dedup)
            assert self._records is not None
            self._records.setdefault(key, {})[atoken] = (
                (access.method.name, tuple(access.binding)),
                step_specs,
            )
            self._decoded.pop(key, None)
            self.stats["recorded"] += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PersistentWitnessCache({self._path!r}, stats={self.stats})"
