"""Process-level parallelism for CPU-bound relevance searches.

PR 4's thread pool only overlaps *source latency*: every relevance search
(LTR witness search, crayfish chase, certainty check) still runs under the
GIL, one at a time.  :class:`ProcessRelevancePool` ships those searches to a
``concurrent.futures.ProcessPoolExecutor`` instead:

* the **parent** encodes each task through the wire formats of
  :mod:`repro.runtime.serialize` — the schema and query are pickled *once*
  and re-shipped as cached bytes, the configuration snapshot is pickled once
  per content fingerprint (its compact ``__reduce__`` ships facts and seed
  constants, not indexes);
* the **worker** decodes and memoizes by stable token, so a round of tasks
  over one configuration decodes it once, then runs the ordinary pure
  procedures (:func:`~repro.core.relevance.long_term_relevance_with_witness`,
  :func:`~repro.queries.certain.is_certain`,
  :func:`~repro.queries.certain.certain_answers`);
* the result travels back as plain data — the verdict plus, for a positive
  LTR search, the witness path as ``(method, binding, facts)`` triples that
  the parent re-anchors to *its* schema objects and feeds to the incremental
  engine, so later rounds revalidate in O(|path|) instead of re-searching.

Verdicts are pure functions of (query, schema, access, configuration
content), so a pool worker returns exactly what the in-process search would
— ``tests/test_serialize.py`` asserts this equivalence property across
seeds.  On platforms with ``fork`` the workers even share the parent's hash
seed, making *witness paths* (not just verdicts) bit-identical to in-process
searches.

The pool is deliberately generic: one pool serves every (query, schema) pair
— the :class:`~repro.runtime.server.QueryServer` runs all its queries'
searches through a single pool — and attaches to any number of
:class:`~repro.runtime.cache.RelevanceOracle` instances via their ``pool=``
knob.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data import Configuration
from repro.runtime.serialize import (
    access_spec,
    decode_witness_steps,
    encode_witness_steps,
    query_token,
    schema_token,
)
from repro.runtime.tracing import (
    NO_TRACER,
    SpanContext,
    Tracer,
    activate_tracer,
    current_tracer,
    encode_spans,
)
from repro.runtime.witness import LtrWitness
from repro.schema import Access, Schema

__all__ = ["ProcessRelevancePool", "default_search_workers"]


def default_search_workers() -> int:
    """A sensible default worker count: the CPU count, at least 1."""
    return max(1, os.cpu_count() or 1)


# --------------------------------------------------------------------------- #
# Worker side (top-level, so every start method can import it)
# --------------------------------------------------------------------------- #
#: Per-worker decode caches: token -> decoded object.  Both are bounded FIFO
#: — a long-lived server receives freshly parsed query objects per request,
#: and an unbounded worker cache would grow worker RSS for the pool's
#: lifetime while the parent's (bounded) memoization stays flat.
_DECODED_OBJECTS: Dict[object, object] = {}
_DECODED_CONFIGS: "Dict[object, Configuration]" = {}
_MAX_CACHED_OBJECTS = 64
_MAX_CACHED_CONFIGS = 8


def _decode_cached(token: object, payload: bytes) -> object:
    obj = _DECODED_OBJECTS.get(token)
    if obj is None:
        obj = pickle.loads(payload)
        if len(_DECODED_OBJECTS) >= _MAX_CACHED_OBJECTS:
            _DECODED_OBJECTS.pop(next(iter(_DECODED_OBJECTS)))
        _DECODED_OBJECTS[token] = obj
    return obj


def _decode_configuration(token: object, payload: bytes) -> Configuration:
    configuration = _DECODED_CONFIGS.get(token)
    if configuration is None:
        configuration = pickle.loads(payload)
        if len(_DECODED_CONFIGS) >= _MAX_CACHED_CONFIGS:
            _DECODED_CONFIGS.pop(next(iter(_DECODED_CONFIGS)))
        _DECODED_CONFIGS[token] = configuration
    return configuration


def _run_task_kind(kind, spec, query, schema, configuration, ltr_method, options, tracer):
    """Dispatch one decoded task body (see :func:`_run_search_task`)."""
    from repro.core import is_immediately_relevant, long_term_relevance_with_witness
    from repro.queries import certain_answers, is_certain

    if kind == "ltr":
        access = Access(schema.access_method(spec[0]), tuple(spec[1]))
        with tracer.span("pool-search", method=spec[0]) as span:
            verdict, steps = long_term_relevance_with_witness(
                query, access, configuration, schema, method=ltr_method, options=options
            )
            span.annotate(relevant=verdict)
        return (verdict, encode_witness_steps(steps) if steps else None)
    if kind == "ltr_batch":
        results = []
        for method_name, binding in spec:
            access = Access(schema.access_method(method_name), tuple(binding))
            with tracer.span("pool-search", method=method_name) as span:
                verdict, steps = long_term_relevance_with_witness(
                    query,
                    access,
                    configuration,
                    schema,
                    method=ltr_method,
                    options=options,
                )
                span.annotate(relevant=verdict)
            results.append((verdict, encode_witness_steps(steps) if steps else None))
        return results
    if kind == "ir":
        access = Access(schema.access_method(spec[0]), tuple(spec[1]))
        return (is_immediately_relevant(query, access, configuration), None)
    if kind == "certain":
        with tracer.span("pool-search", search="certainty") as span:
            verdict = is_certain(query, configuration)
            span.annotate(certain=verdict)
        return (verdict, None)
    if kind == "answers":
        with tracer.span("pool-search", search="answers"):
            answers = certain_answers(query, configuration)
        return (answers, None)
    raise ValueError(f"unknown search task kind {kind!r}")


def _run_search_task(task: Tuple) -> Tuple:
    """Execute one relevance search in a worker process.

    ``task`` is a plain tuple (pickle-friendly, importable entry point):
    ``(kind, schema_token, schema_bytes, query_token, query_bytes,
    config_token, config_bytes, access_spec_or_None, ltr_method, options,
    trace)``.  Returns ``(verdict, witness_step_specs_or_None)`` for
    ``"ltr"``, the bare verdict for ``"certain"`` / ``"ir"``, and the frozen
    answer set for ``"answers"``.

    With ``trace`` set the worker records its own span tree (a local
    :class:`~repro.runtime.tracing.Tracer` activated for the task, so the
    instrumented chase/datalog layers trace too) and the return value becomes
    ``(payload, span_specs)`` — the encoded spans travel the same plain-tuple
    wire as everything else and the parent re-anchors them under the
    submitting span.  Untraced tasks return the exact legacy payload shapes.
    """
    (
        kind,
        stoken,
        schema_bytes,
        qtoken,
        query_bytes,
        ctoken,
        config_bytes,
        spec,
        ltr_method,
        options,
        trace,
    ) = task
    schema: Schema = _decode_cached(("schema", stoken), schema_bytes)
    query = _decode_cached(("query", stoken, qtoken), query_bytes)
    configuration = _decode_configuration((stoken, ctoken), config_bytes)
    tracer = Tracer() if trace else NO_TRACER
    with activate_tracer(tracer if trace else None):
        with tracer.span("pool-task", kind=kind):
            payload = _run_task_kind(
                kind, spec, query, schema, configuration, ltr_method, options, tracer
            )
    if trace:
        return (payload, encode_spans(tracer.spans()))
    return payload


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
class ProcessRelevancePool:
    """A pool of worker processes running relevance searches.

    Parameters
    ----------
    search_workers:
        Number of worker processes (defaults to the CPU count).  A pool with
        one worker is still useful for isolation, but the speedup comes from
        several workers on a multi-core machine.
    mp_context:
        An explicit :mod:`multiprocessing` context.  Defaults to ``fork``
        where available (cheap start-up, and workers inherit the parent's
        hash seed so search enumeration orders — hence witness paths — match
        the parent's exactly), falling back to the platform default.

    The executor is created lazily on first submission, so constructing a
    pool costs nothing until a search is actually offloaded.  Encoded schema
    and query payloads are memoized by stable token; configuration payloads
    are memoized by in-process fingerprint and re-encoded only when the
    configuration's content changes.
    """

    def __init__(
        self,
        search_workers: Optional[int] = None,
        *,
        mp_context: Optional[object] = None,
    ) -> None:
        self._workers = (
            default_search_workers() if search_workers is None else max(1, search_workers)
        )
        if mp_context is None:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                mp_context = None
        self._mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None
        # All three memoization dicts are bounded FIFO: a long-lived server
        # submitting freshly parsed query objects per request must not pin
        # every one of them (or its payload bytes) for the pool's lifetime.
        # Eviction only costs a re-encode on the next submission.
        self._encoded: Dict[object, bytes] = {}
        self._config_payloads: Dict[object, Tuple[object, bytes]] = {}
        # id -> (strong ref, token).  The strong reference pins the object so
        # a recycled id can never alias a dead object to a stale token.
        self._tokens: Dict[int, Tuple[object, str]] = {}
        self._max_memoized = 64
        # In-flight task accounting: incremented on submission, decremented
        # by the future's done callback.  This is what the admission layer
        # of the network service polls to tell "workers busy" (fine) from
        # "backlog growing beyond what the workers can start on" (shed
        # load with 503 + Retry-After rather than queueing unboundedly).
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """The configured number of worker processes."""
        return self._workers

    @property
    def inflight(self) -> int:
        """Tasks submitted but not yet finished (queued + running)."""
        with self._inflight_lock:
            return self._inflight

    def saturated(self, *, backlog_factor: float = 2.0) -> bool:
        """Whether the pool's backlog exceeds what its workers can absorb.

        ``True`` once more than ``workers × backlog_factor`` tasks are in
        flight — i.e. every worker is busy *and* a queue at least as deep
        again is waiting behind them.  The network service's admission
        controller uses this as its load-shedding signal; a merely-busy
        pool (≤ one task per worker) is never reported saturated.
        """
        return self.inflight > self._workers * backlog_factor

    def _submit_task(self, task: Tuple) -> Future:
        """Submit one encoded task with in-flight accounting."""
        executor = self._ensure_executor()
        with self._inflight_lock:
            self._inflight += 1
        try:
            future = executor.submit(_run_search_task, task)
        except BaseException:
            with self._inflight_lock:
                self._inflight -= 1
            raise
        future.add_done_callback(self._task_done)
        return future

    def _task_done(self, _future: Future) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            kwargs = {"max_workers": self._workers}
            if self._mp_context is not None:
                kwargs["mp_context"] = self._mp_context
            self._executor = ProcessPoolExecutor(**kwargs)
        return self._executor

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProcessRelevancePool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Encoding caches
    # ------------------------------------------------------------------ #
    @staticmethod
    def _evict_overflow(mapping: Dict, limit: int) -> None:
        while len(mapping) > limit:
            mapping.pop(next(iter(mapping)))

    def _token_for(self, obj: object, compute) -> str:
        entry = self._tokens.get(id(obj))
        if entry is None or entry[0] is not obj:
            entry = (obj, compute(obj))
            self._tokens[id(obj)] = entry
            self._evict_overflow(self._tokens, self._max_memoized)
        return entry[1]

    def _schema_payload(self, schema: Schema) -> Tuple[str, bytes]:
        token = self._token_for(schema, schema_token)
        payload = self._encoded.get(("schema", token))
        if payload is None:
            payload = pickle.dumps(schema, protocol=pickle.HIGHEST_PROTOCOL)
            self._encoded[("schema", token)] = payload
            self._evict_overflow(self._encoded, self._max_memoized)
        return token, payload

    def _query_payload(self, query) -> Tuple[str, bytes]:
        token = self._token_for(query, query_token)
        payload = self._encoded.get(("query", token))
        if payload is None:
            payload = pickle.dumps(query, protocol=pickle.HIGHEST_PROTOCOL)
            self._encoded[("query", token)] = payload
            self._evict_overflow(self._encoded, self._max_memoized)
        return token, payload

    def _configuration_payload(
        self, configuration: Configuration, stoken: str
    ) -> Tuple[object, bytes]:
        # The in-process fingerprint is a cheap content key, scoped by the
        # schema token so equal fingerprints of different schemas can never
        # alias each other's payloads (here or in the worker's cache).
        key = (stoken, configuration.fingerprint())
        cached = self._config_payloads.get(key)
        if cached is None:
            payload = pickle.dumps(configuration, protocol=pickle.HIGHEST_PROTOCOL)
            cached = (repr(key[1]), payload)
            if len(self._config_payloads) >= 8:
                self._config_payloads.pop(next(iter(self._config_payloads)))
            self._config_payloads[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        kind: str,
        query,
        schema: Schema,
        configuration: Configuration,
        access: Optional[Access] = None,
        *,
        ltr_method: str = "auto",
        options: Optional[object] = None,
        trace: bool = False,
    ) -> Future:
        """Submit one search task; returns the raw future.

        ``kind`` is ``"ltr"``, ``"ir"``, ``"certain"``, or ``"answers"``;
        the first two require ``access``.  With ``trace`` the worker records
        its span tree and the future resolves to ``(payload, span_specs)``
        instead of the bare payload — only trace-aware callers should set it
        (they re-anchor the specs with :meth:`Tracer.adopt_spans`).
        """
        stoken, schema_bytes = self._schema_payload(schema)
        qtoken, query_bytes = self._query_payload(query)
        ctoken, config_bytes = self._configuration_payload(configuration, stoken)
        task = (
            kind,
            stoken,
            schema_bytes,
            qtoken,
            query_bytes,
            ctoken,
            config_bytes,
            access_spec(access) if access is not None else None,
            ltr_method,
            options,
            trace,
        )
        return self._submit_task(task)

    def submit_ltr_many(
        self,
        query,
        schema: Schema,
        configuration: Configuration,
        accesses: Sequence[Access],
        *,
        ltr_method: str = "auto",
        options: Optional[object] = None,
    ) -> List[Future]:
        """Submit one LTR search per access (all against one configuration)."""
        return [
            self.submit(
                "ltr",
                query,
                schema,
                configuration,
                access,
                ltr_method=ltr_method,
                options=options,
            )
            for access in accesses
        ]

    def submit_ltr_chunks(
        self,
        query,
        schema: Schema,
        configuration: Configuration,
        accesses: Sequence[Access],
        *,
        ltr_method: str = "auto",
        options: Optional[object] = None,
        trace: bool = False,
    ) -> List[Tuple[List[Access], Future, bool, Optional[SpanContext]]]:
        """Submit the accesses' LTR searches in worker-sized chunks.

        Every submitted task tuple carries its own copy of the schema,
        query, and configuration payload bytes through the executor pipe, so
        one task *per access* ships the configuration O(#accesses) times.
        Chunking ships it O(#chunks): chunks are sized so each worker gets a
        few (load balancing against heterogeneous search costs) and each
        chunk's results come back as a list aligned with its accesses.

        Each returned record is ``(accesses, future, traced, parent)`` —
        ``parent`` captures the submitting thread's innermost open span so
        :meth:`ltr_chunk_results`, which may run long after that span's
        siblings started, re-anchors the worker's shipped spans under the
        span that actually requested the work.
        """
        if not accesses:
            return []
        parent = current_tracer().context() if trace else None
        chunk_size = max(1, -(-len(accesses) // (self._workers * 4)))
        stoken, schema_bytes = self._schema_payload(schema)
        qtoken, query_bytes = self._query_payload(query)
        ctoken, config_bytes = self._configuration_payload(configuration, stoken)
        chunks: List[Tuple[List[Access], Future, bool, Optional[SpanContext]]] = []
        for start in range(0, len(accesses), chunk_size):
            chunk = list(accesses[start : start + chunk_size])
            task = (
                "ltr_batch",
                stoken,
                schema_bytes,
                qtoken,
                query_bytes,
                ctoken,
                config_bytes,
                tuple(access_spec(access) for access in chunk),
                ltr_method,
                options,
                trace,
            )
            chunks.append((chunk, self._submit_task(task), trace, parent))
        return chunks

    def ltr_chunk_results(
        self,
        chunks: List[Tuple[List[Access], Future, bool, Optional[SpanContext]]],
        schema: Schema,
    ) -> List[Tuple[Access, bool, Optional[LtrWitness]]]:
        """Unpack :meth:`submit_ltr_chunks`: per access, verdict + witness.

        Traced chunks additionally carry the worker's encoded span tree; it
        is adopted into the collecting thread's active tracer under the
        span context captured at submission.
        """
        results: List[Tuple[Access, bool, Optional[LtrWitness]]] = []
        tracer = current_tracer()
        for chunk, future, traced, parent in chunks:
            payload = future.result()
            if traced:
                payload, span_specs = payload
                if tracer.enabled:
                    tracer.adopt_spans(span_specs, parent)
            for access, (verdict, specs) in zip(chunk, payload):
                witness = (
                    LtrWitness(decode_witness_steps(specs, schema))
                    if specs
                    else None
                )
                results.append((access, bool(verdict), witness))
        return results

    @staticmethod
    def ltr_result(future: Future, schema: Schema) -> Tuple[bool, Optional[LtrWitness]]:
        """Unpack one LTR future: the verdict plus the re-anchored witness."""
        verdict, specs = future.result()
        witness = (
            LtrWitness(decode_witness_steps(specs, schema)) if specs else None
        )
        return bool(verdict), witness

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self._executor is not None else "idle"
        return f"ProcessRelevancePool(workers={self._workers}, {state})"
