"""Admission control for the network-facing answering service.

The answering runtime underneath (:class:`~repro.runtime.server.QueryServer`)
is work-conserving: give it a batch and it will spend whatever rounds and
accesses the batch needs.  A *service* in front of it cannot afford that
politeness — external clients retry, flood, and dominate — so every
submission passes through an :class:`AdmissionController` before it is
allowed to queue:

* **per-client rate limiting** — a :class:`TokenBucket` per client (one
  token per query, ``burst`` tokens deep, refilled at ``rate`` tokens per
  second).  An empty bucket rejects with HTTP 429 and an honest
  ``Retry-After`` computed from the refill rate;
* **per-client in-flight quotas** — at most ``max_inflight_per_client``
  queries queued-or-answering per client, so a slow-reading client cannot
  park unbounded state server-side (429 again);
* **global backpressure** — a bounded submission queue (``max_queued``) and
  a :meth:`~repro.runtime.procpool.ProcessRelevancePool.saturated` probe of
  the attached search pool; either trips HTTP 503 + ``Retry-After``, the
  "shed load now, come back shortly" signal load balancers understand;
* **drain mode** — :meth:`begin_drain` flips the controller to reject every
  new submission with 503 while already-admitted queries run to completion,
  which is what makes the service's shutdown graceful;
* **fairness budgets** — :meth:`budgets_for` hands each admitted query the
  service's per-query round/access budget, which
  :meth:`QueryServer.answer <repro.runtime.server.QueryServer.answer>`
  enforces *inside* a coalesced batch: a dominating query retires with
  ``rounds_exhausted`` instead of starving its batchmates.

The accounting style — admitted/in-flight/capacity with explicit
over-commit-style headroom on the pool probe — follows the pool-handler
idiom of the MAAS pods API (used/available/over-commit) cited in
SNIPPETS.md §2.  Everything is stdlib: one lock, plain dicts, a monotonic
clock injected for tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.procpool import ProcessRelevancePool

__all__ = ["AdmissionController", "AdmissionDecision", "TokenBucket"]


class TokenBucket:
    """A classic token bucket: ``burst`` capacity, ``rate`` tokens/second.

    ``try_acquire`` either deducts and admits, or reports how long the
    caller must wait for the requested tokens to exist — that number goes
    out verbatim as the 429 response's ``Retry-After``.  Time is injected
    (monotonic seconds) so tests can step it deterministically.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0.0:
            raise ValueError("token bucket rate must be positive")
        if burst <= 0.0:
            raise ValueError("token bucket burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._stamp is not None and now > self._stamp:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0, *, now: float) -> Tuple[bool, float]:
        """Deduct ``tokens`` if available: ``(True, 0.0)`` or ``(False, wait_s)``.

        A request larger than the bucket can *ever* hold is reported with
        the wait needed to fill the whole burst — the caller should treat a
        repeatedly failing oversized request as a client error.
        """
        self._refill(now)
        if tokens <= self._tokens:
            self._tokens -= tokens
            return True, 0.0
        needed = min(tokens, self.burst) - self._tokens
        return False, max(needed / self.rate, 0.0)

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket (as of the last acquire)."""
        return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one submission.

    ``admitted`` submissions carry HTTP status 0 (the service picks 200 or
    202); rejections carry the status to send (429 or 503), a machine-
    readable ``reason``, and the ``Retry-After`` seconds the client should
    honor before retrying.
    """

    admitted: bool
    status: int = 0
    reason: str = ""
    retry_after: float = 0.0


class _ClientState:
    __slots__ = ("bucket", "inflight", "last_seen")

    def __init__(self, bucket: Optional[TokenBucket]) -> None:
        self.bucket = bucket
        self.inflight = 0
        self.last_seen = 0.0


class AdmissionController:
    """Admission decisions and the accounting they are made from.

    Parameters
    ----------
    rate / burst:
        Per-client token-bucket rate limit (queries per second; the bucket
        holds ``burst`` tokens, defaulting to ``max(rate, 1)``).  ``None``
        disables rate limiting.
    max_inflight_per_client:
        Per-client cap on queries queued-or-answering; ``None`` disables.
    max_queued:
        Global bound on the submission queue.  A full queue is the first
        backpressure signal (503).
    pool / pool_backlog_factor:
        The search pool to probe for saturation; the factor is forwarded to
        :meth:`ProcessRelevancePool.saturated`.
    round_budget / access_budget:
        Per-query fairness budgets handed to every admitted query (see
        :meth:`budgets_for`); ``None`` disables.
    deadline_s:
        Per-query wall-clock budget in seconds handed to every admitted
        query (see :meth:`deadlines_for`); the server retires a query at
        expiry with a sound ``degraded`` outcome instead of letting it
        (or a hung source) run unbounded.  ``None`` disables.
    retry_after_s:
        The ``Retry-After`` hint on 503 rejections, where no better number
        exists (429s compute theirs from the bucket's refill rate).
    metrics:
        Sink for the accept/reject counters and the queue-depth / in-flight
        gauges; shares the server's sink so ``/metrics`` shows admission
        and answering side by side.
    clock:
        Monotonic-seconds callable, injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        max_inflight_per_client: Optional[int] = None,
        max_queued: int = 256,
        pool: Optional[ProcessRelevancePool] = None,
        pool_backlog_factor: float = 2.0,
        round_budget: Optional[int] = None,
        access_budget: Optional[int] = None,
        deadline_s: Optional[float] = None,
        retry_after_s: float = 1.0,
        metrics: Optional[RuntimeMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 1024,
    ) -> None:
        if rate is not None and rate <= 0.0:
            raise ValueError("rate must be positive (or None to disable)")
        self._rate = rate
        self._burst = burst if burst is not None else (max(rate, 1.0) if rate else None)
        self._max_inflight = max_inflight_per_client
        self._max_queued = max(1, max_queued)
        self._pool = pool
        self._pool_backlog_factor = pool_backlog_factor
        if deadline_s is not None and deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive (or None to disable)")
        self.round_budget = round_budget
        self.access_budget = access_budget
        self.deadline_s = deadline_s
        self._retry_after = retry_after_s
        self._metrics = metrics if metrics is not None else RuntimeMetrics()
        self._clock = clock
        self._max_clients = max(1, max_clients)
        self._clients: Dict[str, _ClientState] = {}
        self._queued = 0
        self._inflight = 0
        self._draining = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def queued(self) -> int:
        """Queries admitted but not yet picked up by a batch."""
        with self._lock:
            return self._queued

    @property
    def inflight(self) -> int:
        """Queries admitted and not yet resolved (queued + answering)."""
        with self._lock:
            return self._inflight

    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_drain` has been called."""
        with self._lock:
            return self._draining

    def client_inflight(self, client: str) -> int:
        """One client's share of :attr:`inflight`."""
        with self._lock:
            state = self._clients.get(client)
            return state.inflight if state is not None else 0

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def admit(self, client: str, n_queries: int = 1) -> AdmissionDecision:
        """Decide one submission of ``n_queries`` queries from ``client``.

        Checks run cheapest-and-most-global first: drain, queue bound, pool
        saturation (all 503 — the *service* is the bottleneck), then the
        client's in-flight quota and rate bucket (429 — the *client* is).
        An admitted submission has already been charged against the queue
        and the client's quota; the caller must pair it with exactly one
        :meth:`release` (normally via :meth:`resolved`) per query.
        """
        now = self._clock()
        with self._lock:
            if self._draining:
                return self._reject("draining", 503, self._retry_after)
            if self._queued + n_queries > self._max_queued:
                return self._reject("queue_full", 503, self._retry_after)
            if self._pool is not None and self._pool.saturated(
                backlog_factor=self._pool_backlog_factor
            ):
                return self._reject("pool_saturated", 503, self._retry_after)
            state = self._client_state(client, now)
            if (
                self._max_inflight is not None
                and state.inflight + n_queries > self._max_inflight
            ):
                return self._reject("inflight_quota", 429, self._retry_after)
            if state.bucket is not None:
                ok, wait = state.bucket.try_acquire(float(n_queries), now=now)
                if not ok:
                    return self._reject("rate_limited", 429, wait)
            state.inflight += n_queries
            self._queued += n_queries
            self._inflight += n_queries
            self._metrics.incr("admission.accepted", n_queries)
            self._set_gauges()
            return AdmissionDecision(admitted=True)

    def _reject(self, reason: str, status: int, retry_after: float) -> AdmissionDecision:
        """Build a rejection (lock held; counters + gauges updated)."""
        self._metrics.incr(f"admission.rejected.{reason}")
        self._set_gauges()
        return AdmissionDecision(
            admitted=False,
            status=status,
            reason=reason,
            retry_after=max(retry_after, 0.0),
        )

    def started(self, n_queries: int) -> None:
        """Mark ``n_queries`` as picked up by a batch (queued → answering)."""
        with self._lock:
            self._queued = max(0, self._queued - n_queries)
            self._set_gauges()

    def resolved(self, client: str, n_queries: int) -> None:
        """Mark ``n_queries`` of ``client`` as finished (or failed)."""
        with self._lock:
            self._inflight = max(0, self._inflight - n_queries)
            state = self._clients.get(client)
            if state is not None:
                state.inflight = max(0, state.inflight - n_queries)
            self._set_gauges()

    def begin_drain(self) -> None:
        """Stop admitting; already-admitted queries run to completion."""
        with self._lock:
            self._draining = True
            self._metrics.incr("admission.drains")
            self._set_gauges()

    def budgets_for(
        self, n_queries: int
    ) -> Tuple[Optional[List[Optional[int]]], Optional[List[Optional[int]]]]:
        """The per-query ``(round_budgets, access_budgets)`` for a batch.

        Uniform today — every admitted query gets the service's configured
        budget — but the shape (positional lists, ``None`` = unlimited)
        matches :meth:`QueryServer.answer`, so a weighted policy only has
        to change this method.
        """
        rounds = (
            [self.round_budget] * n_queries if self.round_budget is not None else None
        )
        accesses = (
            [self.access_budget] * n_queries
            if self.access_budget is not None
            else None
        )
        return rounds, accesses

    def deadlines_for(self, n_queries: int) -> Optional[List[Optional[float]]]:
        """The per-query deadline seconds for a batch (shape of
        :meth:`budgets_for`): uniform ``deadline_s`` entries, or ``None``
        when the service runs without deadlines."""
        if self.deadline_s is None:
            return None
        return [self.deadline_s] * n_queries

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _client_state(self, client: str, now: float) -> _ClientState:
        """Get-or-create one client's state (lock held); bounded LRU."""
        state = self._clients.get(client)
        if state is None:
            bucket = (
                TokenBucket(self._rate, self._burst) if self._rate is not None else None
            )
            state = _ClientState(bucket)
            self._clients[client] = state
            if len(self._clients) > self._max_clients:
                # Evict the stalest idle client; an evicted client merely
                # starts over with a fresh (full) bucket — never a quota
                # leak, because eviction requires zero in-flight.
                idle = [
                    (s.last_seen, name)
                    for name, s in self._clients.items()
                    if s.inflight == 0 and name != client
                ]
                if idle:
                    idle.sort()
                    del self._clients[idle[0][1]]
        state.last_seen = now
        self._metrics.set_gauge("admission.clients", len(self._clients))
        return state

    def _set_gauges(self) -> None:
        """Refresh the operator-facing gauges (lock held)."""
        self._metrics.set_gauge("service.queue_depth", self._queued)
        self._metrics.set_gauge("service.inflight_queries", self._inflight)
        self._metrics.set_gauge("service.draining", 1 if self._draining else 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionController(queued={self._queued}, inflight={self._inflight}, "
            f"clients={len(self._clients)}, draining={self._draining})"
        )
