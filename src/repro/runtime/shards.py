"""Sharded, lock-protected verdict storage for concurrent answering runs.

The memoization layer of :class:`~repro.runtime.cache.RelevanceOracle` was
built for a single-threaded answering loop: one ``OrderedDict`` per verdict
kind.  A concurrent runtime breaks that in two ways —

* worker threads screening and prechecking accesses would serialize on the
  single dict (and corrupt it without a lock: ``OrderedDict.move_to_end``
  during ``popitem`` is not atomic);
* several oracles over the *same* Boolean query (repeated benchmark runs, the
  planned multi-query mediator) each rebuild witness paths and LTR history the
  others already paid for.

This module provides the two missing pieces:

* :class:`LRUCache` — the original LRU map, now guarded by an internal lock
  so concurrent ``get``/``put`` cannot corrupt the recency order (each
  instance doubles as one *shard*);
* :class:`ShardedLRUCache` — splits one logical cache over
  ``hash(key) % n_shards`` independent :class:`LRUCache` shards, so threads
  touching different access keys contend on different locks;
* :class:`SharedVerdictStore` — the delta-inheritable LTR history and witness
  paths for one ``(query, schema)`` pair, shareable across any number of
  oracles (cross-query verdict sharing, scoped to *identical* Boolean
  queries: the verdicts are functions of the query, so nothing weaker is
  sound).

Locks protect structural integrity only.  Verdicts are deterministic
functions of the configuration content, so two threads racing to compute the
same entry both write the same value — the last writer wins harmlessly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, List, Optional

from repro.exceptions import QueryError
from repro.queries.certain import CertaintyFixpoint
from repro.schema import Schema

__all__ = ["LRUCache", "ShardedLRUCache", "SharedVerdictStore"]


class LRUCache:
    """A small LRU map with hit/miss accounting, safe under concurrent use.

    A single internal lock serialises structural mutation (lookup refreshes
    recency, so even ``get`` mutates).  For contended workloads, shard
    several instances with :class:`ShardedLRUCache` instead of lengthening
    the critical section here.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default: object = None) -> object:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Store ``key`` and evict the least-recently-used overflow."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self._max_entries is not None:
                while len(self._entries) > self._max_entries:
                    self._entries.popitem(last=False)

    def discard(self, key: Hashable) -> None:
        """Drop ``key`` if present (no recency or hit/miss accounting)."""
        with self._lock:
            self._entries.pop(key, None)

    def reset_stats(self) -> None:
        """Zero the hit/miss gauges (entries are kept).

        :meth:`RuntimeMetrics.reset` calls this on registered caches so a
        post-reset snapshot starts from zero instead of carrying the
        pre-reset probe history.
        """
        with self._lock:
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """Hit/miss gauges: ``{hits, misses, entries, hit_rate}``.

        ``hit_rate`` is ``None`` until the cache has been probed at least
        once (0/0 is unknown, not zero).
        """
        with self._lock:
            hits, misses, entries = self.hits, self.misses, len(self._entries)
        probes = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "hit_rate": (hits / probes) if probes else None,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries


class ShardedLRUCache:
    """One logical LRU cache split over ``n_shards`` lock-independent shards.

    Keys route to ``hash(key) % n_shards``; each shard is a plain
    :class:`LRUCache` whose internal lock is the per-shard lock, so threads
    working on different access keys do not serialise on one dict.  The
    ``max_entries`` budget is divided evenly across shards (the eviction
    policy becomes per-shard LRU — an acceptable approximation of global
    LRU for verdict caching).
    """

    def __init__(self, max_entries: Optional[int] = None, *, n_shards: int = 8) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        per_shard = (
            None if max_entries is None else max(1, -(-max_entries // n_shards))
        )
        self._shards: List[LRUCache] = [LRUCache(per_shard) for _ in range(n_shards)]

    @property
    def n_shards(self) -> int:
        """Number of independent shards."""
        return len(self._shards)

    def _shard(self, key: Hashable) -> LRUCache:
        return self._shards[hash(key) % len(self._shards)]

    @property
    def hits(self) -> int:
        """Hits across all shards."""
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        """Misses across all shards."""
        return sum(shard.misses for shard in self._shards)

    def get(self, key: Hashable, default: object = None) -> object:
        """Look up ``key`` in its shard, refreshing recency on a hit."""
        return self._shard(key).get(key, default)

    def put(self, key: Hashable, value: object) -> None:
        """Store ``key`` in its shard, evicting that shard's LRU overflow."""
        self._shard(key).put(key, value)

    def discard(self, key: Hashable) -> None:
        """Drop ``key`` from its shard if present."""
        self._shard(key).discard(key)

    def reset_stats(self) -> None:
        """Zero every shard's hit/miss gauges (entries are kept)."""
        for shard in self._shards:
            shard.reset_stats()

    def shard_stats(self) -> List[dict]:
        """Per-shard hit/miss gauges, in shard order."""
        return [shard.stats() for shard in self._shards]

    def stats(self) -> dict:
        """Aggregate gauges plus the per-shard breakdown.

        The ``per_shard`` list makes routing imbalance visible: with keys
        hashing badly, one shard's probes dwarf the others' and its lock
        becomes the contention point the sharding was meant to avoid.
        """
        per_shard = self.shard_stats()
        hits = sum(entry["hits"] for entry in per_shard)
        misses = sum(entry["misses"] for entry in per_shard)
        probes = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "entries": sum(entry["entries"] for entry in per_shard),
            "hit_rate": (hits / probes) if probes else None,
            "per_shard": per_shard,
        }

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._shard(key)


class SharedVerdictStore:
    """Incremental LTR state shared by every oracle over one (query, schema).

    Holds the two caches whose contents transfer soundly *across* oracle
    instances: the per-access LTR history (verdict + dependency snapshot,
    inheritable whenever :meth:`ConfigurationSnapshot.delta_safe` accepts the
    new configuration) and the captured witness paths (revalidatable in
    O(|path|) at any configuration).  Both are keyed by the access alone —
    their soundness arguments compare configuration *content*, never the
    identity of the run that recorded them — so repeated benchmark runs,
    parallel answering workers, and the planned multi-query mediator can all
    pool them.  The store also owns the per-(query, schema)
    :class:`~repro.queries.certain.CertaintyFixpoint` (``certainty``): the
    materialized incremental-certainty state, keyed by fact-fingerprint
    lineage and therefore equally run-independent.  Evicting the store (the
    query server's bounded registry does this) drops the fixpoint with it,
    bounding materialized certainty state.

    Sharing is scoped to *identical* Boolean queries over the *same* schema
    object: :class:`~repro.runtime.cache.RelevanceOracle` validates both at
    attach time and raises :class:`~repro.exceptions.QueryError` otherwise.
    """

    def __init__(
        self,
        query,
        schema: Schema,
        *,
        max_entries: Optional[int] = 65536,
        n_shards: int = 8,
        fixpoint_max_facts: int = 1_000_000,
    ) -> None:
        self._query = query if query.is_boolean else query.boolean_closure()
        self._schema = schema
        self.ltr_history = ShardedLRUCache(max_entries, n_shards=n_shards)
        self.witnesses = ShardedLRUCache(max_entries, n_shards=n_shards)
        self.certainty = CertaintyFixpoint(self._query, max_facts=fixpoint_max_facts)

    @property
    def query(self):
        """The Boolean query the stored verdicts are about."""
        return self._query

    @property
    def schema(self) -> Schema:
        """The schema the stored verdicts were computed against."""
        return self._schema

    def check_compatible(self, query, schema: Schema) -> None:
        """Raise unless an oracle for ``(query, schema)`` may attach."""
        boolean = query if query.is_boolean else query.boolean_closure()
        if boolean != self._query:
            raise QueryError(
                "SharedVerdictStore was built for a different query; LTR "
                "history and witnesses only transfer between identical "
                "Boolean queries"
            )
        if schema is not self._schema:
            raise QueryError(
                "SharedVerdictStore was built for a different schema object; "
                "construct oracles and the store from the same schema"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedVerdictStore(query={getattr(self._query, 'name', None)!r}, "
            f"histories={len(self.ltr_history)}, witnesses={len(self.witnesses)})"
        )
