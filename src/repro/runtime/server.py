"""The multi-query answering server.

Everything below :mod:`repro.planner.dynamic` answers *one* query per run: a
private oracle, a private screen, rounds that stop at that query's certainty.
A traffic-serving mediator is asked many queries about the *same* sources at
once, and the single-query loop wastes the two things the queries could
share:

* **the configuration** — an access performed for one query grows the one
  configuration every other query reads, so a fact retrieved once should
  advance every query's strategy (and an access wanted by three queries
  should be performed exactly once);
* **the CPU** — each query's relevance searches are independent, and with a
  :class:`~repro.runtime.procpool.ProcessRelevancePool` they run *in
  parallel across queries* instead of sequentially under the GIL.

:class:`QueryServer` (alias :class:`MultiQueryMediator`) is that runtime.  It
owns one :class:`~repro.sources.service.Mediator` and, per distinct Boolean
query, a :class:`~repro.runtime.shards.SharedVerdictStore` kept in a registry
— so repeated :meth:`~QueryServer.answer` calls (the "requests" of the
server) inherit every earlier call's LTR history and witness paths.  With a
``cache_path`` the stores additionally warm up from a
:class:`~repro.runtime.persist.PersistentWitnessCache`, surviving process
restarts.

A :meth:`~QueryServer.answer` call schedules **shared rounds**:

1. resolve certainty for every still-open query (pooled across queries when
   a process pool is attached) and retire the certain ones;
2. enumerate the round's candidate accesses *once* against the shared
   configuration;
3. per query: prefilter by its relevant-relation closure, group bindings by
   configuration automorphism, and resolve the representatives' LTR verdicts
   — submitting every query's fresh searches to the pool *before* collecting
   any, so the searches overlap across workers;
4. union the relevant accesses of all queries (deduplicated), execute them
   as one batch through a shared :class:`~repro.runtime.executor.AccessExecutor`
   (``parallelism`` overlaps source latency), re-checking each access at
   dispatch time against the queries that wanted it;
5. stop early once every query is certain; otherwise loop until a round
   makes no progress.

Verdicts are pure functions of configuration content, so the scheduling is
deterministic: a server with ``search_workers=4`` returns the same answers
and performs the same access set as one with ``search_workers=1`` — only the
wall-clock differs.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.data import Configuration
from repro.exceptions import QueryError
from repro.queries import certain_answers
from repro.runtime.cache import RelevanceOracle, access_key
from repro.runtime.executor import AccessExecutor, candidate_accesses
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.persist import PersistentWitnessCache
from repro.runtime.storage import WitnessStore
from repro.runtime.procpool import ProcessRelevancePool
from repro.runtime.retry import Deadline
from repro.runtime.screening import (
    CandidateScreen,
    access_is_relevant,
    resolve_group_verdict,
)
from repro.runtime.serialize import query_token
from repro.runtime.shards import SharedVerdictStore
from repro.runtime.tracing import TracerLike, activate_tracer, current_tracer
from repro.schema import Access
from repro.sources.service import Mediator

__all__ = ["MultiQueryMediator", "QueryOutcome", "QueryServer", "ServerResult"]


@dataclass(frozen=True)
class QueryOutcome:
    """Per-query outcome of one :meth:`QueryServer.answer` call.

    ``rounds_exhausted`` is set when this query's strategy was cut off
    before reaching certainty — by the call's global ``max_rounds`` or by
    the query's own round/access budget.  The answer set is still the sound
    certain answers at the final configuration (and ``certain`` may even be
    ``True`` if *other* queries' retrieval happened to settle this one).
    ``rounds_used`` counts the shared rounds in which this query actively
    screened candidates, and ``accesses_charged`` the accesses its own
    relevance verdicts asked the batch to perform — the per-query
    accounting a fairness policy meters budgets against.

    ``degraded`` marks a *sound but possibly incomplete* outcome: accesses
    this query wanted failed past their retries (``failed_accesses`` lists
    their keys) or the query's deadline expired, and the query did not
    reach certainty anyway.  The answer set is still the certain answers at
    the facts actually merged — by monotonicity a subset of the fault-free
    answers, never a wrong claim.  ``attempts`` totals the source-call
    attempts (including retries) spent on accesses this query wanted.
    """

    query: object
    answers: FrozenSet[Tuple[object, ...]]
    certain: bool
    relevance_checks: int = 0
    rounds_exhausted: bool = False
    rounds_used: int = 0
    accesses_charged: int = 0
    degraded: bool = False
    failed_accesses: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    attempts: int = 0

    @property
    def boolean_answer(self) -> bool:
        """Boolean reading of the answer set (true iff non-empty)."""
        return bool(self.answers)


@dataclass(frozen=True)
class ServerResult:
    """Aggregate outcome of one :meth:`QueryServer.answer` call.

    ``accesses_made`` and ``facts_retrieved`` are *shared* totals: an access
    wanted by several queries is performed (and counted) once.
    """

    outcomes: Tuple[QueryOutcome, ...]
    rounds: int
    accesses_made: int
    facts_retrieved: int
    rounds_exhausted: bool = False

    @property
    def answers(self) -> Tuple[FrozenSet[Tuple[object, ...]], ...]:
        """The answer sets, in query submission order."""
        return tuple(outcome.answers for outcome in self.outcomes)

    @property
    def boolean_answers(self) -> Tuple[bool, ...]:
        """The Boolean readings, in query submission order."""
        return tuple(outcome.boolean_answer for outcome in self.outcomes)

    @property
    def degraded(self) -> bool:
        """Whether any query retired with a degraded (sound-subset) outcome."""
        return any(outcome.degraded for outcome in self.outcomes)


class _QueryState:
    """One query's strategy state inside an answer call."""

    __slots__ = (
        "query",
        "boolean",
        "oracle",
        "screen",
        "prefilter_ltr",
        "certain",
        "relevance_checks",
        "exhausted",
        "index",
        "span_ctx",
        "round_budget",
        "access_budget",
        "rounds_used",
        "accesses_charged",
        "deadline",
        "failed_keys",
        "attempts",
    )

    def __init__(self, query, boolean, oracle, screen, prefilter_ltr, index) -> None:
        self.query = query
        self.boolean = boolean
        self.oracle = oracle
        self.screen = screen
        self.prefilter_ltr = prefilter_ltr
        self.certain = False
        self.relevance_checks = 0
        self.exhausted = False
        #: Submission-order position; tags spans and why-annotations so a
        #: trace names queries stably even when they lack a ``name``.
        self.index = index
        #: The query's per-round span context — later phases of the same
        #: round (verdict resolution, pooled prefetch adoption) re-anchor
        #: their spans under the span that screened the query's candidates.
        self.span_ctx = None
        #: Fairness budgets (``None`` = unlimited) and the accounting they
        #: are metered against: rounds this query actively participated in,
        #: and accesses its relevance verdicts asked the batch to perform.
        self.round_budget = None
        self.access_budget = None
        self.rounds_used = 0
        self.accesses_charged = 0
        #: Fault accounting: the query's deadline (``None`` = unlimited),
        #: the keys of wanted accesses that failed past their retries, and
        #: the total source-call attempts spent on this query's accesses.
        self.deadline = None
        self.failed_keys = set()
        self.attempts = 0

    def deadline_expired(self) -> bool:
        """Whether this query's deadline (if any) has passed."""
        return self.deadline is not None and self.deadline.expired()

    def over_budget(self) -> bool:
        """Whether either fairness budget is spent."""
        if self.round_budget is not None and self.rounds_used >= self.round_budget:
            return True
        return (
            self.access_budget is not None
            and self.accesses_charged >= self.access_budget
        )


class QueryServer:
    """A long-lived multi-query answering runtime over one mediator.

    Parameters
    ----------
    mediator:
        The federated engine whose configuration every query shares.
    use_immediate / use_long_term / ltr_method:
        The relevance notions each query's strategy filters accesses with
        (same semantics as :func:`repro.planner.dynamic.relevance_guided_strategy`).
    search_workers / pool:
        ``search_workers > 1`` builds a :class:`ProcessRelevancePool` owned
        by the server (closed by :meth:`close`); an explicit ``pool`` is
        attached as-is and left open.  The pool runs every query's fresh LTR
        searches — and the per-round certainty checks — concurrently.
    cache_path / cache_backend / persist:
        A :class:`PersistentWitnessCache` path (``cache_backend`` selects
        ``"auto"`` / ``"jsonl"`` / ``"sqlite"`` storage — see
        :mod:`repro.runtime.storage`), or a prebuilt cache or
        :class:`~repro.runtime.storage.WitnessStore` instance: witness paths
        captured by any query are recorded, and every store warms up from it,
        so a restarted server revalidates instead of searching fresh.  With
        the SQLite backend one store file may be shared by N concurrent
        server processes; the backend's generation counter invalidates each
        process's decode memo, so worker A's records seed worker B.
    parallelism:
        Access-execution concurrency per round (source latency overlap),
        forwarded to the shared executor.
    metrics:
        A shared sink; per-query oracles, the screens, and the executor all
        record into it.
    max_stores:
        Bound on the per-query store registry (least-recently-used stores
        are evicted; an evicted query merely loses cross-request reuse).
    fixpoint_max_facts:
        Memory knob for the incremental-certainty state: the per-query
        :class:`~repro.queries.certain.CertaintyFixpoint` drops its
        materialized database when it exceeds this many facts (it rebuilds
        on the next certainty check).  Together with ``max_stores`` —
        evicting a store drops its fixpoint — this bounds certainty state
        to ``max_stores × fixpoint_max_facts`` facts.
    tracer:
        An optional :class:`~repro.runtime.tracing.Tracer` activated for the
        duration of every :meth:`answer` call.  With one attached the server
        records the full span hierarchy — ``answer → round → certainty /
        query → verdicts → oracle`` plus the executor's access batches — and
        re-anchors spans shipped back from pool workers.  Without one the
        ambient (usually no-op) tracer is used and the overhead is a few
        thread-local reads per round.
    """

    def __init__(
        self,
        mediator: Mediator,
        *,
        use_immediate: bool = False,
        use_long_term: bool = True,
        ltr_method: str = "auto",
        metrics: Optional[RuntimeMetrics] = None,
        search_workers: int = 1,
        pool: Optional[ProcessRelevancePool] = None,
        cache_path: Optional[str] = None,
        cache_backend: str = "auto",
        persist: Optional[Union[PersistentWitnessCache, WitnessStore]] = None,
        parallelism: int = 1,
        max_entries: Optional[int] = 65536,
        max_stores: int = 64,
        fixpoint_max_facts: int = 1_000_000,
        tracer: Optional[TracerLike] = None,
    ) -> None:
        if not use_immediate and not use_long_term:
            raise QueryError("at least one relevance notion must be enabled")
        if cache_path is not None and persist is not None:
            raise QueryError("pass either cache_path or a persist instance, not both")
        self._mediator = mediator
        self._use_immediate = use_immediate
        self._use_long_term = use_long_term
        self._ltr_method = ltr_method
        self._metrics = metrics if metrics is not None else RuntimeMetrics()
        self._own_pool = pool is None and search_workers > 1
        self._pool = (
            ProcessRelevancePool(search_workers) if self._own_pool else pool
        )
        if isinstance(persist, WitnessStore):
            persist = PersistentWitnessCache(store=persist)
        self._persist = (
            PersistentWitnessCache(
                cache_path, backend=cache_backend, metrics=self._metrics
            )
            if cache_path is not None
            else persist
        )
        if self._persist is not None:
            self._persist.attach_metrics(self._metrics)
        self._parallelism = max(1, parallelism)
        self._max_entries = max_entries
        # An explicit tracer is activated for the span of every answer call;
        # without one the server joins whatever tracer is ambient on the
        # calling thread (usually the no-op tracer).
        self._tracer = tracer
        # Bounded LRU of per-query verdict stores: a server streaming
        # mostly-distinct queries must not pin one store (and its LRUs) per
        # query ever seen.  Evicting a store only costs reuse — a returning
        # query rebuilds its history (or re-seeds it from the persistent
        # cache), never a wrong answer.
        self._max_stores = max(1, max_stores)
        self._fixpoint_max_facts = fixpoint_max_facts
        self._stores: "OrderedDict[str, SharedVerdictStore]" = OrderedDict()
        # One executor for the server's lifetime: its deduplication set is
        # what makes an access performed by one answer call advance — and
        # never be re-sent by — every later call.
        self._executor = AccessExecutor(mediator, metrics=self._metrics)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def mediator(self) -> Mediator:
        """The mediator whose configuration the queries share."""
        return self._mediator

    @property
    def metrics(self) -> RuntimeMetrics:
        """The shared metrics sink."""
        return self._metrics

    @property
    def pool(self) -> Optional[ProcessRelevancePool]:
        """The attached process pool, if any."""
        return self._pool

    @property
    def persist(self) -> Optional[PersistentWitnessCache]:
        """The attached persistent witness cache, if any."""
        return self._persist

    def store_for(self, query) -> SharedVerdictStore:
        """The per-(query, schema) verdict store, created on first use.

        Stores are keyed by the query's process-stable token, so two equal
        queries (even parsed from different strings) share one store, and
        the registry survives across :meth:`answer` calls — that is what
        makes the server a *server* rather than a per-request library.
        """
        boolean = query if query.is_boolean else query.boolean_closure()
        token = query_token(boolean)
        store = self._stores.get(token)
        if store is None:
            store = SharedVerdictStore(
                boolean,
                self._mediator.schema,
                max_entries=self._max_entries,
                fixpoint_max_facts=self._fixpoint_max_facts,
            )
            self._stores[token] = store
            while len(self._stores) > self._max_stores:
                self._stores.popitem(last=False)
        else:
            self._stores.move_to_end(token)
        return store

    def close(self) -> None:
        """Shut down a server-owned process pool (idempotent)."""
        if self._own_pool and self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Answering
    # ------------------------------------------------------------------ #
    def answer(
        self,
        queries: Sequence[object],
        *,
        max_rounds: int = 50,
        strategy: str = "guided",
        round_budgets: Optional[Sequence[Optional[int]]] = None,
        access_budgets: Optional[Sequence[Optional[int]]] = None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
        deadline_s: Optional[float] = None,
    ) -> ServerResult:
        """Answer a batch of queries over the shared configuration.

        ``strategy="guided"`` runs the shared relevance-guided rounds of the
        module docstring; ``strategy="exhaustive"`` retrieves the full
        accessible part once (every well-formed access to a fixpoint) and
        then evaluates all queries against it — the Li [18] baseline, here
        paying its retrieval cost once for the whole batch.

        ``round_budgets`` / ``access_budgets`` (guided strategy only) give
        each query, positionally, a private fairness budget: once a query
        has participated in that many shared rounds — or asked the batch to
        perform that many accesses — it is retired from the rounds with
        ``rounds_exhausted=True`` while the *other* queries' rounds
        continue.  This is how the network service stops one dominating
        query of a coalesced batch from starving the rest: the dominating
        query spends its budget and retires; everyone else keeps answering.
        ``None`` entries (and ``None`` budgets) mean unlimited.

        ``deadlines`` / ``deadline_s`` (guided strategy only) give each
        query, positionally (or uniformly with the scalar ``deadline_s``),
        a wall-clock budget in seconds, counted from this call's start.  A
        query whose deadline expires retires with a ``degraded`` outcome —
        its answers are the sound certain answers from the facts merged so
        far — while batchmates keep answering; a hung source cannot block
        past expiry (the executor abandons in-flight work unmerged).
        Accesses that fail past the mediator's retry policy likewise retire
        the wanting queries as degraded once rounds stop progressing, with
        the failing access keys in ``QueryOutcome.failed_accesses``.
        """
        if strategy not in ("guided", "exhaustive"):
            raise QueryError(f"unknown answering strategy {strategy!r}")
        queries = list(queries)
        for name, budgets in (
            ("round_budgets", round_budgets),
            ("access_budgets", access_budgets),
        ):
            if budgets is not None and len(budgets) != len(queries):
                raise QueryError(
                    f"{name} must align with queries "
                    f"({len(budgets)} budgets for {len(queries)} queries)"
                )
        if deadlines is not None and len(deadlines) != len(queries):
            raise QueryError(
                f"deadlines must align with queries "
                f"({len(deadlines)} deadlines for {len(queries)} queries)"
            )
        if deadlines is None and deadline_s is not None:
            deadlines = [deadline_s] * len(queries)
        if not queries:
            return ServerResult((), 0, 0, 0)
        # The clock starts here: convert the per-query second budgets into
        # absolute monotonic deadlines before any retrieval work begins.
        query_deadlines: Optional[List[Optional[Deadline]]] = None
        if deadlines is not None:
            query_deadlines = [
                Deadline.after(seconds) if seconds is not None else None
                for seconds in deadlines
            ]
        executor = self._executor
        accesses_before = self._mediator.access_count
        facts_before = len(self._mediator.configuration_view)
        started = time.perf_counter()
        tracer = self._tracer if self._tracer is not None else current_tracer()
        with activate_tracer(tracer) as active:
            with active.span("answer", queries=len(queries), strategy=strategy) as span:
                if strategy == "exhaustive":
                    states, rounds, exhausted = self._exhaustive_rounds(
                        queries, executor, max_rounds
                    )
                else:
                    states, rounds, exhausted = self._guided_rounds(
                        queries,
                        executor,
                        max_rounds,
                        round_budgets=round_budgets,
                        access_budgets=access_budgets,
                        deadlines=query_deadlines,
                    )
                outcomes = self._finalize(states)
                result = ServerResult(
                    outcomes=outcomes,
                    rounds=rounds,
                    accesses_made=self._mediator.access_count - accesses_before,
                    facts_retrieved=len(self._mediator.configuration_view) - facts_before,
                    rounds_exhausted=exhausted,
                )
                if active.enabled:
                    span.annotate(
                        rounds=result.rounds,
                        performed=result.accesses_made,
                        facts=result.facts_retrieved,
                        certain=sum(1 for outcome in outcomes if outcome.certain),
                    )
        self._metrics.observe("server.query_latency", time.perf_counter() - started)
        return result

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _make_states(
        self,
        queries: Sequence[object],
        round_budgets: Optional[Sequence[Optional[int]]] = None,
        access_budgets: Optional[Sequence[Optional[int]]] = None,
        deadlines: Optional[Sequence[Optional[Deadline]]] = None,
    ) -> List[_QueryState]:
        states: List[_QueryState] = []
        schema = self._mediator.schema
        for index, query in enumerate(queries):
            boolean = query if query.is_boolean else query.boolean_closure()
            oracle = RelevanceOracle(
                boolean,
                schema,
                ltr_method=self._ltr_method,
                metrics=self._metrics,
                max_entries=self._max_entries,
                store=self.store_for(boolean),
                pool=self._pool,
                persist=self._persist,
            )
            screen = CandidateScreen(boolean, schema, metrics=self._metrics)
            prefilter_ltr = self._use_long_term and self._ltr_method in (
                "auto",
                "direct",
                "independent",
                "single-occurrence",
            )
            state = _QueryState(query, boolean, oracle, screen, prefilter_ltr, index)
            if round_budgets is not None:
                state.round_budget = round_budgets[index]
            if access_budgets is not None:
                state.access_budget = access_budgets[index]
            if deadlines is not None:
                state.deadline = deadlines[index]
            states.append(state)
        return states

    def _resolve_certainty(
        self, states: Sequence[_QueryState], configuration: Configuration
    ) -> None:
        """Update ``state.certain`` for every state (monotone, so certain
        states are never re-checked).  With a pool attached the uncached
        checks of different queries run concurrently on the workers.

        ``fast_certainty`` resolves by exact fingerprint hit *or* by a
        lineage-matched read of the query's certainty fixpoint — advanced
        each batch by the merged facts — so only queries needing a full
        (re-)evaluation are shipped to the pool or computed inline."""
        unresolved: List[_QueryState] = []
        for state in states:
            if state.certain:
                continue
            cached = state.oracle.fast_certainty(configuration)
            if cached is not None:
                state.certain = cached
            else:
                unresolved.append(state)
        if not unresolved:
            return
        tracer = current_tracer()
        with tracer.span("certainty", unresolved=len(unresolved)) as span:
            if self._pool is not None and len(unresolved) > 1:
                trace = tracer.enabled
                parent = span.context if trace else None
                futures = [
                    self._pool.submit(
                        "certain",
                        state.boolean,
                        self._mediator.schema,
                        configuration,
                        trace=trace,
                    )
                    for state in unresolved
                ]
                for state, future in zip(unresolved, futures):
                    # A deadlined query must not block on a slow pooled
                    # certainty check: give the future only the query's
                    # remaining time and leave the state uncertain on a
                    # timeout (sound — certainty is only ever an upgrade).
                    timeout = None
                    if state.deadline is not None:
                        remaining = state.deadline.remaining()
                        if remaining != float("inf"):
                            timeout = max(0.0, remaining)
                    try:
                        payload = future.result(timeout=timeout)
                    except FuturesTimeout:
                        self._metrics.incr("deadline.certainty_timeout")
                        continue
                    if trace:
                        payload, span_specs = payload
                        tracer.adopt_spans(span_specs, parent, query=state.index)
                    verdict = bool(payload[0])
                    state.oracle.adopt_certainty(configuration, verdict)
                    state.certain = verdict
                    self._metrics.incr("server.pool_certainty")
            else:
                for state in unresolved:
                    state.certain = state.oracle.is_certain(configuration)
            if tracer.enabled:
                span.annotate(
                    certain=sum(1 for state in unresolved if state.certain)
                )

    def _guided_rounds(
        self,
        queries: Sequence[object],
        executor: AccessExecutor,
        max_rounds: int,
        round_budgets: Optional[Sequence[Optional[int]]] = None,
        access_budgets: Optional[Sequence[Optional[int]]] = None,
        deadlines: Optional[Sequence[Optional[Deadline]]] = None,
    ) -> Tuple[List[_QueryState], int, bool]:
        mediator = self._mediator
        schema = mediator.schema
        states = self._make_states(queries, round_budgets, access_budgets, deadlines)
        rounds = 0
        progressed_out = False
        tracer = current_tracer()
        for _round in range(max_rounds):
            rounds += 1
            self._metrics.incr("server.rounds")
            round_started = time.perf_counter()
            # ``try/finally`` so the round histogram also sees the terminal
            # round, which returns from inside the span.
            try:
                with tracer.span("round", index=rounds - 1) as round_span:
                    result = self._one_guided_round(
                        states, executor, tracer, round_span
                    )
            finally:
                self._metrics.observe(
                    "server.round_latency", time.perf_counter() - round_started
                )
            if result is not None:
                exhausted_any = result[1] or any(
                    state.exhausted for state in states
                )
                return states, rounds, exhausted_any
        # Budget ran out while rounds were still progressing: conservatively
        # flag the still-open queries, unless nothing is left to try.
        final = mediator.configuration_view
        self._resolve_certainty(states, final)
        if candidate_accesses(schema, final, executor.has_performed_key):
            for state in states:
                if not state.certain:
                    state.exhausted = True
                    progressed_out = True
            if progressed_out:
                self._metrics.incr("server.rounds_exhausted")
        return states, rounds, progressed_out or any(s.exhausted for s in states)

    def _one_guided_round(
        self,
        states: List[_QueryState],
        executor: AccessExecutor,
        tracer: TracerLike,
        round_span,
    ) -> Optional[Tuple[bool, bool]]:
        """One shared round.  Returns ``(done, exhausted)`` when the rounds
        should stop, ``None`` to continue with the next round."""
        mediator = self._mediator
        schema = mediator.schema
        configuration = mediator.configuration_view
        self._resolve_certainty(
            [state for state in states if not state.exhausted], configuration
        )
        # Budget enforcement: a query whose round/access budget is spent is
        # retired from the shared rounds (its outcome flags
        # ``rounds_exhausted``) — the batch keeps answering everyone else.
        # A spent deadline retires the same way; ``_finalize`` turns the
        # retirement into a ``degraded`` outcome when certainty was missed.
        for state in states:
            if state.certain or state.exhausted:
                continue
            if state.over_budget():
                state.exhausted = True
                self._metrics.incr("server.budget_exhausted")
            elif state.deadline_expired():
                state.exhausted = True
                self._metrics.incr("deadline.expired")
        active = [
            state for state in states if not state.certain and not state.exhausted
        ]
        if not active:
            return (True, any(state.exhausted for state in states))
        for state in active:
            state.rounds_used += 1

        candidates = candidate_accesses(
            schema, configuration, executor.has_performed_key
        )
        if tracer.enabled:
            round_span.annotate(active=len(active), candidates=len(candidates))
        # Per query: prefilter + group, then submit every query's fresh
        # LTR searches before collecting any — with a pool the searches
        # of different queries overlap across the worker processes.  The
        # prefetch is submitted inside the query's span so the workers'
        # shipped span trees re-anchor under it.
        grouped: List[Tuple[_QueryState, List]] = []
        finishers = []
        for state in active:
            with tracer.span(
                "query",
                query=getattr(state.query, "name", None),
                index=state.index,
            ) as qspan:
                mine = candidates
                if state.prefilter_ltr:
                    mine = state.screen.prefilter(mine)
                elif self._use_immediate and not self._use_long_term:
                    mine = state.screen.prefilter(mine, immediate_only=True)
                groups = state.screen.group(mine, configuration)
                grouped.append((state, groups))
                if self._use_long_term:
                    finishers.append(
                        state.oracle.begin_prefetch_long_term(
                            [representative for representative, _m in groups],
                            configuration,
                        )
                    )
                state.span_ctx = qspan.context if tracer.enabled else None
        for finish in finishers:
            finish()

        # Assemble each query's relevant accesses, then union them.  Under
        # a tracer every batched access also gets a *why* record — which
        # queries wanted it and whether its verdict was computed directly
        # or inherited from its group representative — which the executor
        # forwards onto the access's ``source-call`` span.
        wanted: Dict[Tuple[str, Tuple[object, ...]], List[_QueryState]] = {}
        why: Dict[Tuple[str, Tuple[object, ...]], Dict[str, object]] = {}
        batch_accesses: List[Access] = []
        for state, groups in grouped:
            with tracer.span(
                "verdicts", parent=state.span_ctx, index=state.index
            ) as vspan:
                kept = 0
                for representative, members in groups:
                    state.relevance_checks += 1
                    if not resolve_group_verdict(
                        state.oracle,
                        representative,
                        members,
                        configuration,
                        use_long_term=self._use_long_term,
                        use_immediate=self._use_immediate,
                    ):
                        continue
                    kept += 1
                    for access in [representative] + [m for m, _map in members]:
                        key = access_key(access)
                        owners = wanted.get(key)
                        if owners is None:
                            wanted[key] = [state]
                            batch_accesses.append(access)
                            state.accesses_charged += 1
                        elif state not in owners:
                            owners.append(state)
                            state.accesses_charged += 1
                        if tracer.enabled:
                            entry = why.setdefault(
                                key,
                                {
                                    "why": "relevant",
                                    "via": (
                                        "representative"
                                        if access is representative
                                        else "automorphism-group"
                                    ),
                                    "queries": [],
                                },
                            )
                            entry["queries"].append(state.index)
                if tracer.enabled:
                    vspan.annotate(groups=len(groups), relevant=kept)

        def annotate_access(access: Access) -> Optional[Dict[str, object]]:
            entry = why.get(access_key(access))
            if entry is None:
                return None
            tags = dict(entry)
            tags["queries"] = ",".join(str(index) for index in entry["queries"])
            return tags

        def precheck(access: Access) -> bool:
            live = mediator.configuration_view
            keep = False
            for state in wanted.get(access_key(access), ()):
                if state.certain:
                    continue
                state.relevance_checks += 1
                if access_is_relevant(
                    state.oracle,
                    access,
                    live,
                    use_long_term=self._use_long_term,
                    use_immediate=self._use_immediate,
                ):
                    keep = True
            return keep

        def stop() -> bool:
            live = mediator.configuration_view
            for state in states:
                # Retired (budget-exhausted) queries must not keep the
                # batch alive: the rounds stop once every *live* query is
                # certain, whatever the retired ones still lack.
                if state.certain or state.exhausted:
                    continue
                if not state.oracle.is_certain(live):
                    return False
                state.certain = True
            return True

        # Each merged response advances every query's certainty fixpoint
        # (one per shared store — duplicate queries share one state, so the
        # batch advances one state per *distinct* query, not per state)
        # before any subsequent stop() probe, which therefore resolves by
        # delta advance instead of re-evaluating the shared configuration
        # once per live query.
        absorbers: List[RelevanceOracle] = []
        seen_fixpoints = set()
        for state in states:
            fixpoint = state.oracle.certainty_fixpoint
            if fixpoint is None or id(fixpoint) in seen_fixpoints:
                continue
            seen_fixpoints.add(id(fixpoint))
            absorbers.append(state.oracle)

        def on_response(response) -> None:
            for oracle in absorbers:
                oracle.absorb_response(response)

        # The batch deadline is the most generous remaining deadline among
        # the round's active queries — the batch serves all of them, so it
        # may run as long as *any* participant is still allowed to wait.
        # (Per-query expiry is enforced at round boundaries above.)  With
        # even one unlimited query the batch itself is unlimited.
        batch_deadline: Optional[Deadline] = None
        if active and all(state.deadline is not None for state in active):
            batch_deadline = max(
                (state.deadline for state in active),
                key=lambda deadline: deadline.remaining(),
            )

        batch = executor.execute_batch(
            batch_accesses,
            precheck=precheck,
            stop=stop,
            max_concurrency=self._parallelism,
            annotate_access=annotate_access if tracer.enabled else None,
            on_response=on_response if absorbers else None,
            deadline=batch_deadline,
            tolerate_failures=True,
        )
        # Attribute the batch's failures and retry effort to the queries
        # that wanted each access.  Failed accesses stay un-performed (the
        # executor never marks them), so they re-candidate next round; once
        # nothing progresses, the wanting queries retire with the keys in
        # ``failed_accesses``.
        for access, _error, _attempts in batch.failed:
            key = executor.key(access)
            for state in wanted.get(key, ()):
                if key not in state.failed_keys:
                    state.failed_keys.add(key)
                    self._metrics.incr("server.access_failures")
        for key, attempts in batch.attempts_by_key.items():
            for state in wanted.get(key, ()):
                state.attempts += attempts
        if not batch.progressed:
            return (False, False)
        return None

    def _exhaustive_rounds(
        self,
        queries: Sequence[object],
        executor: AccessExecutor,
        max_rounds: int,
    ) -> Tuple[List[_QueryState], int, bool]:
        mediator = self._mediator
        schema = mediator.schema
        states = self._make_states(queries)
        rounds = 0
        tracer = current_tracer()
        for _round in range(max_rounds):
            rounds += 1
            self._metrics.incr("server.rounds")
            round_started = time.perf_counter()
            try:
                with tracer.span("round", index=rounds - 1):
                    candidates = candidate_accesses(
                        schema, mediator.configuration_view, executor.has_performed_key
                    )
                    batch = executor.execute_batch(
                        candidates, max_concurrency=self._parallelism
                    )
            finally:
                self._metrics.observe(
                    "server.round_latency", time.perf_counter() - round_started
                )
            if not batch.progressed:
                return states, rounds, False
        exhausted = bool(
            candidate_accesses(
                schema, mediator.configuration_view, executor.has_performed_key
            )
        )
        if exhausted:
            for state in states:
                state.exhausted = True
            self._metrics.incr("server.rounds_exhausted")
        return states, rounds, exhausted

    def _finalize(self, states: List[_QueryState]) -> Tuple[QueryOutcome, ...]:
        """Evaluate every query at the final configuration (pooled when possible)."""
        final = self._mediator.configuration_view
        answer_sets: List[FrozenSet[Tuple[object, ...]]] = []
        tracer = current_tracer()
        with tracer.span("finalize", queries=len(states)) as span:
            if self._pool is not None and len(states) > 1:
                trace = tracer.enabled
                parent = span.context if trace else None
                futures = [
                    self._pool.submit(
                        "answers",
                        state.query,
                        self._mediator.schema,
                        final,
                        trace=trace,
                    )
                    for state in states
                ]
                for state, future in zip(states, futures):
                    payload = future.result()
                    if trace:
                        payload, span_specs = payload
                        tracer.adopt_spans(span_specs, parent, query=state.index)
                    answer_sets.append(frozenset(payload[0]))
            else:
                for state in states:
                    answer_sets.append(certain_answers(state.query, final))
        outcomes = []
        for state, answers in zip(states, answer_sets):
            # ``certain`` is monotone, so a flag set during the rounds is
            # final; otherwise ask the (memoized) oracle at the final
            # configuration — the rounds may have ended between the merge
            # that made a query certain and its next certainty check.
            certain = state.certain or state.oracle.is_certain(final)
            # Degraded = faults actually cost this query something: wanted
            # accesses failed past retries or its deadline expired, *and*
            # certainty was still missed.  A query that reached certainty
            # despite faults is simply certain — the failures were moot.
            degraded = (
                bool(state.failed_keys) or state.deadline_expired()
            ) and not certain
            if degraded:
                self._metrics.incr("server.degraded")
            outcomes.append(
                QueryOutcome(
                    query=state.query,
                    answers=answers,
                    certain=certain,
                    relevance_checks=state.relevance_checks,
                    rounds_exhausted=state.exhausted,
                    rounds_used=state.rounds_used,
                    accesses_charged=state.accesses_charged,
                    degraded=degraded,
                    failed_accesses=tuple(sorted(state.failed_keys, key=repr)),
                    attempts=state.attempts,
                )
            )
        return tuple(outcomes)


#: The name the ROADMAP promised; the implementation grew into a server.
MultiQueryMediator = QueryServer
