"""Memoized relevance verdicts: the :class:`RelevanceOracle`.

The paper's runtime-relevance procedures (immediate relevance, long-term
relevance, certainty) are pure functions of the query, the access, and the
*content* of the configuration.  A dynamic answering run asks the same
questions over and over: an access judged irrelevant this round is judged
again next round, and the configuration has usually not changed in between.
The oracle memoizes every verdict keyed by ``(kind, access, configuration
fingerprint)``, where the fingerprint is the O(1) content hash maintained by
:class:`~repro.data.instance.Instance` — so a cache hit costs two dictionary
lookups instead of a witness search.

Entries are evicted least-recently-used beyond ``max_entries`` so a
long-running mediator cannot grow the cache without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.core import ContainmentOptions, is_immediately_relevant, is_long_term_relevant
from repro.data import Configuration
from repro.queries import is_certain
from repro.runtime.metrics import RuntimeMetrics
from repro.schema import Access, Schema

__all__ = ["LRUCache", "RelevanceOracle", "access_key"]


def access_key(access: Access) -> Tuple[str, Tuple[object, ...]]:
    """A hashable identity for an access: its method name and binding."""
    return (access.method.name, tuple(access.binding))


class LRUCache:
    """A small LRU map with hit/miss accounting."""

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default: object = None) -> object:
        """Look up ``key``, refreshing its recency on a hit."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Store ``key`` and evict the least-recently-used overflow."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self._max_entries is not None:
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


_MISSING = object()


class RelevanceOracle:
    """Memoized relevance and certainty decisions for one Boolean query.

    The oracle wraps the facade procedures of :mod:`repro.core` behind a
    cache keyed by ``(kind, access, configuration fingerprint)``.  Because
    the underlying procedures are deterministic functions of the
    configuration's content, a cache hit always returns the verdict the
    procedure would have computed — the property tests assert exactly this.
    """

    def __init__(
        self,
        query,
        schema: Schema,
        *,
        options: Optional[ContainmentOptions] = None,
        ltr_method: str = "auto",
        metrics: Optional[RuntimeMetrics] = None,
        max_entries: Optional[int] = 65536,
    ) -> None:
        self._query = query if query.is_boolean else query.boolean_closure()
        self._schema = schema
        self._options = options
        self._ltr_method = ltr_method
        self._metrics = metrics if metrics is not None else RuntimeMetrics()
        self._cache = LRUCache(max_entries)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def query(self):
        """The Boolean query the oracle answers about."""
        return self._query

    @property
    def schema(self) -> Schema:
        """The schema the oracle's verdicts were computed against."""
        return self._schema

    @property
    def metrics(self) -> RuntimeMetrics:
        """The metrics sink the oracle records into."""
        return self._metrics

    @property
    def cache_hits(self) -> int:
        """Number of verdicts served from the cache."""
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        """Number of verdicts computed by the underlying procedures."""
        return self._cache.misses

    def stats(self) -> Dict[str, int]:
        """Cache statistics as a plain dictionary."""
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "entries": len(self._cache),
        }

    # ------------------------------------------------------------------ #
    # Memoized decisions
    # ------------------------------------------------------------------ #
    def _memoized(self, key: Hashable, compute) -> bool:
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._metrics.incr("oracle.hits")
            return bool(cached)
        self._metrics.incr("oracle.misses")
        verdict = bool(compute())
        self._cache.put(key, verdict)
        return verdict

    def is_certain(self, configuration: Configuration) -> bool:
        """Memoized certainty of the query at ``configuration``."""
        key = ("certain", configuration.fingerprint())
        with self._metrics.timer("oracle.certain"):
            return self._memoized(key, lambda: is_certain(self._query, configuration))

    def immediately_relevant(self, access: Access, configuration: Configuration) -> bool:
        """Memoized immediate relevance of ``access`` at ``configuration``."""
        key = ("ir", access_key(access), configuration.fingerprint())
        with self._metrics.timer("oracle.immediate"):
            return self._memoized(
                key,
                lambda: is_immediately_relevant(self._query, access, configuration),
            )

    def long_term_relevant(self, access: Access, configuration: Configuration) -> bool:
        """Memoized long-term relevance of ``access`` at ``configuration``."""
        key = ("ltr", access_key(access), configuration.fingerprint())
        with self._metrics.timer("oracle.long_term"):
            return self._memoized(
                key,
                lambda: is_long_term_relevant(
                    self._query,
                    access,
                    configuration,
                    self._schema,
                    method=self._ltr_method,
                    options=self._options,
                ),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RelevanceOracle(query={getattr(self._query, 'name', None)!r}, "
            f"hits={self._cache.hits}, misses={self._cache.misses})"
        )
