"""Memoized relevance verdicts: the :class:`RelevanceOracle`.

The paper's runtime-relevance procedures (immediate relevance, long-term
relevance, certainty) are pure functions of the query, the access, and the
*content* of the configuration.  A dynamic answering run asks the same
questions over and over: an access judged irrelevant this round is judged
again next round, and the configuration has usually not changed in between.
The oracle memoizes every verdict keyed by ``(kind, access, configuration
fingerprint)``, where the fingerprint is the O(1) content hash maintained by
:class:`~repro.data.instance.Instance` — so a cache hit costs two dictionary
lookups instead of a witness search.

On a fingerprint *miss* the oracle does not immediately fall back to the full
search: long-term relevance goes through the incremental engine of
:mod:`repro.runtime.witness` first —

1. the last verdict for the access is *inherited* when the configuration
   delta since it was computed provably cannot change it
   (:meth:`~repro.runtime.witness.ConfigurationSnapshot.delta_safe`);
2. a stored positive witness path is *revalidated* in O(|path|)
   (:meth:`~repro.runtime.witness.LtrWitness.revalidate`);
3. only then does the direct search run — and when it proves relevance, its
   witness path is captured for the next round.

Entries are evicted least-recently-used beyond ``max_entries`` so a
long-running mediator cannot grow the cache without bound.

Two optional attachments extend the oracle beyond one process:

* a :class:`~repro.runtime.procpool.ProcessRelevancePool` (``pool=``) lets a
  caller *prefetch* a batch of LTR verdicts on worker processes
  (:meth:`RelevanceOracle.prefetch_long_term`): the misses that would
  otherwise each run a fresh CPU-bound search on this thread are searched
  concurrently, their verdicts and witness paths merged back into the cache;
* a :class:`~repro.runtime.persist.PersistentWitnessCache` (``persist=``, or
  ``cache_path=`` / ``cache_backend=`` to open one — JSONL or SQLite, see
  :mod:`repro.runtime.storage`) seeds stored witness paths at construction —
  a warm restart revalidates instead of searching — and records every newly
  captured path.

Concurrency: every cache the oracle reads or writes is an
:class:`~repro.runtime.shards.LRUCache` (lock-protected) or a
:class:`~repro.runtime.shards.ShardedLRUCache` (per-shard locks keyed by
``hash(key) % n_shards``).  Within one answering run all oracle calls stay
on the strategy's dispatching thread (see the mediator's concurrency notes);
the locks and sharding matter for the *cross-run* surfaces — oracles in
concurrent answering threads pooling a :class:`SharedVerdictStore`, or any
caller probing one oracle from several threads — where they prevent
corruption and keep unrelated access keys from serialising on one dict.
Verdicts are deterministic functions of configuration content; two threads
racing on the same miss compute the same value, so no compute-level lock is
needed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core import (
    ContainmentOptions,
    is_immediately_relevant,
    long_term_relevance_with_witness,
)
from repro.core.longterm_dependent import containment_cq_memo
from repro.data import Configuration, Fact
from repro.exceptions import QueryError
from repro.queries import is_certain
from repro.queries.certain import CertaintyFixpoint
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.shards import LRUCache, ShardedLRUCache, SharedVerdictStore
from repro.runtime.tracing import current_tracer
from repro.runtime.witness import (
    ConfigurationSnapshot,
    LtrWitness,
    dependent_input_domains,
)
from repro.schema import Access, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.persist import PersistentWitnessCache
    from repro.runtime.procpool import ProcessRelevancePool

__all__ = ["LRUCache", "RelevanceOracle", "access_key"]


def access_key(access: Access) -> Tuple[str, Tuple[object, ...]]:
    """A hashable identity for an access: its method name and binding."""
    return (access.method.name, tuple(access.binding))


_MISSING = object()


class _LtrHistory:
    """The last LTR verdict for one access, with its dependency snapshot."""

    __slots__ = ("verdict", "snapshot")

    def __init__(self, verdict: bool, snapshot: ConfigurationSnapshot) -> None:
        self.verdict = verdict
        self.snapshot = snapshot


class RelevanceOracle:
    """Memoized relevance and certainty decisions for one Boolean query.

    The oracle wraps the facade procedures of :mod:`repro.core` behind a
    cache keyed by ``(kind, access, configuration fingerprint)``, plus the
    incremental delta-inheritance and witness-revalidation layers described
    in the module docstring.  Because the underlying procedures are
    deterministic functions of the configuration's content, and the
    incremental layers only answer when a sound argument transfers the old
    verdict, a hit always returns the verdict the procedure would have
    computed — the property tests assert exactly this.
    """

    def __init__(
        self,
        query,
        schema: Schema,
        *,
        options: Optional[ContainmentOptions] = None,
        ltr_method: str = "auto",
        metrics: Optional[RuntimeMetrics] = None,
        max_entries: Optional[int] = 65536,
        incremental: bool = True,
        certainty_fixpoint: bool = True,
        fixpoint_max_facts: int = 1_000_000,
        n_shards: int = 1,
        store: Optional[SharedVerdictStore] = None,
        pool: Optional["ProcessRelevancePool"] = None,
        persist: Optional["PersistentWitnessCache"] = None,
        cache_path: Optional[str] = None,
        cache_backend: str = "auto",
    ) -> None:
        self._query = query if query.is_boolean else query.boolean_closure()
        self._schema = schema
        self._options = options
        self._ltr_method = ltr_method
        self._metrics = metrics if metrics is not None else RuntimeMetrics()
        self._pool = pool
        if cache_path is not None and persist is not None:
            raise QueryError("pass either cache_path or a persist instance, not both")
        if cache_path is not None:
            from repro.runtime.persist import PersistentWitnessCache

            persist = PersistentWitnessCache(
                cache_path, backend=cache_backend, metrics=self._metrics
            )
        self._persist = persist
        self._cache: Union[LRUCache, ShardedLRUCache] = (
            ShardedLRUCache(max_entries, n_shards=n_shards)
            if n_shards > 1
            else LRUCache(max_entries)
        )
        self._incremental = incremental
        if store is not None:
            store.check_compatible(self._query, schema)
            if options is not None:
                raise QueryError(
                    "pass containment options when constructing the "
                    "SharedVerdictStore's oracles consistently; a store's "
                    "histories reflect the options they were computed under"
                )
            self._witnesses = store.witnesses
            self._ltr_history = store.ltr_history
        elif n_shards > 1:
            self._witnesses = ShardedLRUCache(max_entries, n_shards=n_shards)
            self._ltr_history = ShardedLRUCache(max_entries, n_shards=n_shards)
        else:
            self._witnesses = LRUCache(max_entries)
            self._ltr_history = LRUCache(max_entries)
        self._query_relations = frozenset(self._query.relation_names())
        self._unsafe_domains = dependent_input_domains(schema)
        if incremental and certainty_fixpoint:
            self._fixpoint: Optional[CertaintyFixpoint] = (
                store.certainty
                if store is not None
                else CertaintyFixpoint(self._query, max_facts=fixpoint_max_facts)
            )
        else:
            self._fixpoint = None
        self._metrics.register_cache("oracle.cache", self._cache)
        self._metrics.register_cache("oracle.witnesses", self._witnesses)
        self._metrics.register_cache("oracle.ltr_history", self._ltr_history)
        if self._fixpoint is not None:
            self._metrics.register_cache("oracle.certainty_fixpoint", self._fixpoint)
        # The Proposition 3.5 memo is process-wide (module-level in
        # repro.core.longterm_dependent); registering it here surfaces its
        # hit/miss counters in this runtime's metrics snapshots.
        self._metrics.register_cache(
            "ltr.containment_cq_memo", containment_cq_memo()
        )
        # Provenance for trace annotations: which witness keys came off disk
        # (vs captured live this process) and which verdicts a pool worker
        # computed.  LtrWitness is frozen, so provenance lives here, not on
        # the witness objects.
        self._pool_shipped: set = set()
        if persist is not None and incremental:
            seeded_keys = persist.seed(self._witnesses, self._query, schema)
            self._persist_seeded = frozenset(seeded_keys)
            if seeded_keys:
                self._metrics.incr("persist.seeded", len(seeded_keys))
        else:
            self._persist_seeded = frozenset()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def query(self):
        """The Boolean query the oracle answers about."""
        return self._query

    @property
    def schema(self) -> Schema:
        """The schema the oracle's verdicts were computed against."""
        return self._schema

    @property
    def metrics(self) -> RuntimeMetrics:
        """The metrics sink the oracle records into."""
        return self._metrics

    @property
    def ltr_method(self) -> str:
        """The long-term relevance procedure the oracle dispatches to."""
        return self._ltr_method

    @property
    def pool(self) -> Optional["ProcessRelevancePool"]:
        """The attached process pool, if any."""
        return self._pool

    @property
    def persist(self) -> Optional["PersistentWitnessCache"]:
        """The attached persistent witness cache, if any."""
        return self._persist

    @property
    def cache_hits(self) -> int:
        """Number of verdicts served from the cache."""
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        """Number of verdicts computed by the underlying procedures."""
        return self._cache.misses

    def stats(self) -> Dict[str, int]:
        """Cache statistics as a plain dictionary."""
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "entries": len(self._cache),
        }

    # ------------------------------------------------------------------ #
    # Memoized decisions
    # ------------------------------------------------------------------ #
    def _memoized(self, key: Hashable, compute) -> bool:
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._metrics.incr("oracle.hits")
            return bool(cached)
        self._metrics.incr("oracle.misses")
        verdict = bool(compute())
        self._cache.put(key, verdict)
        return verdict

    def is_certain(self, configuration: Configuration) -> bool:
        """Memoized, incrementally maintained certainty at ``configuration``.

        Resolution order mirrors the LTR chain: exact fingerprint hit →
        delta advance of the :class:`~repro.queries.certain.CertaintyFixpoint`
        (the materialized semi-naive state, matched by fact-fingerprint
        lineage and advanced by each batch's merged facts via
        :meth:`absorb_response`) → full re-evaluation only on a non-monotone
        reset (``restarted``) or when the query does not compile to a
        certainty program (``unsupported``, falling back to the direct
        evaluation).  Outcomes are counted as ``certainty.exact`` /
        ``certainty.advanced`` / ``certainty.restarted`` /
        ``certainty.unsupported``, and a ``certainty`` span carries the same
        outcome as its ``certainty=...`` tag.  Spans for exact and advanced
        resolutions are recorded only under an active tracer, so per-round
        certainty polling does not flood a trace with zero-duration entries.
        """
        key = ("certain", configuration.fingerprint())
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._metrics.incr("oracle.hits")
            self._metrics.incr("certainty.exact")
            tracer = current_tracer()
            if tracer.enabled:
                with tracer.span("certainty") as span:
                    span.annotate(certainty="exact", certain=bool(cached))
            return bool(cached)
        self._metrics.incr("oracle.misses")
        tracer = current_tracer()
        if self._fixpoint is not None:
            if tracer.enabled:
                with tracer.span("certainty") as span:
                    with self._metrics.timer("oracle.certain"):
                        verdict, outcome = self._fixpoint.check(configuration)
                    span.annotate(certainty=outcome, certain=verdict)
            else:
                with self._metrics.timer("oracle.certain"):
                    verdict, outcome = self._fixpoint.check(configuration)
            self._metrics.incr("certainty." + outcome)
            if verdict is not None:
                self._cache.put(key, bool(verdict))
                return bool(verdict)
            # Unsupported query: fall through to the direct evaluation.
        with tracer.span("certainty") as span:
            with self._metrics.timer("oracle.certain"):
                verdict = bool(is_certain(self._query, configuration))
            if tracer.enabled:
                span.annotate(certainty="computed", certain=verdict)
        self._cache.put(key, verdict)
        return verdict

    def immediately_relevant(self, access: Access, configuration: Configuration) -> bool:
        """Memoized immediate relevance of ``access`` at ``configuration``."""
        key = ("ir", access_key(access), configuration.fingerprint())
        with self._metrics.timer("oracle.immediate"):
            return self._memoized(
                key,
                lambda: is_immediately_relevant(self._query, access, configuration),
            )

    def long_term_relevant(self, access: Access, configuration: Configuration) -> bool:
        """Long-term relevance of ``access`` at ``configuration``.

        Resolution order: exact fingerprint hit → sound delta inheritance of
        the last verdict → O(|path|) revalidation of a stored witness →
        fresh search (capturing the witness on a positive answer).

        Under an active tracer every call records an ``oracle`` span tagged
        with the ``outcome`` that resolved it (``exact-hit`` /
        ``pool-shipped`` / ``delta-inherited`` / ``revalidated`` / ``fresh``)
        — the explain report's answer to *how* each verdict was obtained —
        with ``witness-revalidate`` / ``fresh-search`` child spans around the
        expensive stages.  Untraced, the exact-hit path costs one extra
        thread-local read over the pre-tracing oracle.
        """
        akey = access_key(access)
        key = ("ltr", akey, configuration.fingerprint())
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._metrics.incr("oracle.hits")
            tracer = current_tracer()
            if tracer.enabled:
                outcome = (
                    "pool-shipped" if akey in self._pool_shipped else "exact-hit"
                )
                with tracer.span("oracle", method=access.method.name) as span:
                    span.annotate(outcome=outcome, relevant=bool(cached))
            return bool(cached)
        self._metrics.incr("oracle.misses")
        tracer = current_tracer()
        if not tracer.enabled:
            return self._resolve_ltr_miss(
                access, akey, key, configuration, tracer, None
            )
        with tracer.span("oracle", method=access.method.name) as span:
            return self._resolve_ltr_miss(
                access, akey, key, configuration, tracer, span
            )

    def _resolve_ltr_miss(
        self, access, akey, key, configuration, tracer, span
    ) -> bool:
        """The miss path of :meth:`long_term_relevant` (``span`` may be None)."""
        if self._incremental:
            history = self._ltr_history.get(akey)
            if history is not None and history.snapshot.delta_safe(
                configuration, self._unsafe_domains
            ):
                self._metrics.incr("oracle.delta_hits")
                self._cache.put(key, history.verdict)
                if span is not None:
                    span.annotate(outcome="delta-inherited", relevant=history.verdict)
                return history.verdict

            witness = self._witnesses.get(akey)
            if witness is not None:
                with tracer.span("witness-revalidate") as wspan:
                    with self._metrics.timer("witness.revalidate"):
                        revalidated = witness.revalidate(self._query, configuration)
                    if span is not None:
                        wspan.annotate(
                            ok=revalidated,
                            provenance=(
                                "persisted"
                                if akey in self._persist_seeded
                                else "captured"
                            ),
                        )
                if revalidated:
                    self._metrics.incr("witness.revalidated")
                    self._record_ltr(akey, key, True, configuration, witness=None)
                    if span is not None:
                        span.annotate(outcome="revalidated", relevant=True)
                    return True
                self._metrics.incr("witness.revalidation_failed")
                # On a growing configuration a failed revalidation means the
                # truncation now satisfies the (monotone) query — the stored
                # path can never work again, so retrying it on every miss
                # only adds two query evaluations.  Drop it; a positive fresh
                # search below re-captures a live witness.  (With a
                # SharedVerdictStore the next run's configuration may shrink
                # back below this one; dropping then merely costs reuse,
                # never soundness.)
                self._witnesses.discard(akey)

        self._metrics.incr("oracle.fresh_searches")
        with tracer.span("fresh-search") as search_span:
            with self._metrics.timer("oracle.long_term"):

                def budget_tripped() -> None:
                    # Anytime containment: the reduction blew its wall-clock
                    # budget and the facade is falling back to the sound
                    # direct search.  Counted here so operators can see how
                    # often the budget is doing its job.
                    self._metrics.incr("oracle.containment_budget_tripped")
                    search_span.annotate(budget_tripped=True)

                verdict, steps = long_term_relevance_with_witness(
                    self._query,
                    access,
                    configuration,
                    self._schema,
                    method=self._ltr_method,
                    options=self._options,
                    on_budget_trip=budget_tripped,
                )
        witness = LtrWitness(tuple(steps)) if steps else None
        self._record_ltr(akey, key, verdict, configuration, witness=witness, access=access)
        if span is not None:
            span.annotate(outcome="fresh", relevant=verdict)
        return verdict

    def _record_ltr(
        self,
        akey: Hashable,
        key: Hashable,
        verdict: bool,
        configuration: Configuration,
        *,
        witness: Optional[LtrWitness],
        access: Optional[Access] = None,
    ) -> None:
        self._cache.put(key, verdict)
        if not self._incremental:
            return
        self._ltr_history.put(
            akey,
            _LtrHistory(
                verdict, ConfigurationSnapshot.capture(configuration, self._query_relations)
            ),
        )
        if witness is not None:
            self._witnesses.put(akey, witness)
            if self._persist is not None and access is not None:
                if self._persist.record(
                    self._query, self._schema, access, witness, configuration
                ):
                    self._metrics.incr("persist.recorded")

    def witness_for(self, access: Access) -> Optional[LtrWitness]:
        """The stored LTR witness for ``access``, if one was captured."""
        return self._witnesses.get(access_key(access))

    # ------------------------------------------------------------------ #
    # Process-pool prefetching
    # ------------------------------------------------------------------ #
    def begin_prefetch_long_term(
        self, accesses: Sequence[Access], configuration: Configuration
    ) -> Callable[[], int]:
        """Start resolving a batch's LTR misses on the process pool.

        Filters ``accesses`` down to those the oracle could only answer by a
        fresh search — an exact-fingerprint hit, a delta-inheritable history
        entry, or a stored witness path (revalidated in O(|path|), cheaper
        than a round-trip to a worker) are all left to the inline resolution
        of :meth:`long_term_relevant` — and submits one search task per
        remaining access.

        Returns a *finalizer*: calling it blocks until every submitted search
        completed, merges the verdicts (and re-anchored witness paths) into
        the cache, and returns the number of pooled searches.  The split lets
        a multi-query caller submit all queries' batches before collecting
        any, so searches of different queries overlap across workers.

        With no pool attached (or nothing to search) the finalizer is a
        no-op returning 0, so callers need no conditional.
        """
        if self._pool is None or not accesses:
            return lambda: 0
        fingerprint = configuration.fingerprint()
        pending: List[Access] = []
        seen = set()
        for access in accesses:
            akey = access_key(access)
            if akey in seen:
                continue
            seen.add(akey)
            if ("ltr", akey, fingerprint) in self._cache:
                continue
            if self._incremental:
                history = self._ltr_history.get(akey)
                if history is not None and history.snapshot.delta_safe(
                    configuration, self._unsafe_domains
                ):
                    continue
                if self._witnesses.get(akey) is not None:
                    continue
            pending.append(access)
        if not pending:
            return lambda: 0
        # Chunked submission: the configuration payload travels once per
        # chunk, not once per access (see ProcessRelevancePool.submit_ltr_chunks).
        # submit_ltr_chunks captures the submitting thread's open span, so
        # shipped worker spans re-anchor under the query that asked.
        chunks = self._pool.submit_ltr_chunks(
            self._query,
            self._schema,
            configuration,
            pending,
            ltr_method=self._ltr_method,
            options=self._options,
            trace=current_tracer().enabled,
        )

        def finish() -> int:
            for access, verdict, witness in self._pool.ltr_chunk_results(
                chunks, self._schema
            ):
                akey = access_key(access)
                self._pool_shipped.add(akey)
                self._metrics.incr("oracle.pool_searches")
                self._metrics.incr("oracle.fresh_searches")
                self._record_ltr(
                    akey,
                    ("ltr", akey, fingerprint),
                    verdict,
                    configuration,
                    witness=witness,
                    access=access,
                )
            return len(pending)

        return finish

    def prefetch_long_term(
        self, accesses: Sequence[Access], configuration: Configuration
    ) -> int:
        """Blocking form of :meth:`begin_prefetch_long_term`."""
        return self.begin_prefetch_long_term(accesses, configuration)()

    # ------------------------------------------------------------------ #
    # Externally computed verdicts
    # ------------------------------------------------------------------ #
    def absorb_response(self, response) -> None:
        """Advance the certainty fixpoint by a merged access response.

        Called (via the executor's ``on_response`` hook) on the dispatching
        thread right after each response's facts are merged into the
        configuration, so every subsequent certainty probe — including the
        executor's own mid-batch ``stop()`` checks — finds the fixpoint's
        lineage matching the live configuration and resolves by delta
        advance.  Feeding *all* of a response's facts is exact: the fixpoint
        deduplicates against its mirrored state.  No-op without a fixpoint.
        """
        if self._fixpoint is not None:
            self._fixpoint.absorb(response.as_facts())

    def absorb_facts(self, facts: Sequence[Fact]) -> None:
        """Advance the certainty fixpoint by already-merged facts."""
        if self._fixpoint is not None:
            self._fixpoint.absorb(facts)

    @property
    def certainty_fixpoint(self) -> Optional[CertaintyFixpoint]:
        """The attached incremental-certainty state, if enabled."""
        return self._fixpoint

    def fast_certainty(self, configuration: Configuration) -> Optional[bool]:
        """Certainty at ``configuration`` without a full evaluation.

        Resolves by exact fingerprint hit or by a lineage-matched read of the
        certainty fixpoint (:meth:`CertaintyFixpoint.peek` — never rebuilds);
        returns ``None`` when only a full (re-)evaluation could answer.  The
        query server uses this to decide which queries' certainty checks to
        ship to the pool.
        """
        key = ("certain", configuration.fingerprint())
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._metrics.incr("certainty.exact")
            return bool(cached)
        if self._fixpoint is not None:
            verdict = self._fixpoint.peek(configuration)
            if verdict is not None:
                self._metrics.incr("certainty.advanced")
                self._cache.put(key, bool(verdict))
                return bool(verdict)
        return None

    def cached_certainty(self, configuration: Configuration) -> Optional[bool]:
        """The memoized certainty at ``configuration``, or ``None`` on a miss.

        Unlike :meth:`is_certain` this never computes (and unlike
        :meth:`fast_certainty` it never consults the fixpoint).
        """
        cached = self._cache.get(("certain", configuration.fingerprint()), _MISSING)
        return None if cached is _MISSING else bool(cached)

    def adopt_certainty(self, configuration: Configuration, verdict: bool) -> None:
        """Record a certainty verdict computed outside the oracle (pool task)."""
        self._cache.put(("certain", configuration.fingerprint()), bool(verdict))

    def adopt_long_term_verdict(
        self,
        access: Access,
        configuration: Configuration,
        verdict: bool,
        *,
        witness: Optional[LtrWitness] = None,
    ) -> None:
        """Record an LTR verdict obtained outside the oracle's own search.

        Used by the batched screening layer: when two accesses' bindings are
        related by an automorphism of the configuration, one search decides
        both, and the second access adopts the verdict (and, positively, the
        translated witness) so later rounds can revalidate instead of
        searching.  The caller is responsible for the soundness of the
        transfer.
        """
        akey = access_key(access)
        self._metrics.incr("oracle.adopted")
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span("oracle", method=access.method.name) as span:
                span.annotate(outcome="adopted", relevant=verdict)
        self._record_ltr(
            akey,
            ("ltr", akey, configuration.fingerprint()),
            verdict,
            configuration,
            witness=witness,
            access=access,
        )

    def adopt_immediate_verdict(
        self, access: Access, configuration: Configuration, verdict: bool
    ) -> None:
        """Record an immediate-relevance verdict transferred by screening."""
        akey = access_key(access)
        self._metrics.incr("oracle.adopted")
        self._cache.put(("ir", akey, configuration.fingerprint()), verdict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RelevanceOracle(query={getattr(self._query, 'name', None)!r}, "
            f"hits={self._cache.hits}, misses={self._cache.misses})"
        )
