"""Pluggable storage backends for the persistent witness cache.

:class:`~repro.runtime.persist.PersistentWitnessCache` used to *be* its
storage: an append-only JSONL file, growing without bound, with concurrent
writer processes explicitly outside the contract.  This module splits the
byte-shuffling out behind a small backend protocol so the cache becomes a
pure decode/memo/seed layer and deployments pick the store that fits:

* :class:`JsonlWitnessStore` — the original plain-text format, now with
  **compaction** (offline via :meth:`~WitnessStore.compact` or the
  ``tools/compact_cache.py`` CLI, online via record-count/size triggers)
  that rewrites the file to the last record per ``(query, schema, access)``
  key.  Single writer process; human-greppable artifact.
* :class:`SqliteWitnessStore` — one row per key (``INSERT OR REPLACE``) in
  WAL mode with busy-timeout + retry, safe for **N concurrent server
  processes** sharing one store file.  A ``meta`` generation counter bumps
  on every effective write, so readers detect foreign writes cheaply.

Shared semantics every backend provides:

* ``append(payload)`` deduplicates against the **currently stored** record
  for the payload's key (by :func:`~repro.runtime.serialize.record_digest`),
  so re-recording the same witness on every warm run never grows the store —
  and an A→B→A witness churn correctly re-lands A as the live record.
* ``load_pair`` / ``load_all`` return raw payload dictionaries; decoding
  (and therefore *trust* — loaded paths are always revalidated) stays in the
  cache layer.  Records of a newer :data:`~repro.runtime.serialize.RECORD_VERSION`
  are preserved opaquely by compaction and skipped only at decode time.
* ``generation()`` returns a cheap token that changes whenever the store's
  content may have changed (including writes by *other* processes); the
  cache layer compares tokens to invalidate its per-pair memo.
* Corruption never raises out of a read: truncated JSONL tail lines, foreign
  garbage, or a corrupt SQLite file degrade to skipped/empty results counted
  under ``skipped_undecodable``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.runtime.serialize import record_digest

__all__ = [
    "CompactionResult",
    "JsonlWitnessStore",
    "SqliteWitnessStore",
    "WitnessStore",
    "open_witness_store",
]

#: File suffixes that ``backend="auto"`` maps to the SQLite backend.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")
#: Magic prefix of every SQLite database file.
_SQLITE_MAGIC = b"SQLite format 3"


@dataclass(frozen=True)
class CompactionResult:
    """What one :meth:`WitnessStore.compact` call accomplished."""

    backend: str
    records_before: int
    records_after: int
    bytes_before: int
    bytes_after: int


def _payload_key(payload: dict) -> Tuple[str, str, str]:
    """The (query token, schema token, access token) identity of a record."""
    return (str(payload["query"]), str(payload["schema"]), str(payload["access"]))


class WitnessStore:
    """Backend protocol for persisted witness records.

    Payloads are the JSON-ready dictionaries of
    :func:`~repro.runtime.serialize.encode_witness_record`; the store treats
    them as opaque rows keyed by ``(query, schema, access)`` tokens and never
    interprets the witness content itself.
    """

    #: Short backend name used in metrics/span tags (``jsonl`` / ``sqlite``).
    backend: str = "abstract"

    def load_pair(self, qtoken: str, stoken: str) -> Dict[str, dict]:
        """The live payloads for one (query, schema) pair, by access token."""
        raise NotImplementedError

    def load_all(self) -> Dict[Tuple[str, str], Dict[str, dict]]:
        """Every live payload, grouped by (query token, schema token)."""
        raise NotImplementedError

    def append(self, payload: dict) -> bool:
        """Store one record; False if it matched the currently stored one."""
        raise NotImplementedError

    def compact(self) -> CompactionResult:
        """Reclaim dead space; the live record set is unchanged."""
        raise NotImplementedError

    def generation(self) -> Hashable:
        """A token that differs whenever stored content may have changed."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """Operational counters (appends, dedup skips, compactions, ...)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def __enter__(self) -> "WitnessStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class JsonlWitnessStore(WitnessStore):
    """Append-only JSONL storage with last-record-per-key compaction.

    The on-disk format is unchanged from the pre-refactor cache — one JSON
    object per line, last record per key wins — so existing cache files load
    as-is.  New abilities:

    * **Tail refresh.**  The file is re-read incrementally from the last
      consumed byte offset, so records appended after construction (e.g. by
      an earlier oracle in the same process, or a compaction CLI between
      runs) are visible without a full reload.  A file that *shrank*
      (external compaction) triggers a full reload.
    * **Online compaction.**  When ``auto_compact`` is on and the file holds
      at least ``compact_min_records`` lines with more than
      ``compact_ratio`` lines per live record — or exceeds
      ``compact_max_bytes`` — an append triggers an in-place rewrite keeping
      only the last record per key (atomic: tmp file + fsync + rename).

    One writer process at a time; for concurrent writers use
    :class:`SqliteWitnessStore`.
    """

    backend = "jsonl"

    def __init__(
        self,
        path: str,
        *,
        auto_compact: bool = True,
        compact_min_records: int = 256,
        compact_ratio: float = 4.0,
        compact_max_bytes: Optional[int] = None,
    ) -> None:
        self._path = os.fspath(path)
        self._lock = threading.RLock()
        self._auto_compact = auto_compact
        self._compact_min_records = int(compact_min_records)
        self._compact_ratio = float(compact_ratio)
        self._compact_max_bytes = compact_max_bytes
        #: (query token, schema token) -> {access token: (digest, payload)}
        self._records: Dict[Tuple[str, str], Dict[str, Tuple[str, dict]]] = {}
        self._offset = 0  # bytes of the file already consumed
        self._line_count = 0  # total stored lines, live or superseded
        self._live_count = 0
        self._needs_newline = False  # file ends mid-line (truncated tail)
        self._loaded = False
        self._counters: Dict[str, int] = {
            "appends": 0,
            "dedup_skips": 0,
            "compactions": 0,
            "reloads": 0,
            "skipped_undecodable": 0,
        }

    @property
    def path(self) -> str:
        return self._path

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def _refresh(self) -> None:
        """Consume any file bytes not yet reflected in memory (lock held)."""
        try:
            size = os.stat(self._path).st_size
        except OSError:
            size = 0
        if size < self._offset:
            # The file shrank under us: an external compaction or an
            # operator reset.  Drop everything and reload from scratch.
            self._records = {}
            self._offset = 0
            self._line_count = 0
            self._live_count = 0
            self._needs_newline = False
            self._counters["reloads"] += 1
        if size == self._offset and self._loaded:
            return
        if os.path.exists(self._path):
            with open(self._path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
            self._offset += len(data)
            self._needs_newline = bool(data) and not data.endswith(b"\n")
            for raw in data.split(b"\n"):
                if not raw.strip():
                    continue
                self._line_count += 1
                try:
                    payload = json.loads(raw.decode("utf-8"))
                    key3 = _payload_key(payload)
                except Exception:
                    # Truncated tail (interrupted append) or foreign bytes:
                    # skip the line, never fail the load.
                    self._counters["skipped_undecodable"] += 1
                    continue
                pair = self._records.setdefault((key3[0], key3[1]), {})
                if key3[2] not in pair:
                    self._live_count += 1
                pair[key3[2]] = (record_digest(payload), payload)
        self._loaded = True

    def load_pair(self, qtoken: str, stoken: str) -> Dict[str, dict]:
        with self._lock:
            self._refresh()
            scoped = self._records.get((qtoken, stoken), {})
            return {atoken: payload for atoken, (_d, payload) in scoped.items()}

    def load_all(self) -> Dict[Tuple[str, str], Dict[str, dict]]:
        with self._lock:
            self._refresh()
            return {
                key: {atoken: payload for atoken, (_d, payload) in pair.items()}
                for key, pair in self._records.items()
            }

    def generation(self) -> Hashable:
        try:
            stat = os.stat(self._path)
        except OSError:
            return ("jsonl", -1, -1)
        return ("jsonl", stat.st_size, stat.st_mtime_ns)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, payload: dict) -> bool:
        key3 = _payload_key(payload)
        digest = record_digest(payload)
        with self._lock:
            self._refresh()
            pair = self._records.setdefault((key3[0], key3[1]), {})
            stored = pair.get(key3[2])
            if stored is not None and stored[0] == digest:
                self._counters["dedup_skips"] += 1
                return False
            line = json.dumps(payload, sort_keys=True).encode("utf-8")
            prefix = b"\n" if self._needs_newline else b""
            with open(self._path, "ab") as handle:
                handle.write(prefix + line + b"\n")
            self._offset += len(prefix) + len(line) + 1
            self._needs_newline = False
            self._line_count += 1
            if stored is None:
                self._live_count += 1
            pair[key3[2]] = (digest, payload)
            self._counters["appends"] += 1
            if self._auto_compact and self._should_compact():
                self._compact_locked()
            return True

    def _should_compact(self) -> bool:
        if self._line_count >= max(self._compact_min_records, 1):
            live = max(self._live_count, 1)
            if self._line_count / live > self._compact_ratio:
                return True
        if self._compact_max_bytes is not None:
            try:
                if os.stat(self._path).st_size > self._compact_max_bytes:
                    return self._line_count > self._live_count
            except OSError:
                pass
        return False

    def compact(self) -> CompactionResult:
        """Rewrite the file to the last record per key (atomic replace)."""
        with self._lock:
            self._refresh()
            return self._compact_locked()

    def _compact_locked(self) -> CompactionResult:
        try:
            bytes_before = os.stat(self._path).st_size
        except OSError:
            bytes_before = 0
        records_before = self._line_count
        tmp_path = self._path + ".compact.tmp"
        size = 0
        with open(tmp_path, "wb") as handle:
            for pair in self._records.values():
                for _digest, payload in pair.values():
                    line = json.dumps(payload, sort_keys=True).encode("utf-8")
                    handle.write(line + b"\n")
                    size += len(line) + 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self._path)
        self._offset = size
        self._line_count = self._live_count
        self._needs_newline = False
        self._counters["compactions"] += 1
        return CompactionResult(
            backend=self.backend,
            records_before=records_before,
            records_after=self._live_count,
            bytes_before=bytes_before,
            bytes_after=size,
        )

    def stats(self) -> Dict[str, object]:
        with self._lock:
            self._refresh()
            try:
                size = os.stat(self._path).st_size
            except OSError:
                size = 0
            merged: Dict[str, object] = dict(self._counters)
            merged["backend"] = self.backend
            merged["records"] = self._live_count
            merged["stored_lines"] = self._line_count
            merged["bytes"] = size
            return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonlWitnessStore({self._path!r})"


class SqliteWitnessStore(WitnessStore):
    """SQLite storage: one row per key, safe for concurrent processes.

    * **WAL mode** (readers never block the writer, writers never block
      readers) with ``synchronous=NORMAL`` — a crash can lose the last
      transactions but never corrupts the store, and a lost witness record
      only costs a future fresh search.
    * **Upsert per key** (``INSERT OR REPLACE``), so the store is always
      compact: at most one row per ``(query, schema, access)``.
    * **Busy-timeout + retry.**  Every statement runs under SQLite's busy
      timeout, and lock/busy errors are retried with exponential backoff, so
      N server processes hammering one store degrade to queueing, not
      exceptions.
    * **Generation counter.**  A ``meta`` row increments on every effective
      write *in the same transaction*, giving readers in other processes a
      single-integer change detector.
    * **Corruption tolerance.**  A file that is not a database (or a
      hopelessly corrupt one) marks the store broken: reads return empty,
      writes no-op, ``skipped_undecodable`` counts the failures — callers
      never see an exception from a bad store file.
    """

    backend = "sqlite"

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS witnesses (
        query   TEXT NOT NULL,
        schema  TEXT NOT NULL,
        access  TEXT NOT NULL,
        digest  TEXT NOT NULL,
        payload TEXT NOT NULL,
        PRIMARY KEY (query, schema, access)
    );
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value INTEGER NOT NULL
    );
    INSERT OR IGNORE INTO meta (key, value) VALUES ('generation', 0);
    """

    def __init__(
        self,
        path: str,
        *,
        busy_timeout: float = 5.0,
        max_retries: int = 6,
    ) -> None:
        self._path = os.fspath(path)
        self._lock = threading.RLock()
        self._busy_timeout = float(busy_timeout)
        self._max_retries = int(max_retries)
        self._conn: Optional[sqlite3.Connection] = None
        self._broken = False
        self._counters: Dict[str, int] = {
            "appends": 0,
            "dedup_skips": 0,
            "compactions": 0,
            "reloads": 0,
            "skipped_undecodable": 0,
            "retries": 0,
        }

    @property
    def path(self) -> str:
        return self._path

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def _connect(self) -> Optional[sqlite3.Connection]:
        """Open (once) and configure the connection; None if broken."""
        if self._broken:
            return None
        if self._conn is not None:
            return self._conn
        try:
            conn = sqlite3.connect(
                self._path,
                timeout=self._busy_timeout,
                check_same_thread=False,
            )
            conn.execute(f"PRAGMA busy_timeout = {int(self._busy_timeout * 1000)}")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            conn.executescript(self._SCHEMA)
            conn.commit()
        except sqlite3.DatabaseError:
            # Not a database / unrecoverably corrupt: degrade, never raise.
            self._broken = True
            self._counters["skipped_undecodable"] += 1
            return None
        self._conn = conn
        return conn

    def _run(self, action, default):
        """Run ``action(conn)`` with lock/busy retry; ``default`` on failure."""
        with self._lock:
            delay = 0.01
            for attempt in range(self._max_retries + 1):
                conn = self._connect()
                if conn is None:
                    return default
                try:
                    return action(conn)
                except sqlite3.OperationalError as exc:
                    message = str(exc).lower()
                    transient = "locked" in message or "busy" in message
                    if not transient or attempt == self._max_retries:
                        # Persistent contention: surface as a skipped
                        # operation, not an exception — callers treat the
                        # store as best-effort.
                        self._counters["skipped_undecodable"] += 1
                        return default
                    self._counters["retries"] += 1
                    try:
                        conn.rollback()
                    except sqlite3.Error:
                        pass
                    time.sleep(delay)
                    delay = min(delay * 2, 0.25)
                except sqlite3.DatabaseError:
                    self._broken = True
                    self._counters["skipped_undecodable"] += 1
                    self.close()
                    return default
            return default

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def _decode_rows(self, rows, grouped: bool):
        if grouped:
            out: Dict[Tuple[str, str], Dict[str, dict]] = {}
            for qtoken, stoken, atoken, payload_text in rows:
                try:
                    payload = json.loads(payload_text)
                except Exception:
                    self._counters["skipped_undecodable"] += 1
                    continue
                out.setdefault((qtoken, stoken), {})[atoken] = payload
            return out
        flat: Dict[str, dict] = {}
        for atoken, payload_text in rows:
            try:
                flat[atoken] = json.loads(payload_text)
            except Exception:
                self._counters["skipped_undecodable"] += 1
        return flat

    def load_pair(self, qtoken: str, stoken: str) -> Dict[str, dict]:
        def action(conn):
            rows = conn.execute(
                "SELECT access, payload FROM witnesses"
                " WHERE query = ? AND schema = ?",
                (qtoken, stoken),
            ).fetchall()
            return self._decode_rows(rows, grouped=False)

        return self._run(action, {})

    def load_all(self) -> Dict[Tuple[str, str], Dict[str, dict]]:
        def action(conn):
            rows = conn.execute(
                "SELECT query, schema, access, payload FROM witnesses"
            ).fetchall()
            return self._decode_rows(rows, grouped=True)

        return self._run(action, {})

    def generation(self) -> Hashable:
        def action(conn):
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'generation'"
            ).fetchone()
            return ("sqlite", int(row[0]) if row else 0)

        return self._run(action, ("sqlite", -1))

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, payload: dict) -> bool:
        key3 = _payload_key(payload)
        digest = record_digest(payload)
        text = json.dumps(payload, sort_keys=True)

        def action(conn):
            with conn:  # one transaction: read-check, upsert, bump
                row = conn.execute(
                    "SELECT digest FROM witnesses"
                    " WHERE query = ? AND schema = ? AND access = ?",
                    key3,
                ).fetchone()
                if row is not None and row[0] == digest:
                    self._counters["dedup_skips"] += 1
                    return False
                conn.execute(
                    "INSERT OR REPLACE INTO witnesses"
                    " (query, schema, access, digest, payload)"
                    " VALUES (?, ?, ?, ?, ?)",
                    key3 + (digest, text),
                )
                conn.execute(
                    "UPDATE meta SET value = value + 1 WHERE key = 'generation'"
                )
                self._counters["appends"] += 1
                return True

        return self._run(action, False)

    def compact(self) -> CompactionResult:
        """Checkpoint the WAL and vacuum; the row set is already compact."""

        def action(conn):
            try:
                bytes_before = os.stat(self._path).st_size
            except OSError:
                bytes_before = 0
            records = conn.execute("SELECT COUNT(*) FROM witnesses").fetchone()[0]
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            # VACUUM cannot run inside a transaction; sqlite3 autocommit is
            # off only while a transaction is open, and none is here.
            conn.execute("VACUUM")
            try:
                bytes_after = os.stat(self._path).st_size
            except OSError:
                bytes_after = 0
            self._counters["compactions"] += 1
            return CompactionResult(
                backend=self.backend,
                records_before=records,
                records_after=records,
                bytes_before=bytes_before,
                bytes_after=bytes_after,
            )

        default = CompactionResult(self.backend, 0, 0, 0, 0)
        return self._run(action, default)

    def stats(self) -> Dict[str, object]:
        def action(conn):
            return conn.execute("SELECT COUNT(*) FROM witnesses").fetchone()[0]

        records = self._run(action, 0)
        try:
            size = os.stat(self._path).st_size
        except OSError:
            size = 0
        with self._lock:
            merged: Dict[str, object] = dict(self._counters)
        merged["backend"] = self.backend
        merged["records"] = records
        merged["bytes"] = size
        merged["broken"] = self._broken
        return merged

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:  # pragma: no cover - defensive
                    pass
                self._conn = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SqliteWitnessStore({self._path!r})"


def open_witness_store(path: str, backend: str = "auto", **options) -> WitnessStore:
    """Open a witness store, inferring the backend when asked.

    ``backend="auto"`` resolves to SQLite when the path carries a database
    suffix (``.sqlite`` / ``.sqlite3`` / ``.db``) or the file already exists
    and starts with the SQLite magic bytes; everything else is JSONL — so
    pre-refactor cache paths keep working unchanged.
    """
    path = os.fspath(path)
    resolved = backend
    if resolved == "auto":
        if path.lower().endswith(_SQLITE_SUFFIXES):
            resolved = "sqlite"
        else:
            resolved = "jsonl"
            try:
                with open(path, "rb") as handle:
                    if handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC:
                        resolved = "sqlite"
            except OSError:
                pass
    if resolved == "jsonl":
        return JsonlWitnessStore(path, **options)
    if resolved == "sqlite":
        return SqliteWitnessStore(path, **options)
    raise ValueError(
        f"unknown witness store backend {backend!r}"
        " (expected 'auto', 'jsonl', or 'sqlite')"
    )
