"""The network-facing answering service: HTTP in, shared rounds underneath.

Everything below this module is an in-process library — PR 5's
:class:`~repro.runtime.server.QueryServer` answers batches, PR 6's exporters
render its telemetry — but nothing accepted traffic.  :class:`AnsweringService`
is that front end: a stdlib-only asyncio HTTP server that

* accepts query submissions (``POST /queries``, single or batch, as query
  text parsed against the mediator's schema);
* **coalesces** compatible concurrent submissions into one shared answering
  round — submissions that arrive while a batch is running queue up and run
  as the *next* batch, so an access wanted by several clients is performed
  once (the whole point of the multi-query runtime);
* resolves per-query outcomes as their batch completes, served three ways:
  synchronously (``?wait=1``), as a chunked NDJSON stream (``?stream=1``,
  one line per outcome as it resolves), or by polling
  (``GET /queries/<id>``);
* serves the observability surface: ``GET /metrics`` returns
  :func:`repro.runtime.export.prometheus_text` verbatim, and
  ``GET /queries/<id>/trace`` the
  :func:`repro.runtime.export.explain_trace` report of the batch that
  answered the query;
* enforces **admission control** (:mod:`repro.runtime.admission`): per-client
  token-bucket rate limits and in-flight quotas answer 429 with an honest
  ``Retry-After``; a full submission queue or a saturated
  :class:`~repro.runtime.procpool.ProcessRelevancePool` answers 503; and
  every admitted query carries the service's round/access fairness budget
  into :meth:`QueryServer.answer`, so one dominating query of a coalesced
  batch retires with ``rounds_exhausted`` instead of starving the rest;
* **drains gracefully**: :meth:`AnsweringService.aclose` (and
  :meth:`ServiceHandle.shutdown`) stops admitting (503), lets queued and
  running batches finish, then closes the listener.

Threading model: the event loop owns sockets, parsing, admission, and the
record table; the blocking :meth:`QueryServer.answer` calls run on one
dedicated worker thread (batches are serialized — the answering runtime
shares one mediator configuration and is not reentrant).  HTTP handling is
deliberately minimal — HTTP/1.1, ``Connection: close``, chunked transfer
only for the outcome stream — because the interesting concurrency lives in
the answering rounds, not the framing.

Synchronous callers (tests, the demo CLI, operators embedding the service)
use :func:`serve_in_background`, which runs the event loop on a daemon
thread and returns a :class:`ServiceHandle` with the bound port and a
blocking ``shutdown``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs

from repro.exceptions import QueryError, SchemaError
from repro.queries import parse_query
from repro.runtime.admission import AdmissionController
from repro.runtime.export import explain_trace, prometheus_text
from repro.runtime.server import QueryServer
from repro.runtime.tracing import Tracer, activate_tracer

__all__ = ["AnsweringService", "ServiceHandle", "serve_in_background"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Submission states, in order of a healthy lifecycle.  ``degraded`` is a
#: *resolved* state: the query terminated with sound answers, but faults
#: (failed accesses or an expired deadline) may have kept it from the
#: complete answer set — clients see HTTP 206 instead of 200.
_QUEUED, _ANSWERING, _DONE, _FAILED = "queued", "answering", "done", "failed"
_DEGRADED = "degraded"


class _BadRequest(Exception):
    """Malformed HTTP or JSON; rendered as a 400/413 response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _Record:
    """One submitted query's server-side state, polled via its id."""

    __slots__ = (
        "id",
        "client",
        "text",
        "state",
        "outcome",
        "trace",
        "error",
        "future",
        "submitted_at",
    )

    def __init__(self, record_id: str, client: str, text: str, future) -> None:
        self.id = record_id
        self.client = client
        self.text = text
        self.state = _QUEUED
        self.outcome: Optional[Dict[str, object]] = None
        self.trace: Optional[str] = None
        self.error: Optional[str] = None
        self.future = future
        self.submitted_at = time.time()


class _Submission:
    """One POST's worth of queries, bound for the next coalesced batch."""

    __slots__ = ("records", "queries", "client")

    def __init__(self, records: List[_Record], queries: List[object], client: str):
        self.records = records
        self.queries = queries
        self.client = client


class AnsweringService:
    """An asyncio HTTP front end over one :class:`QueryServer`.

    Parameters
    ----------
    server:
        The answering runtime; its mediator's schema parses submitted query
        text, and its :attr:`~QueryServer.metrics` sink backs ``/metrics``.
        The service does not close it — the owner does.
    admission:
        The :class:`AdmissionController`; defaults to one with no per-client
        limits and a 256-query submission queue.  Pass your own to set
        rate/burst/quota/budget policy (share the server's metrics sink so
        ``/metrics`` shows admission and answering side by side).
    host / port:
        Listen address; port 0 picks a free port (read it from
        :attr:`port` after :meth:`start`).
    trace_requests:
        Record every batch under a fresh :class:`Tracer` and keep each
        query's ``explain_trace`` report for ``GET /queries/<id>/trace``.
        On by default (the tracer's overhead is bounded by the PR 6 smoke);
        turn off to shed the per-batch span tree on hot deployments.
    max_rounds:
        Forwarded to every :meth:`QueryServer.answer` call.
    max_batch_queries:
        Coalescing bound: a dispatched batch stops absorbing queued
        submissions beyond this many queries.
    max_records:
        Bound on the finished-query table behind ``GET /queries/<id>``
        (oldest resolved records are evicted first).
    max_body_bytes:
        Request-body bound; larger submissions answer 413.
    """

    def __init__(
        self,
        server: QueryServer,
        *,
        admission: Optional[AdmissionController] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        trace_requests: bool = True,
        max_rounds: int = 50,
        max_batch_queries: int = 64,
        max_records: int = 1024,
        max_body_bytes: int = 1 << 20,
    ) -> None:
        self._server = server
        self._metrics = server.metrics
        self._admission = (
            admission
            if admission is not None
            else AdmissionController(pool=server.pool, metrics=self._metrics)
        )
        self._host = host
        self._port = port
        self._trace_requests = trace_requests
        self._max_rounds = max_rounds
        self._max_batch_queries = max(1, max_batch_queries)
        self._max_records = max(1, max_records)
        self._max_body = max_body_bytes
        self._records: "OrderedDict[str, _Record]" = OrderedDict()
        self._ids = itertools.count(1)
        # Created in start(): asyncio.Queue binds to the running loop on
        # Python 3.9, and the service may be constructed on another thread.
        self._queue: Optional["asyncio.Queue[Optional[_Submission]]"] = None
        self._http: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        # One worker thread: answer() calls share the mediator configuration
        # and the server-lifetime executor, so batches must be serialized.
        self._answering = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-answering"
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def admission(self) -> AdmissionController:
        """The admission controller making this service's 429/503 calls."""
        return self._admission

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._http is None or not self._http.sockets:
            raise RuntimeError("service is not started")
        return self._http.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listener and start the batch dispatcher."""
        if self._http is not None:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_batches()
        )
        self._http = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._port
        )

    async def aclose(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain and shut down (idempotent).

        With ``drain`` (the default) the admission controller first flips
        to rejecting new submissions with 503, then the service waits — up
        to ``timeout`` seconds — for every admitted query to resolve, so
        no accepted work is dropped.  Without it, queued submissions are
        failed immediately.
        """
        if self._closed or self._queue is None:
            self._closed = True
            return
        self._closed = True
        self._admission.begin_drain()
        if drain:
            deadline = time.monotonic() + timeout
            while self._admission.inflight > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
        await self._queue.put(None)
        if self._dispatcher is not None:
            await self._dispatcher
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
        self._answering.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Batch dispatch (event loop side + worker thread side)
    # ------------------------------------------------------------------ #
    async def _dispatch_batches(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                self._fail_queued("service shut down before answering")
                return
            batch = [first]
            total = len(first.queries)
            # Coalesce whatever else is already waiting: submissions that
            # arrived during the previous batch share the next one's rounds.
            while total < self._max_batch_queries:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    await self._queue.put(None)
                    break
                batch.append(extra)
                total += len(extra.queries)
            await self._run_batch(loop, batch)

    async def _run_batch(self, loop, batch: List[_Submission]) -> None:
        queries: List[object] = []
        records: List[_Record] = []
        for submission in batch:
            queries.extend(submission.queries)
            records.extend(submission.records)
            for record in submission.records:
                record.state = _ANSWERING
        self._admission.started(len(queries))
        round_budgets, access_budgets = self._admission.budgets_for(len(queries))
        deadlines = self._admission.deadlines_for(len(queries))
        tracer = Tracer() if self._trace_requests else None
        self._metrics.incr("service.batches")
        self._metrics.incr("service.batched_queries", len(queries))
        try:
            result = await loop.run_in_executor(
                self._answering,
                self._answer_blocking,
                queries,
                round_budgets,
                access_budgets,
                deadlines,
                tracer,
            )
        except Exception as exc:  # answering failed: fail the whole batch
            self._metrics.incr("service.batch_failures")
            for submission in batch:
                for record in submission.records:
                    record.state = _FAILED
                    record.error = f"{type(exc).__name__}: {exc}"
                    if not record.future.done():
                        record.future.set_result(record)
                self._admission.resolved(submission.client, len(submission.records))
            return
        report = explain_trace(tracer.spans()) if tracer is not None else None
        for record, outcome in zip(records, result.outcomes):
            record.outcome = _outcome_dict(outcome)
            record.trace = report
            if outcome.degraded:
                record.state = _DEGRADED
                self._metrics.incr("service.degraded_queries")
            else:
                record.state = _DONE
            if not record.future.done():
                record.future.set_result(record)
        for submission in batch:
            self._admission.resolved(submission.client, len(submission.records))

    def _answer_blocking(
        self, queries, round_budgets, access_budgets, deadlines, tracer
    ):
        """The worker-thread body: one shared-rounds answer call."""
        if tracer is None:
            return self._server.answer(
                queries,
                max_rounds=self._max_rounds,
                round_budgets=round_budgets,
                access_budgets=access_budgets,
                deadlines=deadlines,
            )
        with activate_tracer(tracer):
            return self._server.answer(
                queries,
                max_rounds=self._max_rounds,
                round_budgets=round_budgets,
                access_budgets=access_budgets,
                deadlines=deadlines,
            )

    def _fail_queued(self, message: str) -> None:
        """Fail every submission still sitting in the queue (no drain)."""
        while True:
            try:
                submission = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if submission is None:
                continue
            for record in submission.records:
                record.state = _FAILED
                record.error = message
                if not record.future.done():
                    record.future.set_result(record)
            self._admission.started(len(submission.records))
            self._admission.resolved(submission.client, len(submission.records))

    # ------------------------------------------------------------------ #
    # HTTP handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, params, headers, body = request
            self._metrics.incr("service.http_requests")
            try:
                await self._route(writer, method, path, params, headers, body)
            except _BadRequest as exc:
                await self._send_json(
                    writer, exc.status, {"error": exc.message}
                )
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        except Exception as exc:  # last-ditch: never kill the loop
            self._metrics.incr("service.http_errors")
            try:
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest(400, f"bad Content-Length: {length_text!r}")
        if length > self._max_body:
            raise _BadRequest(413, f"body exceeds {self._max_body} bytes")
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = target.partition("?")
        params = {k: v[-1] for k, v in parse_qs(query_string).items()}
        return method.upper(), path, params, headers, body

    async def _route(self, writer, method, path, params, headers, body) -> None:
        if path == "/metrics" and method == "GET":
            await self._send(
                writer,
                200,
                prometheus_text(self._metrics).encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/healthz" and method == "GET":
            health = {
                "status": "draining" if self._admission.draining else "ok",
                "queued": self._admission.queued,
                "inflight": self._admission.inflight,
            }
            persist = self._server.persist
            if persist is not None:
                store_stats = persist.store.stats()
                health["persistence"] = {
                    "backend": persist.backend,
                    "records": store_stats.get("records", 0),
                    "bytes": store_stats.get("bytes", 0),
                }
            breakers = self._server.mediator.breakers
            if breakers is not None:
                health["breakers"] = dict(breakers.states())
            await self._send_json(writer, 200, health)
            return
        if path == "/queries" and method == "POST":
            await self._handle_submit(writer, params, headers, body)
            return
        if path.startswith("/queries/") and method == "GET":
            rest = path[len("/queries/") :]
            if rest.endswith("/trace"):
                await self._handle_trace(writer, rest[: -len("/trace")])
            else:
                await self._handle_poll(writer, rest)
            return
        if path in ("/metrics", "/healthz", "/queries") or path.startswith(
            "/queries/"
        ):
            await self._send_json(writer, 405, {"error": f"{method} not allowed"})
            return
        await self._send_json(writer, 404, {"error": f"no route for {path}"})

    async def _handle_submit(self, writer, params, headers, body) -> None:
        document = _parse_json_body(body)
        texts = document.get("queries")
        if texts is None:
            single = document.get("query")
            if single is None:
                raise _BadRequest(400, "body must carry 'query' or 'queries'")
            texts = [single]
        if not isinstance(texts, list) or not texts:
            raise _BadRequest(400, "'queries' must be a non-empty list")
        if not all(isinstance(text, str) for text in texts):
            raise _BadRequest(400, "queries must be strings of query text")
        client = str(
            document.get("client") or headers.get("x-client") or "anonymous"
        )
        schema = self._server.mediator.schema
        queries = []
        for position, text in enumerate(texts):
            try:
                queries.append(parse_query(schema, text))
            except (QueryError, SchemaError) as exc:
                raise _BadRequest(400, f"query {position} does not parse: {exc}")

        decision = self._admission.admit(client, len(queries))
        if not decision.admitted:
            retry_after = max(1, int(-(-decision.retry_after // 1)))
            await self._send_json(
                writer,
                decision.status,
                {"error": decision.reason, "retry_after_s": decision.retry_after},
                extra_headers=(("Retry-After", str(retry_after)),),
            )
            return

        loop = asyncio.get_running_loop()
        records = []
        for text in texts:
            record = _Record(
                f"q{next(self._ids):06d}", client, text, loop.create_future()
            )
            records.append(record)
            self._remember(record)
        await self._queue.put(_Submission(records, queries, client))

        stream = params.get("stream") in ("1", "true")
        wait = params.get("wait") in ("1", "true") or bool(document.get("wait"))
        if stream:
            await self._stream_outcomes(writer, records)
        elif wait:
            await asyncio.gather(*(record.future for record in records))
            # 206 tells a synchronous client at the HTTP layer that some
            # answer set is a sound subset (degraded), not the full answer.
            status = (
                206
                if any(record.state == _DEGRADED for record in records)
                else 200
            )
            await self._send_json(
                writer, status, {"queries": [_record_dict(r) for r in records]}
            )
        else:
            await self._send_json(
                writer,
                202,
                {
                    "ids": [record.id for record in records],
                    "status": _QUEUED,
                    "poll": [f"/queries/{record.id}" for record in records],
                },
            )

    async def _stream_outcomes(self, writer, records: List[_Record]) -> None:
        """Chunked NDJSON: one line per outcome, flushed as each resolves."""
        self._metrics.incr("service.http_200")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        pending = {record.future: record for record in records}
        while pending:
            done, _ = await asyncio.wait(
                pending.keys(), return_when=asyncio.FIRST_COMPLETED
            )
            for future in done:
                record = pending.pop(future)
                line = json.dumps(_record_dict(record), default=str) + "\n"
                data = line.encode("utf-8")
                writer.write(f"{len(data):x}\r\n".encode("latin-1"))
                writer.write(data)
                writer.write(b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _handle_poll(self, writer, record_id: str) -> None:
        record = self._records.get(record_id)
        if record is None:
            await self._send_json(
                writer, 404, {"error": f"unknown query id {record_id!r}"}
            )
            return
        await self._send_json(writer, 200, _record_dict(record))

    async def _handle_trace(self, writer, record_id: str) -> None:
        record = self._records.get(record_id)
        if record is None:
            await self._send_json(
                writer, 404, {"error": f"unknown query id {record_id!r}"}
            )
            return
        if record.trace is None:
            await self._send_json(
                writer,
                404,
                {
                    "error": "no trace recorded",
                    "state": record.state,
                    "tracing": self._trace_requests,
                },
            )
            return
        await self._send(
            writer, 200, record.trace.encode("utf-8"), "text/plain; charset=utf-8"
        )

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _remember(self, record: _Record) -> None:
        self._records[record.id] = record
        while len(self._records) > self._max_records:
            # Evict the oldest *resolved* record; if everything is still
            # open (pathological max_records), evict the oldest outright.
            for record_id, existing in self._records.items():
                if existing.state in (_DONE, _DEGRADED, _FAILED):
                    del self._records[record_id]
                    break
            else:
                self._records.popitem(last=False)

    async def _send_json(
        self,
        writer,
        status: int,
        document: Dict[str, object],
        *,
        extra_headers: Sequence[Tuple[str, str]] = (),
    ) -> None:
        body = json.dumps(document, default=str).encode("utf-8")
        await self._send(
            writer, status, body, "application/json", extra_headers=extra_headers
        )

    async def _send(
        self,
        writer,
        status: int,
        body: bytes,
        content_type: str,
        *,
        extra_headers: Sequence[Tuple[str, str]] = (),
    ) -> None:
        self._metrics.incr(f"service.http_{status}")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()


def _parse_json_body(body: bytes) -> Dict[str, object]:
    if not body:
        raise _BadRequest(400, "empty body; send a JSON object")
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _BadRequest(400, f"body is not valid JSON: {exc}")
    if not isinstance(document, dict):
        raise _BadRequest(400, "body must be a JSON object")
    return document


def _outcome_dict(outcome) -> Dict[str, object]:
    """A QueryOutcome as a JSON-ready dict (constants are str/int/float)."""
    return {
        "boolean": outcome.boolean_answer,
        "answers": [list(row) for row in sorted(outcome.answers, key=repr)],
        "certain": outcome.certain,
        "rounds_exhausted": outcome.rounds_exhausted,
        "relevance_checks": outcome.relevance_checks,
        "rounds_used": outcome.rounds_used,
        "accesses_charged": outcome.accesses_charged,
        "degraded": outcome.degraded,
        "failed_accesses": [
            [method, list(binding)] for method, binding in outcome.failed_accesses
        ],
        "attempts": outcome.attempts,
    }


def _record_dict(record: _Record) -> Dict[str, object]:
    document: Dict[str, object] = {
        "id": record.id,
        "client": record.client,
        "query": record.text,
        "state": record.state,
    }
    if record.outcome is not None:
        document["outcome"] = record.outcome
    if record.error is not None:
        document["error"] = record.error
    return document


# --------------------------------------------------------------------------- #
# Background-thread harness for synchronous callers
# --------------------------------------------------------------------------- #
class ServiceHandle:
    """A started service on a background event-loop thread.

    ``base_url`` is ready for ``urllib`` / ``curl``; ``shutdown`` drains and
    joins.  Use as a context manager for tests and scripts.
    """

    def __init__(self, service: AnsweringService, loop, thread) -> None:
        self._service = service
        self._loop = loop
        self._thread = thread
        self._down = False

    @property
    def service(self) -> AnsweringService:
        """The underlying service (its admission controller, records, …)."""
        return self._service

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self._service.port

    @property
    def base_url(self) -> str:
        """``http://host:port`` for this service."""
        return f"http://127.0.0.1:{self.port}"

    def drain(self, timeout: float = 30.0) -> None:
        """Stop admitting and wait for in-flight queries (blocking)."""
        asyncio.run_coroutine_threadsafe(
            self._service.aclose(drain=True, timeout=timeout), self._loop
        ).result(timeout + 5.0)

    def shutdown(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain (optionally), stop the loop, and join its thread."""
        if self._down:
            return
        self._down = True
        asyncio.run_coroutine_threadsafe(
            self._service.aclose(drain=drain, timeout=timeout), self._loop
        ).result(timeout + 5.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()


def serve_in_background(server: QueryServer, **service_kwargs) -> ServiceHandle:
    """Start an :class:`AnsweringService` on a daemon thread; block until bound.

    Keyword arguments go to the :class:`AnsweringService` constructor.  The
    returned handle's :meth:`~ServiceHandle.shutdown` drains and joins the
    loop; as a context manager it does so on exit.
    """
    started = threading.Event()
    holder: Dict[str, object] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = AnsweringService(server, **service_kwargs)

        async def boot() -> None:
            await service.start()

        loop.run_until_complete(boot())
        holder["service"] = service
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("service failed to start within 10s")
    return ServiceHandle(holder["service"], holder["loop"], thread)
