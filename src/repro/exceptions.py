"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single exception type at API boundaries.  More specific subclasses
exist for schema validation, query construction, access semantics, and search
budget exhaustion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A schema, relation, attribute, or access method is ill-formed."""


class QueryError(ReproError):
    """A query is syntactically or semantically ill-formed.

    Examples: an atom whose arity does not match its relation, a shared
    variable used at attributes with different abstract domains, or a parse
    failure in :func:`repro.queries.parser.parse_query`.
    """


class AccessError(ReproError):
    """An access violates the access-method semantics of the paper.

    Raised, for instance, when a dependent access is attempted with a binding
    value that is not in the active domain of the current configuration, or
    when a response contains tuples that do not match the binding.
    """


class ConsistencyError(ReproError):
    """A configuration is not consistent with the instance it should reflect."""


class SearchBudgetExceeded(ReproError):
    """A bounded decision procedure exhausted its search budget.

    The containment and long-term relevance problems have exponential witness
    bounds; the procedures in :mod:`repro.core` accept explicit budgets and
    raise this exception (rather than silently answering) when a definitive
    answer could not be established within the budget.
    """

    def __init__(self, message: str, *, explored: int = 0) -> None:
        super().__init__(message)
        self.explored = explored
