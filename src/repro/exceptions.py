"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single exception type at API boundaries.  More specific subclasses
exist for schema validation, query construction, access semantics, and search
budget exhaustion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A schema, relation, attribute, or access method is ill-formed."""


class QueryError(ReproError):
    """A query is syntactically or semantically ill-formed.

    Examples: an atom whose arity does not match its relation, a shared
    variable used at attributes with different abstract domains, or a parse
    failure in :func:`repro.queries.parser.parse_query`.
    """


class AccessError(ReproError):
    """An access violates the access-method semantics of the paper.

    Raised, for instance, when a dependent access is attempted with a binding
    value that is not in the active domain of the current configuration, or
    when a response contains tuples that do not match the binding.

    When raised out of a batch (``Mediator.perform_many``), the error carries
    the failing :class:`~repro.sources.accesses.Access` in ``access``, the
    ``(access, duration)`` pairs merged before the failure in ``timings``, and
    the number of source-call attempts spent on the failing access in
    ``attempts``, so callers and spans can report *which* access failed and
    what the batch had already accomplished.
    """

    access = None
    timings = ()
    attempts = 1


class TransientAccessError(AccessError):
    """A source failed in a way that is expected to clear on retry.

    The simulated analogue of a dropped connection, a 5xx from a flaky
    replica, or a brief overload.  :class:`repro.runtime.retry.RetryPolicy`
    classifies this (and :class:`MalformedResponseError`) as retryable.
    """


class MalformedResponseError(AccessError):
    """A source returned bytes that do not parse as a well-formed response.

    Modeled as retryable: a garbled payload from a proxy or a truncated
    stream is usually transient, and a retry reaches a healthy replica.
    """


class CircuitOpenError(AccessError):
    """An access was rejected without calling the source: its breaker is open.

    Raised by the resilient access path when the per-source
    :class:`~repro.runtime.retry.CircuitBreaker` has seen too many
    consecutive failures and is failing fast instead of queueing doomed work.
    Not retryable within the batch; the breaker's reset timeout governs when
    the source is probed again.
    """


class DeadlineExceeded(ReproError):
    """A per-query or per-batch deadline expired before the work completed.

    In-flight accesses abandoned at the deadline are reported with this
    error; they are never merged into the configuration, so the degraded
    answer stays sound (computed only from facts actually retrieved).
    """


class ConsistencyError(ReproError):
    """A configuration is not consistent with the instance it should reflect."""


class SearchBudgetExceeded(ReproError):
    """A bounded decision procedure exhausted its search budget.

    The containment and long-term relevance problems have exponential witness
    bounds; the procedures in :mod:`repro.core` accept explicit budgets and
    raise this exception (rather than silently answering) when a definitive
    answer could not be established within the budget.
    """

    def __init__(self, message: str, *, explored: int = 0) -> None:
        super().__init__(message)
        self.explored = explored
