"""Schemas: collections of relations together with their access methods."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import SchemaError
from repro.schema.access import AccessMethod
from repro.schema.domains import AbstractDomain, DomainRegistry
from repro.schema.relations import Attribute, Relation

__all__ = ["Schema", "SchemaBuilder"]


class Schema:
    """A relational schema with access methods (``Sch`` and ``ACS`` of the paper).

    A schema holds a set of relations and a set of access methods over them.
    A relation may have zero, one, or several access methods.  Relations with
    no access method are *fixed*: no new facts about them can ever be learned,
    so their content is exactly that of the initial configuration.
    """

    def __init__(
        self,
        relations: Iterable[Relation],
        access_methods: Iterable[AccessMethod] = (),
    ) -> None:
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation name {relation.name!r}")
            self._relations[relation.name] = relation
        self._methods: Dict[str, AccessMethod] = {}
        self._methods_by_relation: Dict[str, List[AccessMethod]] = {
            name: [] for name in self._relations
        }
        for method in access_methods:
            self.add_access_method(method)

    # ------------------------------------------------------------------ #
    # Relations
    # ------------------------------------------------------------------ #
    @property
    def relations(self) -> Tuple[Relation, ...]:
        """All relations of the schema, in declaration order."""
        return tuple(self._relations.values())

    def relation(self, name: str) -> Relation:
        """Return the relation called ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        """Whether a relation called ``name`` exists."""
        return name in self._relations

    # ------------------------------------------------------------------ #
    # Access methods
    # ------------------------------------------------------------------ #
    def add_access_method(self, method: AccessMethod) -> None:
        """Register an access method (its relation must be in the schema)."""
        if method.relation.name not in self._relations:
            raise SchemaError(
                f"access method {method.name!r} refers to relation "
                f"{method.relation.name!r} which is not in the schema"
            )
        if self._relations[method.relation.name] is not method.relation and (
            self._relations[method.relation.name] != method.relation
        ):
            raise SchemaError(
                f"access method {method.name!r} refers to a relation object that "
                f"differs from the schema's {method.relation.name!r}"
            )
        if method.name in self._methods:
            raise SchemaError(f"duplicate access method name {method.name!r}")
        self._methods[method.name] = method
        self._methods_by_relation[method.relation.name].append(method)

    @property
    def access_methods(self) -> Tuple[AccessMethod, ...]:
        """All access methods, in declaration order."""
        return tuple(self._methods.values())

    def access_method(self, name: str) -> AccessMethod:
        """Return the access method called ``name``."""
        try:
            return self._methods[name]
        except KeyError:
            raise SchemaError(f"unknown access method {name!r}") from None

    def methods_for(self, relation: Union[str, Relation]) -> Tuple[AccessMethod, ...]:
        """All access methods whose relation is ``relation``."""
        name = relation if isinstance(relation, str) else relation.name
        if name not in self._relations:
            raise SchemaError(f"unknown relation {name!r}")
        return tuple(self._methods_by_relation[name])

    def has_access(self, relation: Union[str, Relation]) -> bool:
        """Whether the relation has at least one access method."""
        return bool(self.methods_for(relation))

    def accessible_relations(self) -> Tuple[Relation, ...]:
        """Relations that have at least one access method."""
        return tuple(
            relation for relation in self.relations if self.has_access(relation)
        )

    def fixed_relations(self) -> Tuple[Relation, ...]:
        """Relations without any access method (their content never grows)."""
        return tuple(
            relation for relation in self.relations if not self.has_access(relation)
        )

    # ------------------------------------------------------------------ #
    # Derived properties used by the decision procedures
    # ------------------------------------------------------------------ #
    def all_independent(self) -> bool:
        """Whether every access method of the schema is independent."""
        return all(not method.dependent for method in self.access_methods)

    def all_dependent(self) -> bool:
        """Whether every access method of the schema is dependent."""
        return all(method.dependent for method in self.access_methods)

    def max_arity(self) -> int:
        """Maximum arity over the relations of the schema (0 if empty)."""
        return max((relation.arity for relation in self.relations), default=0)

    def domains(self) -> Tuple[AbstractDomain, ...]:
        """All abstract domains mentioned by some attribute, deduplicated."""
        seen: Dict[str, AbstractDomain] = {}
        for relation in self.relations:
            for attribute in relation.attributes:
                seen.setdefault(attribute.domain.name, attribute.domain)
        return tuple(seen.values())

    def output_domains(self) -> frozenset:
        """Domains that some access method can produce values for as output."""
        produced = set()
        for method in self.access_methods:
            for place in method.output_places:
                produced.add(method.relation.domain_of(place))
        return frozenset(produced)

    def extend(
        self,
        relations: Iterable[Relation] = (),
        access_methods: Iterable[AccessMethod] = (),
    ) -> "Schema":
        """Return a new schema extending this one (used by the reductions)."""
        return Schema(
            list(self.relations) + list(relations),
            list(self.access_methods) + list(access_methods),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schema(relations={[r.name for r in self.relations]}, "
            f"methods={[m.name for m in self.access_methods]})"
        )


class SchemaBuilder:
    """Fluent helper for declaring domains, relations, and access methods.

    Example
    -------
    >>> builder = SchemaBuilder()
    >>> builder.domain("EmpId")                                   # doctest: +ELLIPSIS
    AbstractDomain('EmpId')
    >>> _ = builder.relation("Employee", [("id", "EmpId"), ("office", "OffId")])
    >>> _ = builder.access("EmpAcc", "Employee", inputs=["id"], dependent=True)
    >>> schema = builder.build()
    >>> schema.relation("Employee").arity
    2
    """

    def __init__(self) -> None:
        self._domains = DomainRegistry()
        self._relations: Dict[str, Relation] = {}
        self._methods: List[AccessMethod] = []

    def domain(
        self, name: str, values: Optional[Iterable[object]] = None
    ) -> AbstractDomain:
        """Declare an abstract domain (idempotent for identical declarations)."""
        return self._domains.declare(name, values)

    def relation(
        self, name: str, attributes: Sequence[Tuple[str, Union[str, AbstractDomain]]]
    ) -> Relation:
        """Declare a relation; unknown domain names are declared on the fly."""
        attrs = []
        for attr_name, domain_spec in attributes:
            if isinstance(domain_spec, AbstractDomain):
                domain = self._domains.declare(domain_spec.name, domain_spec.values)
            else:
                domain = (
                    self._domains.get(domain_spec)
                    if domain_spec in self._domains
                    else self._domains.declare(domain_spec)
                )
            attrs.append(Attribute(attr_name, domain))
        if name in self._relations:
            raise SchemaError(f"duplicate relation name {name!r}")
        relation = Relation(name, tuple(attrs))
        self._relations[name] = relation
        return relation

    def access(
        self,
        name: str,
        relation: Union[str, Relation],
        inputs: Sequence[Union[int, str]] = (),
        dependent: bool = True,
    ) -> AccessMethod:
        """Declare an access method; ``inputs`` are place indices or attribute names."""
        rel = (
            self._relations.get(relation)
            if isinstance(relation, str)
            else relation
        )
        if rel is None:
            raise SchemaError(f"unknown relation {relation!r}")
        places = []
        for spec in inputs:
            if isinstance(spec, int):
                places.append(spec)
            else:
                places.append(rel.attribute_index(spec))
        method = AccessMethod(name, rel, tuple(places), dependent=dependent)
        self._methods.append(method)
        return method

    def build(self) -> Schema:
        """Assemble the declared relations and methods into a :class:`Schema`."""
        return Schema(self._relations.values(), self._methods)

    @property
    def domains_registry(self) -> DomainRegistry:
        """The underlying domain registry (useful for sharing across builders)."""
        return self._domains
