"""Relations and attributes of a schema (Section 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

from repro.exceptions import SchemaError
from repro.schema.domains import AbstractDomain

__all__ = ["Attribute", "Relation"]


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name, unique within its relation.
    domain:
        The abstract domain of the values of this attribute.
    """

    name: str
    domain: AbstractDomain

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("an attribute must have a non-empty name")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.domain.name}"


AttributeSpec = Union[Attribute, Tuple[str, AbstractDomain]]


@dataclass(frozen=True)
class Relation:
    """A relation symbol with a fixed tuple of typed attributes.

    The position of an attribute in :attr:`attributes` is its *place*; access
    methods refer to places by index (0-based).
    """

    name: str
    attributes: Tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("a relation must have a non-empty name")
        names = [attribute.name for attribute in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attribute names: {names}"
            )

    @staticmethod
    def make(name: str, attributes: Sequence[AttributeSpec]) -> "Relation":
        """Build a relation from ``(name, domain)`` pairs or `Attribute`s."""
        normalised = []
        for spec in attributes:
            if isinstance(spec, Attribute):
                normalised.append(spec)
            else:
                attr_name, domain = spec
                normalised.append(Attribute(attr_name, domain))
        return Relation(name, tuple(normalised))

    @property
    def arity(self) -> int:
        """Number of attributes of the relation."""
        return len(self.attributes)

    @property
    def domains(self) -> Tuple[AbstractDomain, ...]:
        """Tuple of the abstract domains of the attributes, in place order."""
        return tuple(attribute.domain for attribute in self.attributes)

    def attribute_index(self, attribute_name: str) -> int:
        """Return the place (0-based) of the attribute called ``attribute_name``."""
        for index, attribute in enumerate(self.attributes):
            if attribute.name == attribute_name:
                return index
        raise SchemaError(
            f"relation {self.name!r} has no attribute named {attribute_name!r}"
        )

    def domain_of(self, place: int) -> AbstractDomain:
        """Return the abstract domain of the attribute at ``place``."""
        try:
            return self.attributes[place].domain
        except IndexError:
            raise SchemaError(
                f"relation {self.name!r} has no place {place} (arity {self.arity})"
            ) from None

    def check_values(self, values: Sequence[object]) -> None:
        """Validate that ``values`` is a well-typed tuple for this relation."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} expects {self.arity} values, "
                f"got {len(values)}"
            )
        for place, value in enumerate(values):
            domain = self.attributes[place].domain
            if not domain.admits(value):
                raise SchemaError(
                    f"value {value!r} is not admitted by domain {domain.name!r} "
                    f"at place {place} of relation {self.name!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(repr(attribute) for attribute in self.attributes)
        return f"{self.name}({attrs})"
