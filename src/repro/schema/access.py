"""Access methods and accesses (Section 2 of the paper).

An *access method* is attached to a relation and designates a set of input
places.  Using an access method requires supplying a *binding*: one value per
input place.  The combination of an access method and a binding is an
*access*; the paper writes, e.g., ``R(3, ?)`` for an access to a binary
relation with the first place bound to 3.

Access methods come in two varieties:

* **independent** — the binding values can be arbitrary ("free guess");
* **dependent** — every binding value (paired with the abstract domain of the
  corresponding input attribute) must already occur in the active domain of
  the current configuration.

Two degenerate shapes get names in the paper: a **Boolean access method** has
every place as an input (the access merely checks membership), and a **free
access method** has no input places at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.exceptions import AccessError, SchemaError
from repro.schema.domains import AbstractDomain
from repro.schema.relations import Relation

__all__ = ["AccessMethod", "Access"]


@dataclass(frozen=True)
class AccessMethod:
    """An access method on a relation.

    Parameters
    ----------
    name:
        Unique name of the method within a schema (e.g. ``"EmpOffAcc"``).
    relation:
        The relation the method gives access to.
    input_places:
        The (0-based) places of the relation that must be bound when using
        the method, stored in increasing order.
    dependent:
        Whether binding values must come from the active domain of the
        configuration (``True``) or can be guessed freely (``False``).
    """

    name: str
    relation: Relation
    input_places: Tuple[int, ...]
    dependent: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("an access method must have a non-empty name")
        places = tuple(sorted(set(self.input_places)))
        if places != tuple(self.input_places):
            object.__setattr__(self, "input_places", places)
        for place in self.input_places:
            if not 0 <= place < self.relation.arity:
                raise SchemaError(
                    f"access method {self.name!r}: input place {place} is out of "
                    f"range for relation {self.relation.name!r} "
                    f"(arity {self.relation.arity})"
                )

    @property
    def output_places(self) -> Tuple[int, ...]:
        """Places of the relation that are returned (not bound) by the method."""
        bound = set(self.input_places)
        return tuple(
            place for place in range(self.relation.arity) if place not in bound
        )

    @property
    def is_boolean(self) -> bool:
        """Whether every place is an input (the access is a membership test)."""
        return len(self.input_places) == self.relation.arity

    @property
    def is_free(self) -> bool:
        """Whether no place is an input (any tuple of the relation may be returned)."""
        return not self.input_places

    @property
    def independent(self) -> bool:
        """Convenience negation of :attr:`dependent`."""
        return not self.dependent

    @property
    def input_domains(self) -> Tuple[AbstractDomain, ...]:
        """Abstract domains of the input places, in place order."""
        return tuple(self.relation.domain_of(place) for place in self.input_places)

    def binding_from_mapping(self, mapping: Mapping[int, object]) -> Tuple[object, ...]:
        """Build a binding tuple from a ``{place: value}`` mapping."""
        try:
            return tuple(mapping[place] for place in self.input_places)
        except KeyError as missing:
            raise AccessError(
                f"binding for method {self.name!r} is missing place {missing}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "dependent" if self.dependent else "independent"
        return (
            f"AccessMethod({self.name!r}, {self.relation.name}, "
            f"inputs={list(self.input_places)}, {kind})"
        )


@dataclass(frozen=True)
class Access:
    """An access: an access method together with a binding of its input places.

    The binding is a tuple aligned with :attr:`AccessMethod.input_places`.
    """

    method: AccessMethod
    binding: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if len(self.binding) != len(self.method.input_places):
            raise AccessError(
                f"access via {self.method.name!r} needs "
                f"{len(self.method.input_places)} binding values, "
                f"got {len(self.binding)}"
            )
        for value, place in zip(self.binding, self.method.input_places):
            domain = self.method.relation.domain_of(place)
            if not domain.admits(value):
                raise AccessError(
                    f"binding value {value!r} is not admitted by domain "
                    f"{domain.name!r} at place {place} of relation "
                    f"{self.method.relation.name!r}"
                )

    @property
    def relation(self) -> Relation:
        """The relation being accessed."""
        return self.method.relation

    @property
    def binding_by_place(self) -> Dict[int, object]:
        """The binding as a ``{place: value}`` dictionary."""
        return dict(zip(self.method.input_places, self.binding))

    def binding_with_domains(self) -> Tuple[Tuple[object, AbstractDomain], ...]:
        """Binding values paired with the abstract domain of their place.

        This is the shape in which the well-formedness condition of dependent
        accesses is checked against the active domain of a configuration.
        """
        return tuple(
            (value, self.method.relation.domain_of(place))
            for value, place in zip(self.binding, self.method.input_places)
        )

    def matches(self, values: Sequence[object]) -> bool:
        """Whether a full tuple of the relation agrees with this binding."""
        if len(values) != self.relation.arity:
            return False
        return all(
            values[place] == value
            for place, value in zip(self.method.input_places, self.binding)
        )

    def select(self, tuples: Iterable[Sequence[object]]) -> Tuple[Tuple[object, ...], ...]:
        """Filter ``tuples`` down to those compatible with the binding."""
        return tuple(tuple(values) for values in tuples if self.matches(values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bound = self.binding_by_place
        rendered = ", ".join(
            repr(bound[place]) if place in bound else "?"
            for place in range(self.relation.arity)
        )
        return f"{self.relation.name}({rendered}) via {self.method.name}"
