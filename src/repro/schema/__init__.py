"""Schema model: abstract domains, relations, access methods (paper Section 2)."""

from repro.schema.access import Access, AccessMethod
from repro.schema.domains import AbstractDomain, DomainRegistry
from repro.schema.relations import Attribute, Relation
from repro.schema.schema import Schema, SchemaBuilder

__all__ = [
    "AbstractDomain",
    "DomainRegistry",
    "Attribute",
    "Relation",
    "AccessMethod",
    "Access",
    "Schema",
    "SchemaBuilder",
]
