"""Abstract domains of attribute values (Section 2 of the paper).

Every attribute of every relation is typed with an *abstract domain* chosen in
a countable set of abstract domains.  Two attributes may share the same domain
and different domains may conceptually overlap; in this implementation a
domain is purely a name used for typing accesses: in the *dependent* case the
binding values supplied to an access method must appear in the active domain
of the current configuration *with the matching abstract domain*.

Domains can additionally be declared *enumerated* with a finite value set,
which is used by workload generators and by the tiling gadgets (Boolean
domains, tile-type domains).  Enumeration does not change the semantics of
accesses; it only constrains what generators produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional

from repro.exceptions import SchemaError

__all__ = ["AbstractDomain", "DomainRegistry"]


@dataclass(frozen=True)
class AbstractDomain:
    """A named abstract domain of values.

    Parameters
    ----------
    name:
        Unique name of the domain (e.g. ``"EmpId"``, ``"State"``, ``"B"``).
    values:
        Optional finite enumeration of the values of the domain.  ``None``
        means the domain is (countably) infinite, which is the common case in
        the paper.  Enumerated domains are used for Boolean gadgets and tile
        types in the lower-bound constructions.
    """

    name: str
    values: Optional[FrozenSet[object]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("an abstract domain must have a non-empty name")
        # Domains are hashed on every active-domain and index operation;
        # precompute the hash once instead of re-hashing the name each time.
        object.__setattr__(self, "_hash", hash((self.__class__, self.name)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __getstate__(self) -> dict:
        # The cached hash is salted per process (``hash`` of the name) and
        # must never travel across a pickle boundary: a domain unpickled with
        # the sending process's hash would disagree with an equal domain
        # constructed fresh in the receiving process, corrupting any dict or
        # set that holds both.
        return {"name": self.name, "values": self.values}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "name", state["name"])
        object.__setattr__(self, "values", state["values"])
        object.__setattr__(self, "_hash", hash((self.__class__, self.name)))

    @property
    def is_enumerated(self) -> bool:
        """Whether the domain has a declared finite value set."""
        return self.values is not None

    def admits(self, value: object) -> bool:
        """Whether ``value`` may belong to this domain.

        Infinite domains admit every value; enumerated domains only admit the
        declared values.
        """
        if self.values is None:
            return True
        return value in self.values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_enumerated:
            return f"AbstractDomain({self.name!r}, |values|={len(self.values or ())})"
        return f"AbstractDomain({self.name!r})"


def _freeze_values(values: Optional[Iterable[object]]) -> Optional[FrozenSet[object]]:
    if values is None:
        return None
    return frozenset(values)


class DomainRegistry:
    """A small helper keeping track of the domains declared for a schema.

    A registry guarantees that a domain name maps to a single
    :class:`AbstractDomain` object, so equal names always compare equal and
    accidental redeclaration with a different enumeration is rejected.
    """

    def __init__(self) -> None:
        self._domains: dict[str, AbstractDomain] = {}

    def declare(
        self, name: str, values: Optional[Iterable[object]] = None
    ) -> AbstractDomain:
        """Declare (or retrieve) the domain called ``name``.

        Re-declaring an existing name with an identical enumeration returns
        the existing object; re-declaring with a conflicting enumeration
        raises :class:`~repro.exceptions.SchemaError`.
        """
        frozen = _freeze_values(values)
        existing = self._domains.get(name)
        if existing is not None:
            if existing.values != frozen:
                raise SchemaError(
                    f"domain {name!r} already declared with a different value set"
                )
            return existing
        domain = AbstractDomain(name, frozen)
        self._domains[name] = domain
        return domain

    def get(self, name: str) -> AbstractDomain:
        """Return the domain called ``name``, raising if it was never declared."""
        try:
            return self._domains[name]
        except KeyError:
            raise SchemaError(f"unknown abstract domain {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def __iter__(self):
        return iter(self._domains.values())

    def __len__(self) -> int:
        return len(self._domains)
