"""Synthetic schema, instance, and configuration generators.

The paper has no data sets (it is a theory paper), so the benchmarks and
property tests run on synthetic workloads.  All generators are deterministic
given their ``seed`` so that benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.data import Configuration, Instance
from repro.schema import Schema, SchemaBuilder

__all__ = [
    "GeneratedWorkload",
    "random_schema",
    "random_instance",
    "random_configuration",
    "chain_schema",
]


@dataclass(frozen=True)
class GeneratedWorkload:
    """A generated schema together with a hidden instance and a configuration."""

    schema: Schema
    instance: Instance
    configuration: Configuration


def random_schema(
    *,
    relations: int = 4,
    max_arity: int = 3,
    domains: int = 2,
    dependent_ratio: float = 0.5,
    methods_per_relation: int = 1,
    seed: int = 0,
) -> Schema:
    """A random schema with one or more access methods per relation."""
    rng = random.Random(seed)
    builder = SchemaBuilder()
    domain_names = [f"D{i}" for i in range(domains)]
    for name in domain_names:
        builder.domain(name)
    for index in range(relations):
        arity = rng.randint(1, max_arity)
        attributes = [
            (f"a{j}", domain_names[rng.randrange(domains)]) for j in range(arity)
        ]
        relation = builder.relation(f"R{index}", attributes)
        for method_index in range(methods_per_relation):
            input_count = rng.randint(0, arity)
            inputs = sorted(rng.sample(range(arity), input_count))
            builder.access(
                f"m{index}_{method_index}",
                relation,
                inputs=inputs,
                dependent=rng.random() < dependent_ratio,
            )
    return builder.build()


def random_instance(
    schema: Schema,
    *,
    tuples_per_relation: int = 6,
    value_pool: int = 8,
    seed: int = 0,
) -> Instance:
    """A random instance drawing values from a small per-domain pool."""
    rng = random.Random(seed)
    instance = Instance(schema)
    for relation in schema.relations:
        for _ in range(tuples_per_relation):
            values = []
            for attribute in relation.attributes:
                if attribute.domain.is_enumerated:
                    pool: Sequence[object] = sorted(
                        attribute.domain.values or (), key=repr
                    )
                else:
                    pool = [f"{attribute.domain.name.lower()}{i}" for i in range(value_pool)]
                values.append(pool[rng.randrange(len(pool))])
            instance.add(relation.name, tuple(values))
    return instance


def random_configuration(
    instance: Instance,
    *,
    fraction: float = 0.3,
    seed: int = 0,
) -> Configuration:
    """A random sub-instance of ``instance`` (a consistent configuration)."""
    rng = random.Random(seed)
    configuration = Configuration.empty(instance.schema)
    for fact in instance.facts():
        if rng.random() < fraction:
            configuration.add_fact(fact)
    return configuration


def chain_schema(
    length: int,
    *,
    dependent: bool = True,
    domain_name: str = "D",
) -> Schema:
    """A schema of binary relations ``L1 ... Ln`` chained by access patterns.

    Each ``Li`` has one access method bound on its first attribute, so
    answering a chain query requires feeding the output of one access into
    the next — the canonical dependent-access workload.
    """
    builder = SchemaBuilder()
    builder.domain(domain_name)
    for index in range(1, length + 1):
        relation = builder.relation(
            f"L{index}", [("src", domain_name), ("dst", domain_name)]
        )
        builder.access(
            f"accL{index}", relation, inputs=["src"], dependent=dependent
        )
    return builder.build()
