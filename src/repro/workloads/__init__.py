"""Synthetic workloads: generators and named scenarios for tests and benchmarks."""

from repro.workloads.generators import (
    GeneratedWorkload,
    chain_schema,
    random_configuration,
    random_instance,
    random_schema,
)
from repro.workloads.query_generators import chain_query, random_cq, random_pq, star_query
from repro.workloads.scenarios import (
    FlakyScenario,
    MultiQueryScenario,
    bank_multi_query_scenario,
    RelevanceScenario,
    containment_example_scenario,
    dependent_chain_scenario,
    diamond_scenario,
    fanout_scenario,
    flaky_scenario,
    multi_query_scenario,
    star_join_scenario,
    wide_fanout_scenario,
    independent_pq_scenario,
    independent_scenario,
    small_arity_scenario,
)

__all__ = [
    "GeneratedWorkload",
    "random_schema",
    "random_instance",
    "random_configuration",
    "chain_schema",
    "chain_query",
    "star_query",
    "random_cq",
    "random_pq",
    "FlakyScenario",
    "MultiQueryScenario",
    "RelevanceScenario",
    "bank_multi_query_scenario",
    "independent_scenario",
    "independent_pq_scenario",
    "dependent_chain_scenario",
    "fanout_scenario",
    "flaky_scenario",
    "multi_query_scenario",
    "star_join_scenario",
    "wide_fanout_scenario",
    "diamond_scenario",
    "small_arity_scenario",
    "containment_example_scenario",
]
