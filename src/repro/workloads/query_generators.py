"""Query generators: chain, star, and random conjunctive/positive queries."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.queries import ConjunctiveQuery, PositiveQuery
from repro.queries.atoms import Atom
from repro.queries.pq import AndNode, AtomNode, OrNode
from repro.queries.terms import Variable
from repro.schema import Schema

__all__ = ["chain_query", "star_query", "random_cq", "random_pq"]


def chain_query(schema: Schema, length: int, prefix: str = "L") -> ConjunctiveQuery:
    """``L1(x0, x1) ∧ L2(x1, x2) ∧ ... ∧ Ln(x_{n-1}, x_n)`` over a chain schema."""
    atoms: List[Atom] = []
    for index in range(1, length + 1):
        relation = schema.relation(f"{prefix}{index}")
        atoms.append(
            Atom(relation, (Variable(f"x{index - 1}"), Variable(f"x{index}")))
        )
    return ConjunctiveQuery(tuple(atoms), (), f"chain{length}")


def star_query(
    schema: Schema, relation_names: Sequence[str], center: str = "hub"
) -> ConjunctiveQuery:
    """A star: every relation shares its first variable with the others."""
    atoms: List[Atom] = []
    hub = Variable(center)
    for index, name in enumerate(relation_names):
        relation = schema.relation(name)
        terms = [hub] + [
            Variable(f"s{index}_{place}") for place in range(1, relation.arity)
        ]
        if relation.arity == 0:
            terms = []
        atoms.append(Atom(relation, tuple(terms[: relation.arity])))
    return ConjunctiveQuery(tuple(atoms), (), "star")


def random_cq(
    schema: Schema,
    *,
    atoms: int = 3,
    variables: int = 4,
    constant_probability: float = 0.15,
    value_pool: int = 4,
    seed: int = 0,
) -> ConjunctiveQuery:
    """A random Boolean conjunctive query respecting the domain discipline.

    Variables are typed on first use; later uses only re-employ a variable at
    places of the same abstract domain, so the query always satisfies the
    paper's requirement that shared variables have consistent domains.
    """
    rng = random.Random(seed)
    accessible = [relation for relation in schema.relations]
    if not accessible:
        raise QueryError("cannot generate a query over an empty schema")
    variable_pool = [Variable(f"v{i}") for i in range(variables)]
    variable_domains: dict = {}
    generated: List[Atom] = []
    for _ in range(atoms):
        relation = accessible[rng.randrange(len(accessible))]
        terms = []
        for place in range(relation.arity):
            domain = relation.domain_of(place)
            if rng.random() < constant_probability:
                if domain.is_enumerated:
                    pool = sorted(domain.values or (), key=repr)
                else:
                    pool = [f"{domain.name.lower()}{i}" for i in range(value_pool)]
                terms.append(pool[rng.randrange(len(pool))])
                continue
            compatible = [
                variable
                for variable in variable_pool
                if variable_domains.get(variable, domain) == domain
            ]
            variable = compatible[rng.randrange(len(compatible))] if compatible else None
            if variable is None:
                variable = Variable(f"v{len(variable_pool)}")
                variable_pool.append(variable)
            variable_domains[variable] = domain
            terms.append(variable)
        generated.append(Atom(relation, tuple(terms)))
    return ConjunctiveQuery(tuple(generated), (), f"rand{seed}")


def random_pq(
    schema: Schema,
    *,
    disjuncts: int = 2,
    atoms_per_disjunct: int = 2,
    variables: int = 4,
    seed: int = 0,
) -> PositiveQuery:
    """A random Boolean positive query: a disjunction of small conjunctions."""
    rng = random.Random(seed)
    branches = []
    for index in range(disjuncts):
        disjunct = random_cq(
            schema,
            atoms=atoms_per_disjunct,
            variables=variables,
            seed=seed * 31 + index,
        )
        # Rename apart so that variables of different disjuncts (which may
        # have been typed with different domains) do not clash.
        disjunct = disjunct.rename_apart(f"_d{index}")
        branches.append(
            AndNode(tuple(AtomNode(atom) for atom in disjunct.atoms))
            if len(disjunct.atoms) > 1
            else AtomNode(disjunct.atoms[0])
        )
    root = OrNode(tuple(branches)) if len(branches) > 1 else branches[0]
    return PositiveQuery(root, (), f"randpq{seed}")
