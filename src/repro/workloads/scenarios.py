"""Named scenarios used by the benchmarks and the integration tests.

Each scenario packages a schema, a configuration, a query, and an access, so
that every benchmark row of EXPERIMENTS.md is regenerated from a single named
entry point.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.data import Configuration, Instance
from repro.queries import ConjunctiveQuery, PositiveQuery, parse_cq, parse_pq
from repro.schema import Access, Schema, SchemaBuilder
from repro.workloads.generators import chain_schema
from repro.workloads.query_generators import chain_query, random_cq, random_pq

__all__ = [
    "FlakyScenario",
    "MultiQueryScenario",
    "RelevanceScenario",
    "bank_multi_query_scenario",
    "independent_scenario",
    "independent_pq_scenario",
    "dependent_chain_scenario",
    "fanout_scenario",
    "flaky_scenario",
    "wide_fanout_scenario",
    "diamond_scenario",
    "multi_query_scenario",
    "small_arity_scenario",
    "star_join_scenario",
    "containment_example_scenario",
]


def _distinct_subsets(rng, universe, size, count):
    """``count`` sorted ``size``-subsets of ``universe``, distinct while possible.

    Rejection-samples distinct subsets from ``rng``; once every distinct
    subset has been drawn, the remainder recycles deterministically instead
    of silently returning fewer (the multi-query scenario generators promise
    exactly ``count`` queries).
    """
    subsets = []
    seen = set()
    all_subsets = list(itertools.combinations(universe, size))
    while len(subsets) < count:
        if len(seen) == len(all_subsets):
            subsets.append(all_subsets[len(subsets) % len(all_subsets)])
            continue
        subset = tuple(sorted(rng.sample(universe, size)))
        if subset in seen:
            continue
        seen.add(subset)
        subsets.append(subset)
    return subsets


def _build_mediator(
    schema: Schema,
    hidden_instance: Optional[Instance],
    configuration: Configuration,
    name: str,
    *,
    latency_s: float = 0.0,
    latency_jitter_s: float = 0.0,
    completeness: float = 1.0,
    seed: int = 0,
    metrics=None,
):
    """Shared mediator construction for the scenario classes."""
    if hidden_instance is None:
        raise ValueError(f"scenario {name!r} has no hidden instance")
    from repro.sources.service import DataSource, Mediator

    sources = [
        DataSource(
            method,
            hidden_instance,
            completeness=completeness,
            seed=seed + index,
            latency_s=latency_s,
            latency_jitter_s=latency_jitter_s,
        )
        for index, method in enumerate(schema.access_methods)
    ]
    return Mediator(schema, sources, configuration.copy(), metrics=metrics)


@dataclass(frozen=True)
class RelevanceScenario:
    """A packaged relevance problem instance.

    Scenarios meant for end-to-end answering runs additionally carry a
    ``hidden_instance`` — the simulated source content — from which
    :meth:`mediator` builds a federated engine.
    """

    name: str
    schema: Schema
    configuration: Configuration
    query: object
    access: Access
    expected_immediate: Optional[bool] = None
    expected_long_term: Optional[bool] = None
    hidden_instance: Optional[Instance] = None

    def mediator(
        self,
        *,
        latency_s: float = 0.0,
        latency_jitter_s: float = 0.0,
        completeness: float = 1.0,
        seed: int = 0,
        metrics=None,
    ):
        """A mediator over simulated sources (requires a hidden instance).

        ``latency_s``/``latency_jitter_s`` give every source a simulated
        access delay — the regime where the parallel answering runtime pays;
        ``completeness``/``seed`` build sound-but-partial sources.
        """
        return _build_mediator(
            self.schema,
            self.hidden_instance,
            self.configuration,
            self.name,
            latency_s=latency_s,
            latency_jitter_s=latency_jitter_s,
            completeness=completeness,
            seed=seed,
            metrics=metrics,
        )


def independent_scenario(query_size: int = 3, seed: int = 1) -> RelevanceScenario:
    """Independent accesses, random CQ of the requested size (Table 1 rows 1–2)."""
    builder = SchemaBuilder()
    builder.domain("D")
    for index in range(3):
        relation = builder.relation(
            f"R{index}", [("a", "D"), ("b", "D")][: 2 if index else 2]
        )
        builder.access(f"m{index}", relation, inputs=[0], dependent=False)
    schema = builder.build()
    query = random_cq(schema, atoms=query_size, variables=query_size + 1, seed=seed)
    configuration = Configuration(schema, {"R0": [("d0", "d1")]})
    access = Access(schema.access_method("m0"), ("d0",))
    return RelevanceScenario("independent", schema, configuration, query, access)


def independent_pq_scenario(disjuncts: int = 2, seed: int = 3) -> RelevanceScenario:
    """Independent accesses, random positive query (Table 1 row 2)."""
    base = independent_scenario(seed=seed)
    query = random_pq(base.schema, disjuncts=disjuncts, seed=seed)
    return RelevanceScenario(
        "independent-pq", base.schema, base.configuration, query, base.access
    )


def dependent_chain_scenario(length: int = 3) -> RelevanceScenario:
    """Dependent chained accesses: the access feeds a chain of joins (row 3).

    The configuration knows a single start constant; the access on ``L1``
    with that constant is long-term relevant because its outputs feed the
    ``L2`` access, and so on down the chain (Example 2.1 generalised).
    """
    schema = chain_schema(length, dependent=True)
    query = chain_query(schema, length)
    configuration = Configuration.empty(schema)
    domain = schema.relation("L1").domain_of(0)
    configuration.add_constant("start", domain)
    access = Access(schema.access_method("accL1"), ("start",))
    return RelevanceScenario(
        f"dependent-chain-{length}",
        schema,
        configuration,
        query,
        access,
        expected_long_term=True,
    )


def fanout_scenario(
    branches: int = 3,
    *,
    audit: bool = True,
    mids: int = 1,
    satisfiable: bool = True,
) -> RelevanceScenario:
    """Wide fanout: one hub access feeds ``branches`` parallel joins.

    ``Hub(src, mid)`` is reached by a dependent access on ``src``; each
    branch relation ``B1 ... Bk`` joins the hub's output on a shared ``mid``
    variable and emits a leaf value of its own domain.  The query asks for a
    ``mid`` present in *every* branch, so the hub access is long-term
    relevant (its output feeds all branch accesses) although ``Hub`` itself
    does not occur in the query.

    With ``audit`` a side relation ``Audit(mid, note)`` is added whose
    output domain feeds nothing: its accesses fail the relevant-relation
    closure, and its facts are the canonical *query-irrelevant delta* the
    verdict-inheritance test accepts.

    ``mids`` widens the fanout further: the hub returns that many distinct
    ``mid`` values, every one of which seeds a probe of every branch — one
    answering round then holds ``branches × mids`` independent relevant
    accesses, the access-bound regime the parallel executor is built for.
    Only ``m0`` carries branch facts; with ``satisfiable=False`` even
    ``m0``'s last branch is left empty, so the query never becomes certain
    and every strategy (any parallelism level) performs exactly the same
    relevant access set before reaching its fixpoint.
    """
    if branches < 1:
        raise ValueError("fanout needs at least one branch")
    if mids < 1:
        raise ValueError("fanout needs at least one mid value")
    builder = SchemaBuilder()
    builder.domain("S")
    builder.domain("M")
    builder.relation("Hub", [("src", "S"), ("mid", "M")])
    builder.access("accHub", "Hub", inputs=["src"], dependent=True)
    for index in range(1, branches + 1):
        builder.domain(f"L{index}")
        builder.relation(f"B{index}", [("mid", "M"), ("leaf", f"L{index}")])
        builder.access(f"accB{index}", f"B{index}", inputs=["mid"], dependent=True)
    if audit:
        builder.domain("Note")
        builder.relation("Audit", [("mid", "M"), ("note", "Note")])
        builder.access("accAudit", "Audit", inputs=["mid"], dependent=True)
    schema = builder.build()

    body = ", ".join(f"B{index}(m, z{index})" for index in range(1, branches + 1))
    query = parse_cq(schema, body, name=f"fanout-{branches}")

    configuration = Configuration.empty(schema)
    configuration.add_constant("start", schema.relation("Hub").domain_of(0))

    hidden = Instance(schema)
    for mid_index in range(mids):
        hidden.add("Hub", ("start", f"m{mid_index}"))
    populated = branches if satisfiable else branches - 1
    for index in range(1, populated + 1):
        hidden.add(f"B{index}", ("m0", f"leaf{index}"))
    if audit:
        hidden.add("Audit", ("m0", "note0"))

    access = Access(schema.access_method("accHub"), ("start",))
    return RelevanceScenario(
        f"fanout-{branches}x{mids}" if mids > 1 else f"fanout-{branches}",
        schema,
        configuration,
        query,
        access,
        expected_long_term=True,
        hidden_instance=hidden,
    )


def wide_fanout_scenario(
    branches: int = 8, mids: int = 4, *, satisfiable: bool = False
) -> RelevanceScenario:
    """A fanout-heavy answering workload where parallelism actually pays.

    One hub access exposes ``mids`` mid values, after which a single round
    holds ``branches × mids`` independent relevant branch accesses — under
    simulated source latency the sequential strategy pays one round-trip per
    access while the parallel executor overlaps them.  By default the query
    is kept unsatisfiable (one branch empty), so runs at every parallelism
    level perform the identical relevant access set; see
    :func:`fanout_scenario` for the knobs.
    """
    return fanout_scenario(
        branches, audit=True, mids=mids, satisfiable=satisfiable
    )


def diamond_scenario(width: int = 2) -> RelevanceScenario:
    """Diamond dependencies: parallel middles reconverging in one bottom join.

    ``Top(src, a)`` fans out to ``width`` middle relations ``M1 ... Mw`` (all
    consuming the same ``a`` value), whose outputs reconverge as the
    attributes of a single ``Bottom(x1, ..., xw)`` fact reached through the
    first middle's output.  The top access is long-term relevant: every
    middle access and the bottom access transitively depend on its output.
    """
    if width < 2:
        raise ValueError("a diamond needs at least two middle relations")
    builder = SchemaBuilder()
    builder.domain("S")
    builder.domain("A")
    builder.relation("Top", [("src", "S"), ("a", "A")])
    builder.access("accTop", "Top", inputs=["src"], dependent=True)
    for index in range(1, width + 1):
        builder.domain(f"X{index}")
        builder.relation(f"M{index}", [("a", "A"), ("x", f"X{index}")])
        builder.access(f"accM{index}", f"M{index}", inputs=["a"], dependent=True)
    builder.relation(
        "Bottom", [(f"x{index}", f"X{index}") for index in range(1, width + 1)]
    )
    builder.access("accBottom", "Bottom", inputs=["x1"], dependent=True)
    schema = builder.build()

    middles = ", ".join(f"M{index}(a, x{index})" for index in range(1, width + 1))
    bottom = "Bottom(" + ", ".join(f"x{index}" for index in range(1, width + 1)) + ")"
    query = parse_cq(schema, f"{middles}, {bottom}", name=f"diamond-{width}")

    configuration = Configuration.empty(schema)
    configuration.add_constant("start", schema.relation("Top").domain_of(0))

    hidden = Instance(schema)
    hidden.add("Top", ("start", "a0"))
    for index in range(1, width + 1):
        hidden.add(f"M{index}", ("a0", f"x{index}_0"))
    hidden.add(
        "Bottom", tuple(f"x{index}_0" for index in range(1, width + 1))
    )

    access = Access(schema.access_method("accTop"), ("start",))
    return RelevanceScenario(
        f"diamond-{width}",
        schema,
        configuration,
        query,
        access,
        expected_long_term=True,
        hidden_instance=hidden,
    )


def small_arity_scenario(length: int = 3) -> RelevanceScenario:
    """Binary relations, dependent accesses, connected query (Theorem 6.1)."""
    scenario = dependent_chain_scenario(length)
    return RelevanceScenario(
        f"small-arity-{length}",
        scenario.schema,
        scenario.configuration,
        scenario.query,
        scenario.access,
        expected_long_term=True,
    )


@dataclass(frozen=True)
class MultiQueryScenario:
    """A packaged multi-query answering problem: N queries, one hidden instance.

    The scenario is what the :class:`~repro.runtime.server.QueryServer`
    benchmarks and tests run on — all queries are over one schema and one
    simulated source set, so their answering rounds share a configuration.
    """

    name: str
    schema: Schema
    configuration: Configuration
    queries: Tuple[object, ...]
    hidden_instance: Instance

    def mediator(
        self,
        *,
        latency_s: float = 0.0,
        latency_jitter_s: float = 0.0,
        completeness: float = 1.0,
        seed: int = 0,
        metrics=None,
    ):
        """A mediator over the scenario's simulated sources (fresh state)."""
        return _build_mediator(
            self.schema,
            self.hidden_instance,
            self.configuration,
            self.name,
            latency_s=latency_s,
            latency_jitter_s=latency_jitter_s,
            completeness=completeness,
            seed=seed,
            metrics=metrics,
        )


def multi_query_scenario(
    n_queries: int = 8,
    branches: int = 6,
    mids: int = 2,
    *,
    atoms_per_query: int = 3,
    seed: int = 0,
) -> MultiQueryScenario:
    """N fanout-style Boolean queries over one shared hidden instance.

    The schema is the fanout shape (one hub access exposing ``mids`` mid
    values, ``branches`` branch relations joining on the shared mid, plus the
    query-irrelevant ``Audit`` side relation).  Each query is a conjunction
    of ``atoms_per_query`` *distinct branch subsets* drawn deterministically
    from ``seed`` — so the queries overlap pairwise (shared branch accesses
    are performed once for the whole batch) without being equal (each gets
    its own verdict store).

    Only branches ``B1 .. B(branches-1)`` hold facts for ``m0``; a query
    whose subset includes the last branch is unsatisfiable, so every batch
    mixes early-certain queries with run-to-fixpoint ones — exactly the mix
    a multi-query scheduler has to handle.
    """
    if atoms_per_query < 1 or atoms_per_query > branches:
        raise ValueError("atoms_per_query must be between 1 and branches")
    base = fanout_scenario(branches, audit=True, mids=mids, satisfiable=False)
    rng = random.Random(seed)
    subsets = _distinct_subsets(
        rng, range(1, branches + 1), atoms_per_query, n_queries
    )
    queries = tuple(
        parse_cq(
            base.schema,
            ", ".join(f"B{index}(m, z{index})" for index in subset),
            name=f"mq{q_index}-" + "".join(str(index) for index in subset),
        )
        for q_index, subset in enumerate(subsets)
    )
    return MultiQueryScenario(
        name=f"multi-{n_queries}q-{branches}b-{mids}m",
        schema=base.schema,
        configuration=base.configuration,
        queries=queries,
        hidden_instance=base.hidden_instance,
    )


def star_join_scenario(
    n_queries: int = 6,
    spokes: int = 5,
    keys: int = 3,
    *,
    atoms_per_query: int = 3,
    seed: int = 0,
) -> MultiQueryScenario:
    """N star-join Boolean queries over shared spoke relations.

    ``spokes`` relations ``S1(key, val) .. Sk(key, val)`` each carry a
    dependent access bound on ``key``; the configuration seeds ``keys`` key
    constants, so the very first round already holds ``spokes × keys``
    candidate accesses.  Query ``j`` joins a subset of spokes on a shared
    key variable (``S_a(k, va) & S_b(k, vb) & ...``).  The hidden instance
    populates each spoke for a sliding window of keys, making some joins
    satisfiable and others empty.

    Compared to :func:`multi_query_scenario` the joins here have *no hub*:
    every spoke access is independent of the others, so the round's
    relevance searches — one per (query, spoke, key) orbit — dominate and
    the process pool has real CPU-bound work to spread.
    """
    if atoms_per_query < 2 or atoms_per_query > spokes:
        raise ValueError("atoms_per_query must be between 2 and spokes")
    builder = SchemaBuilder()
    builder.domain("K")
    for index in range(1, spokes + 1):
        builder.domain(f"V{index}")
        builder.relation(f"S{index}", [("key", "K"), ("val", f"V{index}")])
        builder.access(f"accS{index}", f"S{index}", inputs=["key"], dependent=True)
    schema = builder.build()

    configuration = Configuration.empty(schema)
    key_domain = schema.relation("S1").domain_of(0)
    for key_index in range(keys):
        configuration.add_constant(f"k{key_index}", key_domain)

    hidden = Instance(schema)
    for index in range(1, spokes + 1):
        # Spoke i covers keys [i-1, i-1 + keys//2] (mod keys): windows
        # overlap, so some spoke subsets share a key and join non-trivially
        # while others miss.
        for offset in range(max(1, keys // 2 + 1)):
            key_index = (index - 1 + offset) % keys
            hidden.add(f"S{index}", (f"k{key_index}", f"v{index}_{key_index}"))

    rng = random.Random(seed)
    subsets = _distinct_subsets(
        rng, range(1, spokes + 1), atoms_per_query, n_queries
    )
    queries = []
    for q_index, subset in enumerate(subsets):
        body = ", ".join(f"S{index}(k, v{index})" for index in subset)
        queries.append(
            parse_cq(
                schema,
                body,
                name=f"star{q_index}-" + "".join(str(index) for index in subset),
            )
        )
    return MultiQueryScenario(
        name=f"star-{n_queries}q-{spokes}s-{keys}k",
        schema=schema,
        configuration=configuration,
        queries=tuple(queries),
        hidden_instance=hidden,
    )


def bank_multi_query_scenario(
    n_queries: int = 8,
    *,
    employees: int = 8,
    offices: int = 4,
    states: int = 4,
    known_employees: int = 2,
    seed: int = 7,
) -> MultiQueryScenario:
    """N variants of the bank's motivating query over one hidden bank.

    Each query asks for a ``(state, offering)`` combination — *is there a
    loan officer located in <state>, with <offering> approved in <state>?* —
    drawn deterministically from ``seed``.  The variants share every
    navigation step (employee → office, employee → manager), so the server
    performs the shared accesses once, while the per-query witness searches
    are the CPU-bound part: on the bank shape a fresh LTR search costs tens
    of milliseconds (management-chain support plans), which is exactly the
    regime where process-pool search workers pay.

    Only the ``State`` and ``Offering`` constants vary.  The employee title
    is deliberately fixed: every extra ``Text``-domain constant in the shared
    configuration multiplies the witness-assignment space of *all* queries'
    searches (``Text`` occurs at three Employee places), degrading the batch
    from CPU-bound to intractable.
    """
    from repro.sources.bank import build_bank_scenario

    bank = build_bank_scenario(
        employees=employees,
        offices=offices,
        states=states,
        seed=seed,
        known_employees=known_employees,
    )
    schema = bank.schema
    rng = random.Random(seed)
    state_names = ["Illinois"] + [f"State{i}" for i in range(1, states)]
    offerings = ["30yr", "15yr", "auto", "heloc"]
    combos = [
        (state, offering) for state in state_names for offering in offerings
    ]
    rng.shuffle(combos)
    # Keep the guaranteed-satisfiable motivating combination in every batch.
    chosen = [("Illinois", "30yr")]
    chosen.extend(combo for combo in combos if combo != chosen[0])
    if n_queries > len(chosen):
        # More queries than distinct (state, offering) combinations:
        # recycle deterministically rather than silently shrinking the batch.
        chosen = [chosen[index % len(chosen)] for index in range(n_queries)]
    chosen = chosen[:n_queries]
    queries = tuple(
        parse_cq(
            schema,
            f"Employee(e, 'loan officer', ln, fn, o), Office(o, a, '{state}', p), "
            f"Approval('{state}', '{offering}')",
            name=f"bank{index}-{state}-{offering}",
        )
        for index, (state, offering) in enumerate(chosen)
    )

    configuration = Configuration.empty(schema)
    emp_domain = schema.relation("Employee").domain_of(0)
    for emp_id in bank.known_employee_ids:
        configuration.add_constant(emp_id, emp_domain)
    for query in queries:
        for value, domain in query.constants_with_domains():
            configuration.add_constant(value, domain)

    return MultiQueryScenario(
        name=f"bank-multi-{n_queries}q-{employees}e",
        schema=schema,
        configuration=configuration,
        queries=queries,
        hidden_instance=bank.hidden_instance,
    )


@dataclass(frozen=True)
class FlakyScenario:
    """A multi-query scenario whose sources misbehave on demand.

    Wraps a :class:`MultiQueryScenario` with one seeded
    :class:`~repro.sources.service.FailurePolicy` per access method, so the
    chaos tests, the ``--chaos`` demo, and the CI smoke all run the *same*
    reproducible fault schedule.  :meth:`mediator` builds the faulty
    federation; with ``chaos=False`` it builds the fault-free twin over the
    identical hidden instance — the reference run the soundness property
    compares degraded answers against.
    """

    base: MultiQueryScenario
    #: ``(method_name, FailurePolicy)`` pairs, one per access method.
    policies: Tuple[Tuple[str, object], ...]

    @property
    def name(self) -> str:
        return f"flaky-{self.base.name}"

    @property
    def schema(self) -> Schema:
        return self.base.schema

    @property
    def configuration(self) -> Configuration:
        return self.base.configuration

    @property
    def queries(self) -> Tuple[object, ...]:
        return self.base.queries

    @property
    def hidden_instance(self) -> Instance:
        return self.base.hidden_instance

    def mediator(
        self,
        *,
        chaos: bool = True,
        retry_policy=None,
        breakers=None,
        latency_s: float = 0.0,
        latency_jitter_s: float = 0.0,
        completeness: float = 1.0,
        seed: int = 0,
        metrics=None,
    ):
        """A mediator over the scenario's sources (fresh state).

        ``chaos`` arms the failure policies; ``retry_policy`` / ``breakers``
        are forwarded to the :class:`~repro.sources.service.Mediator` so the
        executor retries transient faults and fails fast on open circuits.
        """
        from repro.sources.service import DataSource, Mediator

        by_method = dict(self.policies) if chaos else {}
        sources = [
            DataSource(
                method,
                self.base.hidden_instance,
                completeness=completeness,
                seed=seed + index,
                latency_s=latency_s,
                latency_jitter_s=latency_jitter_s,
                failure_policy=by_method.get(method.name),
            )
            for index, method in enumerate(self.base.schema.access_methods)
        ]
        return Mediator(
            self.base.schema,
            sources,
            self.base.configuration.copy(),
            metrics=metrics,
            retry_policy=retry_policy,
            breakers=breakers,
        )


def flaky_scenario(
    kind: str = "fanout",
    *,
    seed: int = 0,
    transient_rate: float = 0.2,
    hard_fail_after: Optional[int] = None,
    hard_fail_methods: Tuple[str, ...] = (),
    hang_rate: float = 0.0,
    hang_s: float = 0.0,
    malformed_rate: float = 0.0,
    truncate_rate: float = 0.0,
    n_queries: int = 6,
) -> FlakyScenario:
    """A seeded chaos workload over the fanout or bank multi-query scenario.

    Every access method gets a :class:`~repro.sources.service.FailurePolicy`
    with the given rates and a per-method seed derived from ``seed`` — the
    fault schedule is a pure function of ``(seed, access, attempt)``, so two
    runs with the same seed fail identically.  ``hard_fail_after`` (calls
    before a source goes permanently down) applies only to the methods named
    in ``hard_fail_methods`` — or, when that is empty, to the *first* access
    method — so chaos runs exercise give-up paths without taking the whole
    federation down.
    """
    if kind == "bank":
        base = bank_multi_query_scenario(n_queries)
    elif kind == "fanout":
        base = multi_query_scenario(n_queries)
    else:
        raise ValueError(f"unknown flaky scenario kind {kind!r}")
    from repro.sources.service import FailurePolicy

    method_names = [method.name for method in base.schema.access_methods]
    hard_targets = (
        set(hard_fail_methods) if hard_fail_methods else {method_names[0]}
    )
    policies = tuple(
        (
            name,
            FailurePolicy(
                transient_rate=transient_rate,
                hard_fail_after=(
                    hard_fail_after if name in hard_targets else None
                ),
                hang_rate=hang_rate,
                hang_s=hang_s,
                malformed_rate=malformed_rate,
                truncate_rate=truncate_rate,
                seed=seed + index,
            ),
        )
        for index, name in enumerate(method_names)
    )
    return FlakyScenario(base=base, policies=policies)


def containment_example_scenario() -> Tuple[Schema, Configuration, ConjunctiveQuery, ConjunctiveQuery]:
    """Example 3.2: containment holds under access limitations but not classically."""
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D")])
    builder.relation("S", [("a", "D")])
    builder.access("accR", "R", inputs=["a"], dependent=True)
    builder.access("accS", "S", inputs=[], dependent=True)
    schema = builder.build()
    query_r = parse_cq(schema, "R(x)", name="Q1")
    query_s = parse_cq(schema, "S(x)", name="Q2")
    return schema, Configuration.empty(schema), query_r, query_s
