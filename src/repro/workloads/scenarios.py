"""Named scenarios used by the benchmarks and the integration tests.

Each scenario packages a schema, a configuration, a query, and an access, so
that every benchmark row of EXPERIMENTS.md is regenerated from a single named
entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.data import Configuration, Instance
from repro.queries import ConjunctiveQuery, PositiveQuery, parse_cq, parse_pq
from repro.schema import Access, Schema, SchemaBuilder
from repro.workloads.generators import chain_schema
from repro.workloads.query_generators import chain_query, random_cq, random_pq

__all__ = [
    "RelevanceScenario",
    "independent_scenario",
    "independent_pq_scenario",
    "dependent_chain_scenario",
    "fanout_scenario",
    "wide_fanout_scenario",
    "diamond_scenario",
    "small_arity_scenario",
    "containment_example_scenario",
]


@dataclass(frozen=True)
class RelevanceScenario:
    """A packaged relevance problem instance.

    Scenarios meant for end-to-end answering runs additionally carry a
    ``hidden_instance`` — the simulated source content — from which
    :meth:`mediator` builds a federated engine.
    """

    name: str
    schema: Schema
    configuration: Configuration
    query: object
    access: Access
    expected_immediate: Optional[bool] = None
    expected_long_term: Optional[bool] = None
    hidden_instance: Optional[Instance] = None

    def mediator(
        self,
        *,
        latency_s: float = 0.0,
        latency_jitter_s: float = 0.0,
        completeness: float = 1.0,
        seed: int = 0,
        metrics=None,
    ):
        """A mediator over simulated sources (requires a hidden instance).

        ``latency_s``/``latency_jitter_s`` give every source a simulated
        access delay — the regime where the parallel answering runtime pays;
        ``completeness``/``seed`` build sound-but-partial sources.
        """
        if self.hidden_instance is None:
            raise ValueError(f"scenario {self.name!r} has no hidden instance")
        from repro.sources.service import DataSource, Mediator

        sources = [
            DataSource(
                method,
                self.hidden_instance,
                completeness=completeness,
                seed=seed + index,
                latency_s=latency_s,
                latency_jitter_s=latency_jitter_s,
            )
            for index, method in enumerate(self.schema.access_methods)
        ]
        return Mediator(
            self.schema, sources, self.configuration.copy(), metrics=metrics
        )


def independent_scenario(query_size: int = 3, seed: int = 1) -> RelevanceScenario:
    """Independent accesses, random CQ of the requested size (Table 1 rows 1–2)."""
    builder = SchemaBuilder()
    builder.domain("D")
    for index in range(3):
        relation = builder.relation(
            f"R{index}", [("a", "D"), ("b", "D")][: 2 if index else 2]
        )
        builder.access(f"m{index}", relation, inputs=[0], dependent=False)
    schema = builder.build()
    query = random_cq(schema, atoms=query_size, variables=query_size + 1, seed=seed)
    configuration = Configuration(schema, {"R0": [("d0", "d1")]})
    access = Access(schema.access_method("m0"), ("d0",))
    return RelevanceScenario("independent", schema, configuration, query, access)


def independent_pq_scenario(disjuncts: int = 2, seed: int = 3) -> RelevanceScenario:
    """Independent accesses, random positive query (Table 1 row 2)."""
    base = independent_scenario(seed=seed)
    query = random_pq(base.schema, disjuncts=disjuncts, seed=seed)
    return RelevanceScenario(
        "independent-pq", base.schema, base.configuration, query, base.access
    )


def dependent_chain_scenario(length: int = 3) -> RelevanceScenario:
    """Dependent chained accesses: the access feeds a chain of joins (row 3).

    The configuration knows a single start constant; the access on ``L1``
    with that constant is long-term relevant because its outputs feed the
    ``L2`` access, and so on down the chain (Example 2.1 generalised).
    """
    schema = chain_schema(length, dependent=True)
    query = chain_query(schema, length)
    configuration = Configuration.empty(schema)
    domain = schema.relation("L1").domain_of(0)
    configuration.add_constant("start", domain)
    access = Access(schema.access_method("accL1"), ("start",))
    return RelevanceScenario(
        f"dependent-chain-{length}",
        schema,
        configuration,
        query,
        access,
        expected_long_term=True,
    )


def fanout_scenario(
    branches: int = 3,
    *,
    audit: bool = True,
    mids: int = 1,
    satisfiable: bool = True,
) -> RelevanceScenario:
    """Wide fanout: one hub access feeds ``branches`` parallel joins.

    ``Hub(src, mid)`` is reached by a dependent access on ``src``; each
    branch relation ``B1 ... Bk`` joins the hub's output on a shared ``mid``
    variable and emits a leaf value of its own domain.  The query asks for a
    ``mid`` present in *every* branch, so the hub access is long-term
    relevant (its output feeds all branch accesses) although ``Hub`` itself
    does not occur in the query.

    With ``audit`` a side relation ``Audit(mid, note)`` is added whose
    output domain feeds nothing: its accesses fail the relevant-relation
    closure, and its facts are the canonical *query-irrelevant delta* the
    verdict-inheritance test accepts.

    ``mids`` widens the fanout further: the hub returns that many distinct
    ``mid`` values, every one of which seeds a probe of every branch — one
    answering round then holds ``branches × mids`` independent relevant
    accesses, the access-bound regime the parallel executor is built for.
    Only ``m0`` carries branch facts; with ``satisfiable=False`` even
    ``m0``'s last branch is left empty, so the query never becomes certain
    and every strategy (any parallelism level) performs exactly the same
    relevant access set before reaching its fixpoint.
    """
    if branches < 1:
        raise ValueError("fanout needs at least one branch")
    if mids < 1:
        raise ValueError("fanout needs at least one mid value")
    builder = SchemaBuilder()
    builder.domain("S")
    builder.domain("M")
    builder.relation("Hub", [("src", "S"), ("mid", "M")])
    builder.access("accHub", "Hub", inputs=["src"], dependent=True)
    for index in range(1, branches + 1):
        builder.domain(f"L{index}")
        builder.relation(f"B{index}", [("mid", "M"), ("leaf", f"L{index}")])
        builder.access(f"accB{index}", f"B{index}", inputs=["mid"], dependent=True)
    if audit:
        builder.domain("Note")
        builder.relation("Audit", [("mid", "M"), ("note", "Note")])
        builder.access("accAudit", "Audit", inputs=["mid"], dependent=True)
    schema = builder.build()

    body = ", ".join(f"B{index}(m, z{index})" for index in range(1, branches + 1))
    query = parse_cq(schema, body, name=f"fanout-{branches}")

    configuration = Configuration.empty(schema)
    configuration.add_constant("start", schema.relation("Hub").domain_of(0))

    hidden = Instance(schema)
    for mid_index in range(mids):
        hidden.add("Hub", ("start", f"m{mid_index}"))
    populated = branches if satisfiable else branches - 1
    for index in range(1, populated + 1):
        hidden.add(f"B{index}", ("m0", f"leaf{index}"))
    if audit:
        hidden.add("Audit", ("m0", "note0"))

    access = Access(schema.access_method("accHub"), ("start",))
    return RelevanceScenario(
        f"fanout-{branches}x{mids}" if mids > 1 else f"fanout-{branches}",
        schema,
        configuration,
        query,
        access,
        expected_long_term=True,
        hidden_instance=hidden,
    )


def wide_fanout_scenario(
    branches: int = 8, mids: int = 4, *, satisfiable: bool = False
) -> RelevanceScenario:
    """A fanout-heavy answering workload where parallelism actually pays.

    One hub access exposes ``mids`` mid values, after which a single round
    holds ``branches × mids`` independent relevant branch accesses — under
    simulated source latency the sequential strategy pays one round-trip per
    access while the parallel executor overlaps them.  By default the query
    is kept unsatisfiable (one branch empty), so runs at every parallelism
    level perform the identical relevant access set; see
    :func:`fanout_scenario` for the knobs.
    """
    return fanout_scenario(
        branches, audit=True, mids=mids, satisfiable=satisfiable
    )


def diamond_scenario(width: int = 2) -> RelevanceScenario:
    """Diamond dependencies: parallel middles reconverging in one bottom join.

    ``Top(src, a)`` fans out to ``width`` middle relations ``M1 ... Mw`` (all
    consuming the same ``a`` value), whose outputs reconverge as the
    attributes of a single ``Bottom(x1, ..., xw)`` fact reached through the
    first middle's output.  The top access is long-term relevant: every
    middle access and the bottom access transitively depend on its output.
    """
    if width < 2:
        raise ValueError("a diamond needs at least two middle relations")
    builder = SchemaBuilder()
    builder.domain("S")
    builder.domain("A")
    builder.relation("Top", [("src", "S"), ("a", "A")])
    builder.access("accTop", "Top", inputs=["src"], dependent=True)
    for index in range(1, width + 1):
        builder.domain(f"X{index}")
        builder.relation(f"M{index}", [("a", "A"), ("x", f"X{index}")])
        builder.access(f"accM{index}", f"M{index}", inputs=["a"], dependent=True)
    builder.relation(
        "Bottom", [(f"x{index}", f"X{index}") for index in range(1, width + 1)]
    )
    builder.access("accBottom", "Bottom", inputs=["x1"], dependent=True)
    schema = builder.build()

    middles = ", ".join(f"M{index}(a, x{index})" for index in range(1, width + 1))
    bottom = "Bottom(" + ", ".join(f"x{index}" for index in range(1, width + 1)) + ")"
    query = parse_cq(schema, f"{middles}, {bottom}", name=f"diamond-{width}")

    configuration = Configuration.empty(schema)
    configuration.add_constant("start", schema.relation("Top").domain_of(0))

    hidden = Instance(schema)
    hidden.add("Top", ("start", "a0"))
    for index in range(1, width + 1):
        hidden.add(f"M{index}", ("a0", f"x{index}_0"))
    hidden.add(
        "Bottom", tuple(f"x{index}_0" for index in range(1, width + 1))
    )

    access = Access(schema.access_method("accTop"), ("start",))
    return RelevanceScenario(
        f"diamond-{width}",
        schema,
        configuration,
        query,
        access,
        expected_long_term=True,
        hidden_instance=hidden,
    )


def small_arity_scenario(length: int = 3) -> RelevanceScenario:
    """Binary relations, dependent accesses, connected query (Theorem 6.1)."""
    scenario = dependent_chain_scenario(length)
    return RelevanceScenario(
        f"small-arity-{length}",
        scenario.schema,
        scenario.configuration,
        scenario.query,
        scenario.access,
        expected_long_term=True,
    )


def containment_example_scenario() -> Tuple[Schema, Configuration, ConjunctiveQuery, ConjunctiveQuery]:
    """Example 3.2: containment holds under access limitations but not classically."""
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D")])
    builder.relation("S", [("a", "D")])
    builder.access("accR", "R", inputs=["a"], dependent=True)
    builder.access("accS", "S", inputs=[], dependent=True)
    schema = builder.build()
    query_r = parse_cq(schema, "R(x)", name="Q1")
    query_s = parse_cq(schema, "S(x)", name="Q2")
    return schema, Configuration.empty(schema), query_r, query_s
