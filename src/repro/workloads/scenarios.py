"""Named scenarios used by the benchmarks and the integration tests.

Each scenario packages a schema, a configuration, a query, and an access, so
that every benchmark row of EXPERIMENTS.md is regenerated from a single named
entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.data import Configuration
from repro.queries import ConjunctiveQuery, PositiveQuery, parse_cq, parse_pq
from repro.schema import Access, Schema, SchemaBuilder
from repro.workloads.generators import chain_schema
from repro.workloads.query_generators import chain_query, random_cq, random_pq

__all__ = [
    "RelevanceScenario",
    "independent_scenario",
    "independent_pq_scenario",
    "dependent_chain_scenario",
    "small_arity_scenario",
    "containment_example_scenario",
]


@dataclass(frozen=True)
class RelevanceScenario:
    """A packaged relevance problem instance."""

    name: str
    schema: Schema
    configuration: Configuration
    query: object
    access: Access
    expected_immediate: Optional[bool] = None
    expected_long_term: Optional[bool] = None


def independent_scenario(query_size: int = 3, seed: int = 1) -> RelevanceScenario:
    """Independent accesses, random CQ of the requested size (Table 1 rows 1–2)."""
    builder = SchemaBuilder()
    builder.domain("D")
    for index in range(3):
        relation = builder.relation(
            f"R{index}", [("a", "D"), ("b", "D")][: 2 if index else 2]
        )
        builder.access(f"m{index}", relation, inputs=[0], dependent=False)
    schema = builder.build()
    query = random_cq(schema, atoms=query_size, variables=query_size + 1, seed=seed)
    configuration = Configuration(schema, {"R0": [("d0", "d1")]})
    access = Access(schema.access_method("m0"), ("d0",))
    return RelevanceScenario("independent", schema, configuration, query, access)


def independent_pq_scenario(disjuncts: int = 2, seed: int = 3) -> RelevanceScenario:
    """Independent accesses, random positive query (Table 1 row 2)."""
    base = independent_scenario(seed=seed)
    query = random_pq(base.schema, disjuncts=disjuncts, seed=seed)
    return RelevanceScenario(
        "independent-pq", base.schema, base.configuration, query, base.access
    )


def dependent_chain_scenario(length: int = 3) -> RelevanceScenario:
    """Dependent chained accesses: the access feeds a chain of joins (row 3).

    The configuration knows a single start constant; the access on ``L1``
    with that constant is long-term relevant because its outputs feed the
    ``L2`` access, and so on down the chain (Example 2.1 generalised).
    """
    schema = chain_schema(length, dependent=True)
    query = chain_query(schema, length)
    configuration = Configuration.empty(schema)
    domain = schema.relation("L1").domain_of(0)
    configuration.add_constant("start", domain)
    access = Access(schema.access_method("accL1"), ("start",))
    return RelevanceScenario(
        f"dependent-chain-{length}",
        schema,
        configuration,
        query,
        access,
        expected_long_term=True,
    )


def small_arity_scenario(length: int = 3) -> RelevanceScenario:
    """Binary relations, dependent accesses, connected query (Theorem 6.1)."""
    scenario = dependent_chain_scenario(length)
    return RelevanceScenario(
        f"small-arity-{length}",
        scenario.schema,
        scenario.configuration,
        scenario.query,
        scenario.access,
        expected_long_term=True,
    )


def containment_example_scenario() -> Tuple[Schema, Configuration, ConjunctiveQuery, ConjunctiveQuery]:
    """Example 3.2: containment holds under access limitations but not classically."""
    builder = SchemaBuilder()
    builder.domain("D")
    builder.relation("R", [("a", "D")])
    builder.relation("S", [("a", "D")])
    builder.access("accR", "R", inputs=["a"], dependent=True)
    builder.access("accS", "S", inputs=[], dependent=True)
    schema = builder.build()
    query_r = parse_cq(schema, "R(x)", name="Q1")
    query_s = parse_cq(schema, "S(x)", name="Q2")
    return schema, Configuration.empty(schema), query_r, query_s
