"""Facade API for relevance decisions.

:func:`is_immediately_relevant` and :func:`is_long_term_relevant` are the two
entry points a query engine needs (Section 1's motivating scenario): given
what is currently known (the configuration), should a particular access be
made at all?

``is_long_term_relevant`` dispatches on the structure of the problem:

* every access method independent → the Σ₂ᵖ procedure of Proposition 4.5,
  with the polynomial fast path of Proposition 4.3 when the accessed relation
  occurs exactly once in a conjunctive query;
* dependent accesses present → the direct bounded witness search (default),
  or the containment-oracle procedures of Propositions 3.5 / 3.4 when
  ``method`` requests them.
"""

from __future__ import annotations

from typing import Optional

from repro.data import Configuration
from repro.exceptions import QueryError, SearchBudgetExceeded
from repro.queries import ConjunctiveQuery
from repro.core.containment import ContainmentOptions
from repro.core.immediate import is_immediately_relevant
from repro.core.longterm_dependent import (
    find_ltr_witness_steps,
    is_ltr_via_containment_cq,
    is_ltr_via_containment_pq,
)
from repro.core.longterm_independent import (
    is_ltr_independent,
    is_ltr_single_occurrence,
)
from repro.schema import Access, Schema

__all__ = [
    "is_immediately_relevant",
    "is_long_term_relevant",
    "long_term_relevance_with_witness",
]


def is_long_term_relevant(
    query,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    *,
    method: str = "auto",
    options: Optional[ContainmentOptions] = None,
    on_budget_trip=None,
) -> bool:
    """Decide whether ``access`` is long-term relevant for a Boolean ``query``.

    Parameters
    ----------
    method:
        ``"auto"`` (default) picks the procedure matching the paper's case
        analysis; ``"direct"`` forces the bounded witness search;
        ``"containment-cq"`` and ``"containment-pq"`` force the
        Proposition 3.5 / 3.4 reductions; ``"independent"`` forces the
        Proposition 4.5 procedure (only valid when all methods are
        independent); ``"single-occurrence"`` forces Proposition 4.3.
    """
    verdict, _steps = long_term_relevance_with_witness(
        query,
        access,
        configuration,
        schema,
        method=method,
        options=options,
        on_budget_trip=on_budget_trip,
    )
    return verdict


def long_term_relevance_with_witness(
    query,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    *,
    method: str = "auto",
    options: Optional[ContainmentOptions] = None,
    on_budget_trip=None,
):
    """Decide long-term relevance, returning ``(verdict, steps)``.

    This holds the single copy of the ``method`` dispatch table;
    :func:`is_long_term_relevant` is a facade over it.  ``steps`` is the
    witness path of the direct search (the raw material of
    :class:`repro.runtime.witness.LtrWitness`) when the dispatched procedure
    is the direct search and the verdict is positive; ``None`` otherwise —
    the reduction-based and independent-schema procedures decide without
    constructing a reusable path.

    Anytime mode: with ``options.time_budget_s`` set, a containment-based
    procedure that trips its wall-clock budget
    (:class:`~repro.exceptions.SearchBudgetExceeded`) falls back to the
    direct bounded witness search — sound and more conservative, and it may
    even return a reusable witness path the reduction could not.
    ``on_budget_trip`` (if given) is invoked once per fallback, before the
    direct search runs — the oracle hooks its budget-trip counter here.
    """
    if not query.is_boolean:
        raise QueryError(
            "long-term relevance is defined for Boolean queries; reduce "
            "non-Boolean queries first (Proposition 2.2)"
        )

    if method == "containment-cq":
        try:
            return (
                is_ltr_via_containment_cq(
                    query, access, configuration, schema, options=options
                ),
                None,
            )
        except SearchBudgetExceeded:
            if on_budget_trip is not None:
                on_budget_trip()
            steps = find_ltr_witness_steps(
                query, access, configuration, schema, options=options
            )
            return steps is not None, steps
    if method == "containment-pq":
        try:
            return (
                is_ltr_via_containment_pq(
                    query, access, configuration, schema, options=options
                ),
                None,
            )
        except SearchBudgetExceeded:
            if on_budget_trip is not None:
                on_budget_trip()
            steps = find_ltr_witness_steps(
                query, access, configuration, schema, options=options
            )
            return steps is not None, steps
    if method == "independent":
        return is_ltr_independent(query, access, configuration, schema), None
    if method == "single-occurrence":
        return is_ltr_single_occurrence(query, access, configuration), None
    if method not in ("auto", "direct"):
        raise QueryError(f"unknown long-term relevance method {method!r}")

    if method == "auto" and schema.all_independent():
        if (
            isinstance(query, ConjunctiveQuery)
            and query.occurrences(access.relation.name) == 1
            and all(schema.has_access(name) for name in query.relation_names())
        ):
            return is_ltr_single_occurrence(query, access, configuration), None
        return is_ltr_independent(query, access, configuration, schema), None

    steps = find_ltr_witness_steps(
        query, access, configuration, schema, options=options
    )
    return steps is not None, steps
