"""Long-term relevance in the presence of dependent accesses (Section 5).

Three procedures are provided, all for Boolean queries:

* :func:`is_ltr_direct` — a direct bounded search for a witness path, valid
  for any mix of dependent and independent access methods and any access.
  It mirrors the definition: guess which subgoals the first access witnesses,
  produce the remaining subgoals by a well-formed path (support chains
  included), and check that the query fails at the end of the truncated path.
* :func:`is_ltr_via_containment_cq` — the nondeterministic polynomial-time
  Turing reduction of Proposition 3.5 for conjunctive queries: loop over the
  proper subsets of the access-compatible subgoals and call the containment
  oracle.
* :func:`is_ltr_via_containment_pq` — the many-one reduction of
  Proposition 3.4 for positive queries and Boolean accesses: rewrite the
  query with an ``IsBind`` relation and test non-containment.

The direct search is the default used by the facade
(:func:`repro.core.relevance.is_long_term_relevant`); the reduction-based
procedures exist to make the paper's reductions executable and are
cross-checked against the direct search in the test suite.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data import (
    AccessPath,
    AccessResponse,
    Configuration,
    Fact,
    is_well_formed,
)
from repro.exceptions import QueryError
from repro.queries import (
    ConjunctiveQuery,
    PositiveQuery,
    evaluate_boolean,
    is_certain,
)
from repro.queries.terms import is_variable
from repro.chase import iter_production_plans
from repro.core.assignments import iter_witness_assignments
from repro.core.containment import ContainmentOptions, SearchDeadline, decide_containment
from repro.core.reductions import ltr_to_containment
from repro.schema import Access, Schema

__all__ = [
    "ContainmentMemo",
    "containment_cq_memo",
    "is_ltr_direct",
    "find_ltr_witness_steps",
    "is_ltr_via_containment_cq",
    "is_ltr_via_containment_pq",
]


def _disjuncts(query) -> Sequence[ConjunctiveQuery]:
    if isinstance(query, ConjunctiveQuery):
        return (query,)
    if isinstance(query, PositiveQuery):
        return query.to_ucq()
    raise QueryError(f"unsupported query type {type(query)!r}")


def _witnessable_atom_checker(disjunct, configuration, schema, access):
    """Per-atom feasibility for the witness-assignment enumeration.

    A ground subgoal can participate in a witness when it is already in the
    configuration, can be part of the probed access's response, or lies in a
    relation that later accesses can produce.  Atoms over relations with an
    access method are always witnessable, so the check short-circuits to the
    interesting cases.
    """
    atoms = disjunct.atoms
    always = [schema.has_access(atom.relation.name) for atom in atoms]
    access_relation = access.relation.name if access is not None else None

    def feasible(atom_index: int, values) -> bool:
        if always[atom_index]:
            return True
        atom = atoms[atom_index]
        if configuration.contains(atom.relation.name, values):
            return True
        if access is not None and atom.relation.name == access_relation:
            return access.matches(values)
        return False

    return feasible


def find_ltr_witness_steps(
    query,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    *,
    options: Optional[ContainmentOptions] = None,
    max_assignments: Optional[int] = 200000,
) -> Optional[Tuple[AccessResponse, ...]]:
    """Bounded direct search for a long-term relevance witness path.

    Returns the steps of a well-formed path that starts with ``access``,
    makes the query true at its end, and whose truncation does not satisfy
    the query — or ``None`` when no witness was found within the budgets.
    The returned steps are the raw material of the incremental engine in
    :mod:`repro.runtime.witness`: a stored path can be *revalidated* against
    a later configuration in time linear in its length instead of redoing
    this search.

    Sound: any non-``None`` answer is backed by the explicit path.  Complete
    up to the search budgets (fresh constants per domain, support facts,
    plans per guess).

    Two witness shapes are explored:

    1. the first access witnesses one or more subgoals of the query (the only
       shape possible for Boolean accesses, and the shape the paper's
       Section 5 procedures cover);
    2. for non-Boolean accesses, the first access contributes only *values*:
       its response is a single generic fact (binding at the input places,
       fresh values at the outputs) whose fresh values later dependent
       accesses consume — the EmpManAcc pattern of the paper's introduction.
       The paper leaves non-Boolean accesses to future work; this mode is the
       natural extension.
    """
    if not query.is_boolean:
        raise QueryError("long-term relevance is defined for Boolean queries")
    options = options or ContainmentOptions()
    if not is_well_formed(access, configuration):
        return None
    if is_certain(query, configuration):
        return None

    searched: set = set()
    for disjunct in _disjuncts(query):
        variables = disjunct.variables
        variable_domains = disjunct.variable_domains()
        fresh_count = max(1, len(variables))
        for assignment in iter_witness_assignments(
            disjunct.atoms,
            variable_domains,
            configuration,
            access,
            schema=schema,
            fresh_per_domain=fresh_count,
            max_assignments=max_assignments,
            atom_feasible=_witnessable_atom_checker(
                disjunct, configuration, schema, access
            ),
        ):
            first_facts: List[Fact] = []
            later_facts: List[Fact] = []
            feasible = True
            for atom in disjunct.atoms:
                values = atom.ground_values(assignment)
                if configuration.contains(atom.relation.name, values):
                    continue
                if atom.relation.name == access.relation.name and access.matches(values):
                    first_facts.append(Fact(atom.relation.name, values))
                    continue
                if schema.has_access(atom.relation.name):
                    later_facts.append(Fact(atom.relation.name, values))
                    continue
                feasible = False
                break
            if not feasible or not first_facts:
                continue
            # Distinct assignments frequently ground to the same fact sets
            # (they differ only on variables absorbed by the configuration);
            # one production-plan search per fact-set suffices.
            search_key = (frozenset(first_facts), frozenset(later_facts))
            if search_key in searched:
                continue
            searched.add(search_key)

            first_response = AccessResponse(
                access, tuple(fact.values for fact in first_facts)
            )
            after_first = configuration.extended_with(first_facts)
            for plan in iter_production_plans(
                schema,
                after_first,
                later_facts,
                max_support_facts=options.max_support_facts,
                max_plans=options.max_plans_per_assignment,
                support_value_choices=options.support_value_choices,
                max_nodes=options.max_nodes,
            ):
                steps = (first_response,) + tuple(plan.path.steps)
                full_path = AccessPath(configuration, list(steps))
                with full_path.truncation_view() as truncated:
                    if not evaluate_boolean(query, truncated):
                        return steps

    return _ltr_via_generic_response(
        query, access, configuration, schema, options, max_assignments
    )


def is_ltr_direct(
    query,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    *,
    options: Optional[ContainmentOptions] = None,
    max_assignments: Optional[int] = 200000,
) -> bool:
    """Boolean facade over :func:`find_ltr_witness_steps`."""
    return (
        find_ltr_witness_steps(
            query,
            access,
            configuration,
            schema,
            options=options,
            max_assignments=max_assignments,
        )
        is not None
    )


def _ltr_via_generic_response(
    query,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    options: ContainmentOptions,
    max_assignments: Optional[int],
) -> Optional[Tuple[AccessResponse, ...]]:
    """Witness shape 2: the first access only contributes fresh output values."""
    method = access.method
    if not method.output_places:
        return None

    # A generic response can matter in exactly two ways: a later dependent
    # access (target or support) consumes one of its fresh output values, or
    # a query subgoal is mapped onto the generic fact itself (so the
    # truncation loses it).  When no dependent method consumes any of the
    # output domains and no subgoal is binding-compatible, neither can
    # happen and the whole search is provably fruitless.
    relation = method.relation
    output_domains = {relation.domain_of(place) for place in method.output_places}
    consumable = {
        other.relation.domain_of(place)
        for other in schema.access_methods
        if other.dependent
        for place in other.input_places
    }
    if not (output_domains & consumable):
        compatible_subgoal = any(
            _compatible_with_access(atom, access)
            for disjunct in _disjuncts(query)
            for atom in disjunct.atoms
        )
        if not compatible_subgoal:
            return None

    from repro.chase.fresh import FreshConstants

    fresh = FreshConstants({value for value, _ in configuration.active_domain()})
    relation = method.relation
    values: List[object] = [None] * relation.arity
    for place, bound in access.binding_by_place.items():
        values[place] = bound
    for place in method.output_places:
        fresh_value = fresh.new(relation.domain_of(place))
        if fresh_value is None:
            return None
        values[place] = fresh_value
    first_fact = Fact(relation.name, tuple(values))
    first_response = AccessResponse(access, (tuple(values),))
    after_first = configuration.extended_with([first_fact])
    # The interesting witnesses are the ones that consume the first access's
    # fresh outputs; try those values first when enumerating assignments.
    fresh_outputs = tuple(values[place] for place in method.output_places)

    searched: set = set()
    for disjunct in _disjuncts(query):
        variable_domains = disjunct.variable_domains()
        fresh_count = max(1, len(disjunct.variables))
        for assignment in iter_witness_assignments(
            disjunct.atoms,
            variable_domains,
            after_first,
            None,
            schema=schema,
            fresh_per_domain=fresh_count,
            max_assignments=max_assignments,
            prefer_fresh=True,
            preferred_values=fresh_outputs,
            atom_feasible=_witnessable_atom_checker(
                disjunct, after_first, schema, None
            ),
        ):
            later_facts: List[Fact] = []
            feasible = True
            for atom in disjunct.atoms:
                atom_values = atom.ground_values(assignment)
                if after_first.contains(atom.relation.name, atom_values):
                    continue
                if schema.has_access(atom.relation.name):
                    later_facts.append(Fact(atom.relation.name, atom_values))
                    continue
                feasible = False
                break
            if not feasible or not later_facts:
                continue
            search_key = frozenset(later_facts)
            if search_key in searched:
                continue
            searched.add(search_key)
            for plan in iter_production_plans(
                schema,
                after_first,
                later_facts,
                max_support_facts=options.max_support_facts,
                max_plans=options.max_plans_per_assignment,
                support_value_choices=options.support_value_choices,
                max_nodes=options.max_nodes,
            ):
                steps = (first_response,) + tuple(plan.path.steps)
                full_path = AccessPath(configuration, list(steps))
                with full_path.truncation_view() as truncated:
                    if not evaluate_boolean(query, truncated):
                        return steps
    return None


def _compatible_with_access(atom, access: Access) -> bool:
    """Whether a subgoal could be witnessed by the access (Proposition 3.5)."""
    if atom.relation.name != access.relation.name:
        return False
    for place, bound_value in access.binding_by_place.items():
        term = atom.terms[place]
        if not is_variable(term) and term != bound_value:
            return False
    return True


class ContainmentMemo:
    """Bounded LRU memo of Proposition 3.5 verdicts, shared across calls.

    Every :func:`is_ltr_via_containment_cq` verdict is a pure function of the
    query's canonical form, the probed access (method name and binding), the
    configuration's fingerprint, the schema's relations and access methods
    (value tuples of frozen objects, so a rebuilt-but-equal schema shares
    entries), and the containment options.  One subset loop can issue dozens
    of containment-oracle calls, so repeated probes — the same access screened
    at an unchanged configuration across rounds, or structurally identical
    bindings — pay for the search once.

    Thread-safe; the process-pool relevance workers each hold their own
    process-local instance.  :meth:`stats` follows the
    :meth:`~repro.runtime.metrics.RuntimeMetrics.register_cache` protocol so
    the hit/miss counters surface in metrics snapshots.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self._entries: "OrderedDict[Tuple[object, ...], bool]" = OrderedDict()
        self._lock = threading.Lock()
        self._max_entries = max_entries
        self._hits = 0
        self._misses = 0

    def lookup(self, key: Tuple[object, ...]) -> Optional[bool]:
        """The memoized verdict, or ``None`` on a miss (counted)."""
        with self._lock:
            try:
                verdict = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return verdict

    def store(self, key: Tuple[object, ...], verdict: bool) -> None:
        """Record a verdict, evicting least-recently-used entries if full."""
        with self._lock:
            self._entries[key] = verdict
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hit_rate": self._hits / total if total else 0.0,
            }

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = 0
            self._misses = 0


_CONTAINMENT_CQ_MEMO = ContainmentMemo()


def containment_cq_memo() -> ContainmentMemo:
    """The process-wide memo behind :func:`is_ltr_via_containment_cq`."""
    return _CONTAINMENT_CQ_MEMO


def is_ltr_via_containment_cq(
    query: ConjunctiveQuery,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    *,
    options: Optional[ContainmentOptions] = None,
) -> bool:
    """Proposition 3.5: LTR for a CQ via an oracle for containment.

    Splits the query into access-compatible subgoals ``Q1`` and the rest
    ``Q2``; the access is long-term relevant iff, for some proper subset
    ``Q1' ⊊ Q1``, the query ``Q1' ∧ Q2`` is *not* contained in ``Q`` under
    access limitations starting from the configuration.

    Verdicts are memoized in :func:`containment_cq_memo`, keyed by the
    canonical forms of every input the verdict depends on; the validation
    errors above the key construction are never cached.

    Anytime mode: when ``options.time_budget_s`` is set, the whole subset
    sweep shares one wall-clock budget and raises
    :class:`~repro.exceptions.SearchBudgetExceeded` when it trips.  A
    tripped decision is *not* memoized (the memo key carries no wall-clock,
    and a budget-starved verdict must not shadow a later full one); the
    relevance facade catches the exception and falls back to the sound,
    more conservative direct witness search.
    """
    if not isinstance(query, ConjunctiveQuery):
        raise QueryError("Proposition 3.5 applies to conjunctive queries")
    if not query.is_boolean:
        raise QueryError("long-term relevance is defined for Boolean queries")
    if not is_well_formed(access, configuration):
        return False

    memo = _CONTAINMENT_CQ_MEMO
    key = (
        query.canonical_form(),
        access.method.name,
        tuple(access.binding),
        configuration.fingerprint(),
        tuple(schema.relations),
        tuple(schema.access_methods),
        options,
    )
    cached = memo.lookup(key)
    if cached is not None:
        return cached
    verdict = _ltr_via_containment_cq_search(
        query, access, configuration, schema, options
    )
    memo.store(key, verdict)
    return verdict


def _ltr_via_containment_cq_search(
    query: ConjunctiveQuery,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    options: Optional[ContainmentOptions],
) -> bool:
    deadline = SearchDeadline.from_options(options)
    # Partition by occurrence *index*, not by atom equality: a query may
    # repeat a subgoal, and the membership split ``atom not in compatible``
    # silently moves every equal copy to the compatible side, conflating
    # distinct occurrences (and the subsets built from them).
    compatible_indices = [
        index
        for index, atom in enumerate(query.atoms)
        if _compatible_with_access(atom, access)
    ]
    compatible_set = set(compatible_indices)
    others = [
        atom
        for index, atom in enumerate(query.atoms)
        if index not in compatible_set
    ]
    if not compatible_indices:
        return False

    for size in range(len(compatible_indices)):
        for subset in itertools.combinations(compatible_indices, size):
            if deadline is not None:
                deadline.check()
            lhs_atoms = [query.atoms[index] for index in subset] + others
            if not lhs_atoms:
                # The empty conjunction is identically true; it is contained in
                # Q iff Q holds at every reachable configuration, and the
                # initial configuration is reachable.
                if not is_certain(query, configuration):
                    return True
                continue
            lhs = ConjunctiveQuery(tuple(lhs_atoms), (), f"{query.name}_guess")
            if not decide_containment(
                lhs, query, schema, configuration, options, deadline
            ):
                return True
    return False


def is_ltr_via_containment_pq(
    query,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    *,
    options: Optional[ContainmentOptions] = None,
) -> bool:
    """Proposition 3.4: LTR for a positive query via one non-containment test.

    Rewrites the query with the ``IsBind`` relation and checks that the
    rewriting is not contained in the original query under access limitations
    starting from the extended configuration.
    """
    if not query.is_boolean:
        raise QueryError("long-term relevance is defined for Boolean queries")
    if not is_well_formed(access, configuration):
        return False
    instance = ltr_to_containment(query, access, configuration, schema)
    return not decide_containment(
        instance.contained_query,
        instance.containing_query,
        instance.schema,
        instance.configuration,
        options,
        SearchDeadline.from_options(options),
    )
