"""Containment under access limitations (Definition 3.1, Theorems 5.1/5.2/5.6).

``Q1 ⊑_{ACS, Conf} Q2`` holds when ``Q1(Conf') ⊆ Q2(Conf')`` for every
configuration ``Conf'`` reachable from ``Conf`` by well-formed accesses.  For
Boolean monotone queries, *non*-containment is witnessed by a reachable
configuration where ``Q1`` holds and ``Q2`` does not.

The decision procedure searches for such a witness, following the tree-like
(crayfish-chase) shape that the paper's upper-bound proofs establish:

1. pick a disjunct of ``Q1`` (DNF) and an assignment of its variables into
   the active domain of ``Conf`` plus fresh constants;
2. the facts of the disjunct's image that are not already in ``Conf`` must be
   produced by a well-formed access path; :func:`repro.chase.iter_production_plans`
   enumerates such paths, introducing *support facts* whenever a dependent
   input needs a value that no previous access has emitted;
3. the witness is accepted when ``Q2`` is false on the final configuration.

The witness size for dependent accesses is exponential in the worst case
(Theorem 5.1's tiling lower bound), so the search is *bounded*: the caller
controls the budgets through :class:`ContainmentOptions`.  Within the budget
the procedure is sound in both directions on the benchmark workloads; when
the budget is exhausted without finding a witness the procedure answers
"contained", which matches the asymmetric use made of it by the long-term
relevance algorithms (a missed witness can only make relevance answers more
conservative).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from repro.data import Configuration, Fact
from repro.exceptions import QueryError, SearchBudgetExceeded
from repro.queries import (
    ConjunctiveQuery,
    PositiveQuery,
    evaluate_boolean,
)
from repro.queries.terms import Variable
from repro.chase import iter_production_plans
from repro.core.assignments import iter_witness_assignments
from repro.schema import Schema

__all__ = [
    "ContainmentOptions",
    "ContainmentWitness",
    "SearchDeadline",
    "find_non_containment_witness",
    "decide_containment",
    "decide_cm_containment",
]


@dataclass(frozen=True)
class ContainmentOptions:
    """Search budgets for the containment procedure."""

    #: Fresh values made available per abstract domain when guessing the
    #: homomorphism of the contained query (defaults to the number of
    #: variables when ``None``).
    fresh_per_domain: Optional[int] = None
    #: Maximum number of support facts per production plan.
    max_support_facts: int = 4
    #: Maximum number of production plans considered per homomorphism guess.
    max_plans_per_assignment: int = 32
    #: Maximum number of homomorphism guesses per disjunct.
    max_assignments: Optional[int] = 200000
    #: Maximum number of DNF disjuncts of the contained query.
    max_disjuncts: int = 4096
    #: Number of available values tried per dependent input of a support fact.
    support_value_choices: int = 2
    #: Global cap on nodes explored by each production-plan search.
    max_nodes: int = 20000
    #: Wall-clock budget for one containment-*based* decision (the whole
    #: subset sweep of ``is_ltr_via_containment_cq``, not each inner
    #: containment call).  ``None`` disables the budget.  When the budget
    #: trips, :class:`~repro.exceptions.SearchBudgetExceeded` is raised and
    #: the relevance facade falls back to the sound direct witness search.
    time_budget_s: Optional[float] = None


class SearchDeadline:
    """A monotonic wall-clock budget threaded through a containment sweep.

    One instance covers a whole anytime decision (e.g. every subset the
    LTR-via-containment reduction tries); the loops of
    :func:`find_non_containment_witness` call :meth:`check` between
    assignments so a single pathological search also respects it.
    """

    __slots__ = ("_expires_at", "checked")

    def __init__(self, budget_s: float) -> None:
        self._expires_at = time.monotonic() + budget_s
        self.checked = 0

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self) -> None:
        """Raise :class:`SearchBudgetExceeded` once the budget is spent."""
        self.checked += 1
        if self.expired():
            raise SearchBudgetExceeded(
                "containment time budget exhausted", explored=self.checked
            )

    @classmethod
    def from_options(cls, options: Optional[ContainmentOptions]) -> Optional["SearchDeadline"]:
        if options is None or options.time_budget_s is None:
            return None
        return cls(options.time_budget_s)


@dataclass(frozen=True)
class ContainmentWitness:
    """A witness of non-containment: the reached configuration and its facts."""

    configuration: Configuration
    new_facts: Tuple[Fact, ...]


def _disjuncts(query, options: ContainmentOptions) -> Sequence[ConjunctiveQuery]:
    if isinstance(query, ConjunctiveQuery):
        return (query,)
    if isinstance(query, PositiveQuery):
        return query.to_ucq(max_disjuncts=options.max_disjuncts)
    raise QueryError(f"unsupported query type {type(query)!r}")


def _check_boolean(query, role: str) -> None:
    if not query.is_boolean:
        raise QueryError(
            f"containment under access limitations is implemented for Boolean "
            f"queries; {role} has arity {len(query.free_variables)}"
        )


def find_non_containment_witness(
    query1,
    query2,
    schema: Schema,
    configuration: Optional[Configuration] = None,
    options: Optional[ContainmentOptions] = None,
    deadline: Optional[SearchDeadline] = None,
) -> Optional[ContainmentWitness]:
    """Search for a reachable configuration satisfying ``query1`` but not ``query2``.

    Returns a witness, or ``None`` when no witness was found within the
    budgets (which the caller interprets as containment).  When ``deadline``
    is given, the assignment loop raises
    :class:`~repro.exceptions.SearchBudgetExceeded` as soon as the shared
    wall-clock budget is spent (anytime mode; the caller owns the fallback).
    """
    options = options or ContainmentOptions()
    configuration = (
        configuration
        if configuration is not None
        else Configuration.empty(schema)
    )
    _check_boolean(query1, "the contained query")
    _check_boolean(query2, "the containing query")

    # The query constants are assumed present in the configuration (Section 2).
    configuration = configuration.with_constants(
        query1.constants_with_domains() | query2.constants_with_domains()
    )

    # The empty path: the initial configuration is reachable.
    if evaluate_boolean(query1, configuration) and not evaluate_boolean(
        query2, configuration
    ):
        return ContainmentWitness(configuration.copy(), ())

    for disjunct in _disjuncts(query1, options):
        variables = disjunct.variables
        variable_domains = disjunct.variable_domains()
        fresh_count = (
            options.fresh_per_domain
            if options.fresh_per_domain is not None
            else max(1, len(variables))
        )
        disjunct_atoms = disjunct.atoms

        def atom_feasible(atom_index: int, values, _atoms=disjunct_atoms) -> bool:
            atom = _atoms[atom_index]
            return configuration.contains(
                atom.relation.name, values
            ) or schema.has_access(atom.relation.name)

        for assignment in iter_witness_assignments(
            disjunct.atoms,
            variable_domains,
            configuration,
            None,
            schema=schema,
            fresh_per_domain=fresh_count,
            max_assignments=options.max_assignments,
            atom_feasible=atom_feasible,
        ):
            if deadline is not None:
                deadline.check()
            target_facts = []
            feasible = True
            for atom in disjunct.atoms:
                values = atom.ground_values(assignment)
                if configuration.contains(atom.relation.name, values):
                    continue
                if not schema.has_access(atom.relation.name):
                    feasible = False
                    break
                target_facts.append(Fact(atom.relation.name, values))
            if not feasible:
                continue
            if not target_facts:
                # The disjunct holds already; only relevant if query2 fails,
                # which the empty-path check above already covered.
                continue
            # Monotone pruning: if query2 already holds on the targets alone,
            # every plan (which can only add support facts) also satisfies it.
            direct = configuration.extended_with(target_facts)
            if evaluate_boolean(query2, direct):
                continue
            for plan in iter_production_plans(
                schema,
                configuration,
                target_facts,
                max_support_facts=options.max_support_facts,
                max_plans=options.max_plans_per_assignment,
                support_value_choices=options.support_value_choices,
                max_nodes=options.max_nodes,
            ):
                final = plan.final_configuration()
                if not evaluate_boolean(query2, final):
                    return ContainmentWitness(final, plan.all_new_facts())
    return None


def decide_containment(
    query1,
    query2,
    schema: Schema,
    configuration: Optional[Configuration] = None,
    options: Optional[ContainmentOptions] = None,
    deadline: Optional[SearchDeadline] = None,
) -> bool:
    """Decide ``query1 ⊑_{ACS, Conf} query2`` (config-containment)."""
    witness = find_non_containment_witness(
        query1, query2, schema, configuration, options, deadline
    )
    return witness is None


def decide_cm_containment(
    query1,
    query2,
    schema: Schema,
    constants: Sequence[Tuple[object, object]] = (),
    options: Optional[ContainmentOptions] = None,
) -> bool:
    """Calì–Martinenghi containment (Proposition 3.6's special case).

    CM-containment requires exactly one access method per relation (relations
    without access methods play the role of the *artificial relations* of
    [5]) and is defined with respect to a set of pre-existing constants rather
    than a configuration of ground facts.  It is decided by building the
    configuration that holds exactly those constants and calling the
    config-containment procedure.
    """
    for relation in schema.relations:
        if len(schema.methods_for(relation)) > 1:
            raise QueryError(
                f"CM-containment requires at most one access method per "
                f"relation; {relation.name!r} has "
                f"{len(schema.methods_for(relation))}"
            )
    configuration = Configuration.empty(schema)
    for value, domain in constants:
        configuration.add_constant(value, domain)
    return decide_containment(query1, query2, schema, configuration, options)
