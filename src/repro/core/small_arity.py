"""The small-arity tractable case (Section 6, Theorem 6.1).

When every relation has arity at most two, every access method is dependent,
and the query is connected, long-term relevance is decidable in polynomial
space.  The proof re-arranges a witness path into at most ``|Q|`` linear
*chains* — sequences of accesses in which each access's input is the output
of the previous one — plus at most ``|Q|`` extra facts that introduce no new
element, and explores an automaton over chain "types".

This module exposes :func:`is_ltr_small_arity`, which checks the structural
preconditions of Theorem 6.1 and then runs the direct witness search of
:func:`repro.core.longterm_dependent.is_ltr_direct` with budgets derived from
the chain bound (at most ``chain_length_bound`` support facts, i.e. chain
links, per witness).  The point of the wrapper is twofold: it documents and
enforces the hypotheses of the theorem, and it gives the benchmark for the
small-arity case an explicit knob corresponding to the chain length explored.
"""

from __future__ import annotations

from typing import Optional

from repro.data import Configuration
from repro.exceptions import QueryError
from repro.queries import ConjunctiveQuery, PositiveQuery
from repro.core.containment import ContainmentOptions
from repro.core.longterm_dependent import is_ltr_direct
from repro.schema import Access, Schema

__all__ = ["check_small_arity_preconditions", "is_ltr_small_arity"]


def check_small_arity_preconditions(query, schema: Schema) -> None:
    """Raise :class:`~repro.exceptions.QueryError` unless Theorem 6.1 applies."""
    if schema.max_arity() > 2:
        raise QueryError(
            "Theorem 6.1 requires every relation to have arity at most 2; "
            f"the schema has maximum arity {schema.max_arity()}"
        )
    if not schema.all_dependent():
        raise QueryError("Theorem 6.1 requires every access method to be dependent")
    if isinstance(query, ConjunctiveQuery) and not query.is_connected():
        raise QueryError("Theorem 6.1 requires a connected query")
    if isinstance(query, PositiveQuery):
        for disjunct in query.to_ucq():
            if not disjunct.is_connected():
                raise QueryError(
                    "Theorem 6.1 requires every disjunct of the query to be connected"
                )


def is_ltr_small_arity(
    query,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    *,
    chain_length_bound: int = 6,
    max_plans_per_assignment: int = 64,
) -> bool:
    """Long-term relevance in the small-arity case.

    ``chain_length_bound`` bounds the number of chain links (support facts)
    explored per candidate witness; Theorem 6.1 guarantees a witness whose
    chains visit each state of the chain automaton at most once, so in the
    benchmark workloads a small bound is exact.
    """
    check_small_arity_preconditions(query, schema)
    options = ContainmentOptions(
        max_support_facts=chain_length_bound,
        max_plans_per_assignment=max_plans_per_assignment,
    )
    return is_ltr_direct(query, access, configuration, schema, options=options)
