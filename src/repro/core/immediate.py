"""Immediate relevance (IR) — Proposition 4.1.

An access ``(AcM, Bind)`` is *immediately relevant* for a Boolean query ``Q``
at a configuration ``Conf`` when some response to the access turns ``Q`` from
not-certain into certain.  The decision procedure follows the proof of
Proposition 4.1:

1. if ``Q`` is already certain at ``Conf``, the access is not IR;
2. otherwise guess a mapping ``h`` of the query variables into
   ``Adom(Conf)`` plus fresh constants; a subgoal is *witnessed* under ``h``
   when its ground image is already a fact of ``Conf``, or when it lies in the
   accessed relation and agrees with the binding on the input places (such a
   fact can be part of the response);
3. the access is IR iff some guess makes the (positive) Boolean structure of
   the query evaluate to true.

The same procedure is valid for dependent and independent access methods
because only a single access is considered.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.data import Configuration
from repro.exceptions import QueryError
from repro.queries import ConjunctiveQuery, PositiveQuery, is_certain
from repro.queries.atoms import Atom
from repro.queries.pq import AndNode, AtomNode, OrNode, PQNode
from repro.queries.terms import Variable
from repro.core.assignments import iter_witness_assignments
from repro.schema import Access

__all__ = ["is_immediately_relevant"]


def _atom_witnessed(
    atom: Atom,
    assignment: Dict[Variable, object],
    configuration: Configuration,
    access: Access,
) -> bool:
    """Whether the ground image of ``atom`` under ``assignment`` is witnessed."""
    values = atom.ground_values(assignment)
    if configuration.contains(atom.relation.name, values):
        return True
    if atom.relation.name != access.relation.name:
        return False
    return access.matches(values)


def _structure_holds(
    query, predicate: Callable[[Atom], bool]
) -> bool:
    """Evaluate the positive Boolean structure of a query under a truth oracle."""
    if isinstance(query, ConjunctiveQuery):
        return all(predicate(atom) for atom in query.atoms)

    def evaluate_node(node: PQNode) -> bool:
        if isinstance(node, AtomNode):
            return predicate(node.atom)
        if isinstance(node, AndNode):
            return all(evaluate_node(child) for child in node.children)
        if isinstance(node, OrNode):
            return any(evaluate_node(child) for child in node.children)
        raise QueryError(f"unknown node type {type(node)!r}")  # pragma: no cover

    return evaluate_node(query.root)


def is_immediately_relevant(
    query,
    access: Access,
    configuration: Configuration,
    *,
    assume_not_certain: bool = False,
    max_assignments: Optional[int] = None,
) -> bool:
    """Decide immediate relevance of ``access`` for a Boolean ``query``.

    Parameters
    ----------
    query:
        A Boolean conjunctive or positive query.
    access:
        The access whose immediate impact is being analysed.
    configuration:
        The current configuration.
    assume_not_certain:
        Skip the (coNP) certainty pre-check; useful when the caller already
        knows the query is not certain (this turns the problem NP-complete,
        as noted in Proposition 4.1).
    max_assignments:
        Optional cap on the number of guessed assignments (for benchmarks).
    """
    if not query.is_boolean:
        raise QueryError(
            "immediate relevance is defined for Boolean queries; reduce non-"
            "Boolean queries first (Proposition 2.2)"
        )
    if not assume_not_certain and is_certain(query, configuration):
        return False

    variable_domains = query.variable_domains()
    atom_feasible = None
    if isinstance(query, ConjunctiveQuery):
        # For a conjunction every subgoal must be witnessed, so branches with
        # an unwitnessable ground atom can be pruned inside the enumeration.
        # Positive queries have disjunctive structure and cannot prune
        # per-atom.
        atoms = query.atoms

        def atom_feasible(atom_index: int, values) -> bool:
            atom = atoms[atom_index]
            if configuration.contains(atom.relation.name, values):
                return True
            if atom.relation.name != access.relation.name:
                return False
            return access.matches(values)

    for assignment in iter_witness_assignments(
        query.atoms,
        variable_domains,
        configuration,
        access,
        fresh_per_domain=1,
        max_assignments=max_assignments,
        atom_feasible=atom_feasible,
    ):
        def witnessed(atom: Atom) -> bool:
            return _atom_witnessed(atom, assignment, configuration, access)

        if _structure_holds(query, witnessed):
            return True
    return False
