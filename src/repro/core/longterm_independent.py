"""Long-term relevance for independent access methods (Section 4).

Two procedures are provided:

* :func:`is_ltr_single_occurrence` — the polynomial component-based algorithm
  of Proposition 4.3, valid for conjunctive queries in which the accessed
  relation occurs exactly once;
* :func:`is_ltr_independent` — the general Σ₂ᵖ guess-and-check of
  Proposition 4.5, valid for conjunctive and positive queries with repeated
  relations.

Both assume every access method of the schema is independent (values can be
guessed freely), which is what makes a witness path prunable to the subgoals
of the query.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.data import Configuration, Fact
from repro.exceptions import QueryError
from repro.queries import (
    ConjunctiveQuery,
    PositiveQuery,
    evaluate_boolean,
    has_homomorphism,
    is_certain,
)
from repro.queries.atoms import Atom
from repro.queries.terms import Variable, is_variable
from repro.core.assignments import iter_witness_assignments
from repro.schema import Access, Schema

__all__ = ["is_ltr_single_occurrence", "is_ltr_independent"]


# --------------------------------------------------------------------------- #
# Proposition 4.3: single occurrence of the accessed relation
# --------------------------------------------------------------------------- #
def _unify_with_binding(atom: Atom, access: Access) -> Optional[Dict[Variable, object]]:
    """The (unique) substitution making ``atom`` agree with the binding.

    Returns ``None`` when a constant of the atom conflicts with the binding.
    """
    substitution: Dict[Variable, object] = {}
    for place, bound_value in access.binding_by_place.items():
        term = atom.terms[place]
        if is_variable(term):
            previous = substitution.get(term)
            if previous is not None and previous != bound_value:
                return None
            substitution[term] = bound_value
        elif term != bound_value:
            return None
    return substitution


def is_ltr_single_occurrence(
    query: ConjunctiveQuery,
    access: Access,
    configuration: Configuration,
) -> bool:
    """Proposition 4.3's polynomial case: the accessed relation occurs once.

    As in the paper, every relation of the query is assumed to carry at least
    one (independent) access method, so every subgoal other than the accessed
    one can be witnessed by later accesses with fresh values.  A witness path
    can then be normalised to: the probed access returning the image of the
    accessed subgoal (with the binding at the input places and fresh values
    elsewhere), followed by accesses returning the images of all other
    subgoals with maximally fresh values.  The access is long-term relevant
    iff the binding unifies with the accessed subgoal and the query does *not*
    hold on the truncation of that path — the configuration plus the frozen
    images of the other subgoals — which is a single homomorphism check.
    """
    if not isinstance(query, ConjunctiveQuery):
        raise QueryError("the single-occurrence algorithm only applies to CQs")
    if not query.is_boolean:
        raise QueryError("long-term relevance is defined for Boolean queries")
    relation_name = access.relation.name
    occurrences = query.atoms_over(relation_name)
    if len(occurrences) != 1:
        raise QueryError(
            f"relation {relation_name!r} occurs {len(occurrences)} times in the "
            f"query; the single-occurrence algorithm requires exactly one"
        )
    accessed_atom = occurrences[0]
    substitution = _unify_with_binding(accessed_atom, access)
    if substitution is None:
        return False

    # Build the truncation of the normalised witness path: the configuration
    # plus the frozen images of every subgoal except the accessed one, with
    # the binding substituted in (shared variables of the accessed subgoal are
    # forced to the binding values there).
    substituted = query.substitute(substitution)
    accessed_after = accessed_atom.substitute(substitution)
    other_atoms = [atom for atom in substituted.atoms if atom != accessed_after]
    if len(other_atoms) == len(substituted.atoms):
        # The substituted accessed atom coincides with another subgoal; drop
        # one occurrence explicitly.
        other_atoms = list(substituted.atoms)
        other_atoms.remove(accessed_after)

    from repro.queries.homomorphism import CanonicalInstance

    truncation = CanonicalInstance()
    for fact in configuration.facts():
        truncation.add(fact.relation, fact.values)
    frozen = {
        variable: f"_ltr_fresh_{variable.name}"
        for atom in other_atoms
        for variable in atom.variables
    }
    for atom in other_atoms:
        truncation.add(atom.relation.name, atom.ground_values(frozen))
    return not has_homomorphism(query.atoms, truncation)


# --------------------------------------------------------------------------- #
# Proposition 4.5: the general Σ₂ᵖ procedure
# --------------------------------------------------------------------------- #
def _disjuncts(query) -> Sequence[ConjunctiveQuery]:
    if isinstance(query, ConjunctiveQuery):
        return (query,)
    if isinstance(query, PositiveQuery):
        return query.to_ucq()
    raise QueryError(f"unsupported query type {type(query)!r}")


def is_ltr_independent(
    query,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    *,
    assume_not_certain: bool = False,
    max_assignments: Optional[int] = None,
) -> bool:
    """Decide long-term relevance when every access method is independent.

    The procedure enumerates, per disjunct ``D`` of the query, assignments of
    the variables of ``D`` into the active domain plus fresh constants; each
    subgoal is then witnessed by the configuration, by the first access
    (when compatible with the binding), or by a later access (when its
    relation has an access method).  The guess is accepted when ``D`` is fully
    witnessed and the *whole* query is still false on the configuration
    extended with only the later-access facts — i.e. on the truncated path.

    The classification is by priority (configuration, then first access, then
    later accesses); by monotonicity of positive queries this is without loss
    of generality.
    """
    if not query.is_boolean:
        raise QueryError("long-term relevance is defined for Boolean queries")
    if not assume_not_certain and is_certain(query, configuration):
        return False

    from repro.core.longterm_dependent import _witnessable_atom_checker

    for disjunct in _disjuncts(query):
        variables = disjunct.variables
        variable_domains = disjunct.variable_domains()
        fresh_count = max(1, len(variables))
        for assignment in iter_witness_assignments(
            disjunct.atoms,
            variable_domains,
            configuration,
            access,
            schema=schema,
            fresh_per_domain=fresh_count,
            max_assignments=max_assignments,
            atom_feasible=_witnessable_atom_checker(
                disjunct, configuration, schema, access
            ),
        ):
            first_access_facts: List[Fact] = []
            later_facts: List[Fact] = []
            witnessed = True
            for atom in disjunct.atoms:
                values = atom.ground_values(assignment)
                if configuration.contains(atom.relation.name, values):
                    continue
                if atom.relation.name == access.relation.name and access.matches(values):
                    first_access_facts.append(Fact(atom.relation.name, values))
                    continue
                if schema.has_access(atom.relation.name):
                    later_facts.append(Fact(atom.relation.name, values))
                    continue
                witnessed = False
                break
            if not witnessed or not first_access_facts:
                continue
            truncated = configuration.extended_with(later_facts)
            if not evaluate_boolean(query, truncated):
                return True
    return False
