"""Enumeration of candidate variable assignments for the decision procedures.

The procedures for immediate and long-term relevance (Propositions 4.1 and
4.5) guess mappings of the query variables into the active domain of the
configuration extended with a bounded number of fresh constants.  This module
centralises that enumeration:

* a variable of an *infinite* domain ranges over the active-domain values of
  its domain plus a pool of fresh values (one shared pool per domain, as many
  values as requested);
* a variable of an *enumerated* domain ranges over the full enumeration (any
  value may appear in an instance consistent with the configuration).
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.data import Configuration
from repro.chase.fresh import FreshConstants
from repro.queries.terms import Variable, is_variable
from repro.schema import AbstractDomain

__all__ = ["candidate_values", "iter_assignments", "iter_witness_assignments"]


def candidate_values(
    domain: AbstractDomain,
    configuration: Configuration,
    fresh_values: Sequence[object] = (),
) -> Tuple[object, ...]:
    """Candidate values a variable of ``domain`` may take in a witness."""
    if domain.is_enumerated:
        return tuple(sorted(domain.values or (), key=repr))
    adom_values = sorted(
        {value for value, dom in configuration.active_domain() if dom == domain},
        key=repr,
    )
    return tuple(adom_values) + tuple(fresh_values)


def iter_assignments(
    variables: Sequence[Variable],
    variable_domains: Mapping[Variable, AbstractDomain],
    configuration: Configuration,
    *,
    fresh_per_domain: int = 1,
    max_assignments: Optional[int] = None,
) -> Iterator[Dict[Variable, object]]:
    """Enumerate assignments of ``variables`` into active-domain and fresh values.

    ``fresh_per_domain`` controls how many distinct fresh values per abstract
    domain are made available; one suffices for immediate relevance (the
    identification argument of Proposition 4.1), while long-term relevance
    uses as many as there are variables of the domain so that distinct
    variables can take distinct fresh values.
    """
    fresh = FreshConstants(
        {value for value, _ in configuration.active_domain()}
    )
    fresh_pools: Dict[str, Tuple[object, ...]] = {}
    pools: List[Tuple[object, ...]] = []
    for variable in variables:
        domain = variable_domains[variable]
        if domain.name not in fresh_pools and not domain.is_enumerated:
            fresh_pools[domain.name] = fresh.several(domain, fresh_per_domain)
        pool = candidate_values(
            domain, configuration, fresh_pools.get(domain.name, ())
        )
        if not pool:
            return
        pools.append(pool)

    produced = 0
    for combination in itertools.product(*pools):
        yield dict(zip(variables, combination))
        produced += 1
        if max_assignments is not None and produced >= max_assignments:
            return


def iter_witness_assignments(
    atoms,
    variable_domains: Mapping[Variable, AbstractDomain],
    configuration: Configuration,
    access=None,
    *,
    schema=None,
    fresh_per_domain: int = 1,
    max_assignments: Optional[int] = None,
    prefer_fresh: bool = False,
    preferred_values: Sequence[object] = (),
    atom_feasible: Optional[Callable[[int, Tuple[object, ...]], bool]] = None,
) -> Iterator[Dict[Variable, object]]:
    """Enumerate assignments restricted to *useful* active-domain values.

    A witness (for immediate relevance, long-term relevance, or
    non-containment) only benefits from mapping a variable ``x`` to an
    active-domain value ``v`` when ``v`` can actually participate in a
    witnessed subgoal through ``x``: either ``v`` occurs in a configuration
    fact at one of the places where ``x`` occurs, or ``v`` is a binding value
    of the probed access at an input place where ``x`` occurs.  Any other
    active-domain value is interchangeable with a fresh constant, so the
    enumeration skips it.  Variables of enumerated domains still range over
    the whole enumeration.

    When ``schema`` is supplied (long-term relevance and containment, where
    witnesses may produce new facts), a variable occurring at an *input place*
    of some dependent access method additionally ranges over every
    active-domain value of its abstract domain: binding a dependent input to
    an already-known constant is how a witness avoids support chains.

    Two further reductions keep the enumeration small without losing any
    witness the flat cartesian product would find:

    * **canonical fresh values** — distinct fresh constants of one abstract
      domain are interchangeable (none occurs in the configuration, the
      binding, or the query), so assignments are enumerated up to renaming of
      the fresh pool: a variable may reuse a fresh value already taken by an
      earlier variable of its domain, or take the *next* unused one, never an
      arbitrary member of the pool.  Every witness of the full product maps to
      exactly one canonical representative, so verdicts are unchanged while
      the fresh branching drops from ``k^n`` to the number of set partitions;
    * **per-atom pruning** — when ``atom_feasible`` is supplied, every atom is
      grounded as soon as the last of its variables is assigned and the
      callback decides whether the branch can still contribute a witness
      (``atom_feasible(atom_index, ground_values)``); infeasible branches are
      cut before the remaining variables are expanded.

    This restriction keeps the guessing step polynomial in the configuration
    for a fixed query (the data-complexity claims of Propositions 4.1, 4.5,
    and 5.7) while preserving the witnesses the unrestricted enumeration
    would find.
    """
    atoms = tuple(atoms)
    variables: List[Variable] = []
    for atom in atoms:
        for variable in atom.variables:
            if variable not in variables:
                variables.append(variable)

    useful: Dict[Variable, set] = {variable: set() for variable in variables}
    binding_by_place = access.binding_by_place if access is not None else {}
    seed_constants = getattr(configuration, "seed_constants", frozenset())
    for atom in atoms:
        rows = configuration.tuples(atom.relation.name)
        for place, term in enumerate(atom.terms):
            if term not in useful:
                continue
            for row in rows:
                useful[term].add(row[place])
            if (
                access is not None
                and atom.relation.name == access.relation.name
                and place in binding_by_place
            ):
                useful[term].add(binding_by_place[place])
    # Seed constants (query constants, known identifiers) occur in no fact but
    # can still be required as dependent-access inputs in a witness.
    for variable in variables:
        domain = variable_domains[variable]
        for value, constant_domain in seed_constants:
            if constant_domain == domain:
                useful[variable].add(value)

    if schema is not None:
        adom = configuration.active_domain()
        input_place_variables = set()
        for atom in atoms:
            if not schema.has_relation(atom.relation.name):
                continue
            input_places = set()
            for method in schema.methods_for(atom.relation.name):
                if method.dependent:
                    input_places.update(method.input_places)
            for place in input_places:
                term = atom.terms[place]
                if term in useful:
                    input_place_variables.add(term)
        for variable in input_place_variables:
            domain = variable_domains[variable]
            for value, value_domain in adom:
                if value_domain == domain:
                    useful[variable].add(value)

    fresh = FreshConstants({value for value, _ in configuration.active_domain()})
    fresh_pools: Dict[str, Tuple[object, ...]] = {}
    known_pools: List[Optional[Tuple[object, ...]]] = []
    for variable in variables:
        domain = variable_domains[variable]
        if domain.is_enumerated:
            pool: Tuple[object, ...] = tuple(sorted(domain.values or (), key=repr))
            if preferred_values:
                front = tuple(v for v in preferred_values if v in pool)
                if front:
                    pool = front + tuple(v for v in pool if v not in front)
            if not pool:
                return
            known_pools.append(((), pool))
        else:
            if domain.name not in fresh_pools:
                fresh_pools[domain.name] = fresh.several(domain, fresh_per_domain)
            known = tuple(sorted(useful[variable], key=repr))
            # ``preferred_values`` (e.g. the output values of the probed
            # access) are hoisted in front of *everything*, including the
            # fresh choices interleaved below; the split is kept explicit so
            # ``prefer_fresh`` can order the remainder.
            preferred_front: Tuple[object, ...] = ()
            if preferred_values:
                preferred_front = tuple(v for v in preferred_values if v in known)
                if preferred_front:
                    known = tuple(v for v in known if v not in preferred_front)
            known_pools.append((preferred_front, known))

    # Compile each atom into slot descriptors so grounding a branch costs a
    # list walk instead of per-term hash lookups, and record at which depth
    # (index of its last variable in ``variables``) each atom becomes ground.
    variable_index = {variable: index for index, variable in enumerate(variables)}
    enumerated_flags = [variable_domains[v].is_enumerated for v in variables]
    domain_names = [variable_domains[v].name for v in variables]
    compiled: List[Tuple[Tuple[Tuple[int, object], ...], int]] = []
    for atom in atoms:
        slots = tuple(
            (variable_index[term], None) if is_variable(term) else (-1, term)
            for term in atom.terms
        )
        last_depth = max(
            (variable_index[term] for term in atom.terms if is_variable(term)),
            default=-1,
        )
        compiled.append((slots, last_depth))

    def ground(slots: Tuple[Tuple[int, object], ...], chosen: List[object]):
        return tuple(
            chosen[index] if index >= 0 else constant for index, constant in slots
        )

    if atom_feasible is not None:
        for atom_index, (slots, last_depth) in enumerate(compiled):
            if last_depth == -1 and not atom_feasible(atom_index, ground(slots, [])):
                return
    atoms_at_depth: Dict[int, List[int]] = {}
    if atom_feasible is not None:
        for atom_index, (_slots, last_depth) in enumerate(compiled):
            if last_depth >= 0:
                atoms_at_depth.setdefault(last_depth, []).append(atom_index)

    total = len(variables)
    chosen: List[object] = [None] * total
    used_fresh: Dict[str, int] = {name: 0 for name in fresh_pools}
    produced = 0

    def expand(depth: int) -> Iterator[Dict[Variable, object]]:
        nonlocal produced
        if depth == total:
            yield dict(zip(variables, chosen))
            produced += 1
            return
        preferred_front, known = known_pools[depth]
        if enumerated_flags[depth]:
            choices: Sequence[Tuple[object, bool]] = [
                (value, False) for value in known
            ]
        else:
            name = domain_names[depth]
            pool = fresh_pools[name]
            used = used_fresh[name]
            # Canonical fresh choices: every fresh value an earlier variable
            # already uses, plus at most one yet-unused value.
            fresh_choices = [(value, False) for value in pool[:used]]
            if used < len(pool):
                fresh_choices.append((pool[used], True))
            front_choices = [(value, False) for value in preferred_front]
            known_choices = [(value, False) for value in known]
            # ``prefer_fresh`` flips the enumeration order so witnesses built
            # from facts *outside* the configuration are tried first; the
            # preferred values stay in front either way.  With
            # ``max_assignments=None`` the reordering cannot affect the
            # verdict (the same set is enumerated); under a finite budget it
            # changes which prefix is searched, trading one incompleteness
            # frontier for another — soundness is unaffected either way.
            if prefer_fresh:
                choices = front_choices + fresh_choices + known_choices
            else:
                choices = front_choices + known_choices + fresh_choices
        if not choices:
            return
        completed = atoms_at_depth.get(depth) if atom_feasible is not None else None
        for value, is_new_fresh in choices:
            if max_assignments is not None and produced >= max_assignments:
                return
            chosen[depth] = value
            if is_new_fresh:
                used_fresh[domain_names[depth]] += 1
            feasible = True
            if completed:
                for atom_index in completed:
                    slots, _last = compiled[atom_index]
                    if not atom_feasible(atom_index, ground(slots, chosen)):
                        feasible = False
                        break
            if feasible:
                yield from expand(depth + 1)
            if is_new_fresh:
                used_fresh[domain_names[depth]] -= 1

    yield from expand(0)
