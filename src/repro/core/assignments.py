"""Enumeration of candidate variable assignments for the decision procedures.

The procedures for immediate and long-term relevance (Propositions 4.1 and
4.5) guess mappings of the query variables into the active domain of the
configuration extended with a bounded number of fresh constants.  This module
centralises that enumeration:

* a variable of an *infinite* domain ranges over the active-domain values of
  its domain plus a pool of fresh values (one shared pool per domain, as many
  values as requested);
* a variable of an *enumerated* domain ranges over the full enumeration (any
  value may appear in an instance consistent with the configuration).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.data import Configuration
from repro.chase.fresh import FreshConstants
from repro.queries.terms import Variable
from repro.schema import AbstractDomain

__all__ = ["candidate_values", "iter_assignments", "iter_witness_assignments"]


def candidate_values(
    domain: AbstractDomain,
    configuration: Configuration,
    fresh_values: Sequence[object] = (),
) -> Tuple[object, ...]:
    """Candidate values a variable of ``domain`` may take in a witness."""
    if domain.is_enumerated:
        return tuple(sorted(domain.values or (), key=repr))
    adom_values = sorted(
        {value for value, dom in configuration.active_domain() if dom == domain},
        key=repr,
    )
    return tuple(adom_values) + tuple(fresh_values)


def iter_assignments(
    variables: Sequence[Variable],
    variable_domains: Mapping[Variable, AbstractDomain],
    configuration: Configuration,
    *,
    fresh_per_domain: int = 1,
    max_assignments: Optional[int] = None,
) -> Iterator[Dict[Variable, object]]:
    """Enumerate assignments of ``variables`` into active-domain and fresh values.

    ``fresh_per_domain`` controls how many distinct fresh values per abstract
    domain are made available; one suffices for immediate relevance (the
    identification argument of Proposition 4.1), while long-term relevance
    uses as many as there are variables of the domain so that distinct
    variables can take distinct fresh values.
    """
    fresh = FreshConstants(
        {value for value, _ in configuration.active_domain()}
    )
    fresh_pools: Dict[str, Tuple[object, ...]] = {}
    pools: List[Tuple[object, ...]] = []
    for variable in variables:
        domain = variable_domains[variable]
        if domain.name not in fresh_pools and not domain.is_enumerated:
            fresh_pools[domain.name] = fresh.several(domain, fresh_per_domain)
        pool = candidate_values(
            domain, configuration, fresh_pools.get(domain.name, ())
        )
        if not pool:
            return
        pools.append(pool)

    produced = 0
    for combination in itertools.product(*pools):
        yield dict(zip(variables, combination))
        produced += 1
        if max_assignments is not None and produced >= max_assignments:
            return


def iter_witness_assignments(
    atoms,
    variable_domains: Mapping[Variable, AbstractDomain],
    configuration: Configuration,
    access=None,
    *,
    schema=None,
    fresh_per_domain: int = 1,
    max_assignments: Optional[int] = None,
    prefer_fresh: bool = False,
    preferred_values: Sequence[object] = (),
) -> Iterator[Dict[Variable, object]]:
    """Enumerate assignments restricted to *useful* active-domain values.

    A witness (for immediate relevance, long-term relevance, or
    non-containment) only benefits from mapping a variable ``x`` to an
    active-domain value ``v`` when ``v`` can actually participate in a
    witnessed subgoal through ``x``: either ``v`` occurs in a configuration
    fact at one of the places where ``x`` occurs, or ``v`` is a binding value
    of the probed access at an input place where ``x`` occurs.  Any other
    active-domain value is interchangeable with a fresh constant, so the
    enumeration skips it.  Variables of enumerated domains still range over
    the whole enumeration.

    When ``schema`` is supplied (long-term relevance and containment, where
    witnesses may produce new facts), a variable occurring at an *input place*
    of some dependent access method additionally ranges over every
    active-domain value of its abstract domain: binding a dependent input to
    an already-known constant is how a witness avoids support chains.

    This restriction keeps the guessing step polynomial in the configuration
    for a fixed query (the data-complexity claims of Propositions 4.1, 4.5,
    and 5.7) while preserving the witnesses the unrestricted enumeration
    would find.
    """
    variables: List[Variable] = []
    for atom in atoms:
        for variable in atom.variables:
            if variable not in variables:
                variables.append(variable)

    useful: Dict[Variable, set] = {variable: set() for variable in variables}
    binding_by_place = access.binding_by_place if access is not None else {}
    seed_constants = getattr(configuration, "seed_constants", frozenset())
    for atom in atoms:
        rows = configuration.tuples(atom.relation.name)
        for place, term in enumerate(atom.terms):
            if term not in useful:
                continue
            for row in rows:
                useful[term].add(row[place])
            if (
                access is not None
                and atom.relation.name == access.relation.name
                and place in binding_by_place
            ):
                useful[term].add(binding_by_place[place])
    # Seed constants (query constants, known identifiers) occur in no fact but
    # can still be required as dependent-access inputs in a witness.
    for variable in variables:
        domain = variable_domains[variable]
        for value, constant_domain in seed_constants:
            if constant_domain == domain:
                useful[variable].add(value)

    if schema is not None:
        adom = configuration.active_domain()
        input_place_variables = set()
        for atom in atoms:
            if not schema.has_relation(atom.relation.name):
                continue
            input_places = set()
            for method in schema.methods_for(atom.relation.name):
                if method.dependent:
                    input_places.update(method.input_places)
            for place in input_places:
                term = atom.terms[place]
                if term in useful:
                    input_place_variables.add(term)
        for variable in input_place_variables:
            domain = variable_domains[variable]
            for value, value_domain in adom:
                if value_domain == domain:
                    useful[variable].add(value)

    fresh = FreshConstants({value for value, _ in configuration.active_domain()})
    fresh_pools: Dict[str, Tuple[object, ...]] = {}
    pools = []
    for variable in variables:
        domain = variable_domains[variable]
        if domain.is_enumerated:
            pool: Tuple[object, ...] = tuple(sorted(domain.values or (), key=repr))
        else:
            if domain.name not in fresh_pools:
                fresh_pools[domain.name] = fresh.several(domain, fresh_per_domain)
            known = tuple(sorted(useful[variable], key=repr))
            # ``prefer_fresh`` flips the enumeration order so witnesses built
            # from facts *outside* the configuration are tried first, and
            # ``preferred_values`` (e.g. the output values of the probed
            # access) are hoisted to the front of the pool.  With
            # ``max_assignments=None`` the reordering cannot affect the
            # verdict (the same set is enumerated); under a finite budget it
            # changes which prefix is searched, trading one incompleteness
            # frontier for another — soundness is unaffected either way.
            if prefer_fresh:
                pool = fresh_pools[domain.name] + known
            else:
                pool = known + fresh_pools[domain.name]
            if preferred_values:
                front = tuple(v for v in preferred_values if v in pool)
                if front:
                    pool = front + tuple(v for v in pool if v not in front)
        if not pool:
            return
        pools.append(pool)

    produced = 0
    for combination in itertools.product(*pools):
        yield dict(zip(variables, combination))
        produced += 1
        if max_assignments is not None and produced >= max_assignments:
            return
