"""The paper's primary contribution: relevance and containment procedures."""

from repro.core.containment import (
    ContainmentOptions,
    ContainmentWitness,
    decide_cm_containment,
    decide_containment,
    find_non_containment_witness,
)
from repro.core.immediate import is_immediately_relevant
from repro.core.longterm_dependent import (
    find_ltr_witness_steps,
    is_ltr_direct,
    is_ltr_via_containment_cq,
    is_ltr_via_containment_pq,
)
from repro.core.longterm_independent import (
    is_ltr_independent,
    is_ltr_single_occurrence,
)
from repro.core.reductions import (
    ContainmentToLTR,
    LTRToContainment,
    containment_to_ltr,
    ltr_to_containment,
)
from repro.core.relevance import (
    is_long_term_relevant,
    long_term_relevance_with_witness,
)
from repro.core.small_arity import check_small_arity_preconditions, is_ltr_small_arity

__all__ = [
    "is_immediately_relevant",
    "is_long_term_relevant",
    "long_term_relevance_with_witness",
    "find_ltr_witness_steps",
    "is_ltr_independent",
    "is_ltr_single_occurrence",
    "is_ltr_direct",
    "is_ltr_via_containment_cq",
    "is_ltr_via_containment_pq",
    "is_ltr_small_arity",
    "check_small_arity_preconditions",
    "ContainmentOptions",
    "ContainmentWitness",
    "decide_containment",
    "decide_cm_containment",
    "find_non_containment_witness",
    "containment_to_ltr",
    "ltr_to_containment",
    "ContainmentToLTR",
    "LTRToContainment",
]
