"""Executable versions of the reductions of Section 3.

* Proposition 3.3 — containment under access limitations reduces to the
  complement of long-term relevance: :func:`containment_to_ltr` builds, from
  ``(Q1, Q2, Conf)``, a query ``Q' = ((∃x A(x)) ∨ Q2) ∧ Q1`` over a schema
  extended with a fresh relation ``A`` carrying a Boolean access, such that
  ``Q1 ⊑ Q2`` iff the access ``A(c)?`` is *not* LTR for ``Q'``.
* Proposition 3.4 — long-term relevance of a Boolean access reduces to the
  complement of containment: :func:`ltr_to_containment` builds, from
  ``(Q, access, Conf)``, a rewriting ``Q'`` using an inaccessible ``IsBind``
  relation such that the access is LTR for ``Q`` iff ``Q' ̸⊑ Q``.

Both reductions are used by the dependent-access LTR procedures and are
exercised round-trip in the test suite and in
``benchmarks/bench_reductions.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.data import Configuration
from repro.exceptions import QueryError
from repro.queries import ConjunctiveQuery, PositiveQuery
from repro.queries.atoms import Atom
from repro.queries.pq import AndNode, AtomNode, OrNode, PQNode
from repro.queries.terms import Variable
from repro.schema import AbstractDomain, Access, AccessMethod, Attribute, Relation, Schema

__all__ = [
    "ContainmentToLTR",
    "LTRToContainment",
    "containment_to_ltr",
    "ltr_to_containment",
]


def _as_pq(query) -> PositiveQuery:
    if isinstance(query, PositiveQuery):
        return query
    if isinstance(query, ConjunctiveQuery):
        return PositiveQuery.from_cq(query)
    raise QueryError(f"unsupported query type {type(query)!r}")


@dataclass(frozen=True)
class ContainmentToLTR:
    """The output of the Proposition 3.3 reduction."""

    schema: Schema
    configuration: Configuration
    query: PositiveQuery
    access: Access

    def ltr_answer_means_non_containment(self) -> bool:
        """Documentation helper: ``True`` — LTR of the access ⇔ non-containment."""
        return True


def containment_to_ltr(
    query1,
    query2,
    configuration: Configuration,
    schema: Schema,
    *,
    witness_relation_name: str = "A__reduction",
    witness_constant: object = "c__reduction",
) -> ContainmentToLTR:
    """Proposition 3.3: reduce ``Q1 ⊑ Q2`` to non-LTR of a fresh Boolean access.

    The fresh relation ``A`` receives an *independent* Boolean access method so
    that the probe access ``A(c)?`` is always well-formed — the proof only
    needs the access to be performable and initially unanswered.
    """
    pq1 = _as_pq(query1)
    pq2 = _as_pq(query2)
    if not pq1.is_boolean or not pq2.is_boolean:
        raise QueryError("the Proposition 3.3 reduction applies to Boolean queries")
    if schema.has_relation(witness_relation_name):
        raise QueryError(
            f"relation {witness_relation_name!r} already exists in the schema"
        )

    witness_domain = AbstractDomain(f"{witness_relation_name}__domain")
    witness_relation = Relation(
        witness_relation_name, (Attribute("value", witness_domain),)
    )
    witness_method = AccessMethod(
        f"{witness_relation_name}__access",
        witness_relation,
        (0,),
        dependent=False,
    )
    extended_schema = schema.extend([witness_relation], [witness_method])

    extended_configuration = Configuration(extended_schema)
    for fact in configuration.facts():
        extended_configuration.add_fact(fact)
    for value, domain in configuration.seed_constants:
        extended_configuration.add_constant(value, domain)

    witness_variable = Variable("x__reduction")
    witness_atom = Atom(witness_relation, (witness_variable,))
    rewritten = PositiveQuery(
        AndNode(
            (
                OrNode((AtomNode(witness_atom), pq2.root)),
                pq1.root,
            )
        ),
        (),
        f"{pq1.name}_prop33",
    )
    probe = Access(witness_method, (witness_constant,))
    return ContainmentToLTR(extended_schema, extended_configuration, rewritten, probe)


@dataclass(frozen=True)
class LTRToContainment:
    """The output of the Proposition 3.4 reduction."""

    schema: Schema
    configuration: Configuration
    contained_query: PositiveQuery
    containing_query: PositiveQuery

    def non_containment_means_ltr(self) -> bool:
        """Documentation helper: ``True`` — non-containment ⇔ LTR of the access."""
        return True


def _rewrite_with_isbind(
    node: PQNode, access: Access, isbind_relation: Relation
) -> PQNode:
    if isinstance(node, AtomNode):
        atom = node.atom
        if atom.relation.name != access.relation.name:
            return node
        input_terms = tuple(
            atom.terms[place] for place in access.method.input_places
        )
        isbind_atom = Atom(isbind_relation, input_terms)
        return OrNode((node, AtomNode(isbind_atom)))
    if isinstance(node, AndNode):
        return AndNode(
            tuple(
                _rewrite_with_isbind(child, access, isbind_relation)
                for child in node.children
            )
        )
    if isinstance(node, OrNode):
        return OrNode(
            tuple(
                _rewrite_with_isbind(child, access, isbind_relation)
                for child in node.children
            )
        )
    raise QueryError(f"unknown node type {type(node)!r}")  # pragma: no cover


def ltr_to_containment(
    query,
    access: Access,
    configuration: Configuration,
    schema: Schema,
    *,
    isbind_relation_name: str = "IsBind__reduction",
) -> LTRToContainment:
    """Proposition 3.4: reduce LTR of a Boolean access to non-containment.

    Adds an inaccessible relation ``IsBind`` holding exactly the binding,
    rewrites every occurrence of the accessed relation ``R(i, o)`` into
    ``R(i, o) ∨ IsBind(i)``, and returns the pair of queries whose
    non-containment (starting from the extended configuration) is equivalent
    to long-term relevance of the access.
    """
    pq = _as_pq(query)
    if not pq.is_boolean:
        raise QueryError("the Proposition 3.4 reduction applies to Boolean queries")
    if schema.has_relation(isbind_relation_name):
        raise QueryError(
            f"relation {isbind_relation_name!r} already exists in the schema"
        )

    method = access.method
    attributes = tuple(
        Attribute(f"b{i}", method.relation.domain_of(place))
        for i, place in enumerate(method.input_places)
    )
    isbind_relation = Relation(isbind_relation_name, attributes)
    extended_schema = schema.extend([isbind_relation], [])

    extended_configuration = Configuration(extended_schema)
    for fact in configuration.facts():
        extended_configuration.add_fact(fact)
    for value, domain in configuration.seed_constants:
        extended_configuration.add_constant(value, domain)
    extended_configuration.add(isbind_relation_name, access.binding)

    rewritten_root = _rewrite_with_isbind(pq.root, access, isbind_relation)
    contained = PositiveQuery(rewritten_root, (), f"{pq.name}_prop34")
    containing = PositiveQuery(pq.root, (), pq.name)
    return LTRToContainment(
        extended_schema, extended_configuration, contained, containing
    )
