"""Semi-naive bottom-up evaluation of Datalog programs.

The engine works on a *database*: a mapping from predicate names to sets of
ground tuples.  Extensional facts are supplied by the caller; evaluation
returns the least fixpoint extending them with every derivable intensional
fact.  The implementation is the classic semi-naive loop: each iteration only
joins rule bodies against at least one *delta* (newly derived) literal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.datalog.program import Literal, Program, Rule
from repro.queries.terms import Variable, is_variable

__all__ = ["Database", "evaluate_program", "query_database"]

Database = Dict[str, Set[Tuple[object, ...]]]


def _match_literal(
    literal: Literal,
    database: Mapping[str, Set[Tuple[object, ...]]],
    assignment: Dict[Variable, object],
    restriction: Optional[Set[Tuple[object, ...]]] = None,
) -> Iterator[Dict[Variable, object]]:
    """Extend ``assignment`` so that ``literal`` matches a database fact.

    ``restriction`` (when given) limits matching to a subset of the
    predicate's tuples — this is how the delta relation of the semi-naive
    algorithm is plugged in.
    """
    rows = restriction if restriction is not None else database.get(literal.predicate, set())
    # Copy before iterating: callers add newly derived facts to the same sets
    # while derivations are being enumerated.
    for row in tuple(rows):
        if len(row) != literal.arity:
            continue
        extension = dict(assignment)
        matched = True
        for term, value in zip(literal.terms, row):
            if is_variable(term):
                bound = extension.get(term, _UNBOUND)
                if bound is _UNBOUND:
                    extension[term] = value
                elif bound != value:
                    matched = False
                    break
            elif term != value:
                matched = False
                break
        if matched:
            yield extension


_UNBOUND = object()


def _rule_derivations(
    rule: Rule,
    database: Mapping[str, Set[Tuple[object, ...]]],
    delta: Optional[Mapping[str, Set[Tuple[object, ...]]]] = None,
) -> Iterator[Tuple[object, ...]]:
    """Yield head tuples derivable by ``rule``.

    When ``delta`` is given, only derivations using at least one delta fact
    are produced (semi-naive restriction); this is implemented by requiring,
    for some body position ``i``, that literal ``i`` matches within the delta
    while earlier literals match the full database.
    """
    if rule.is_fact:
        yield rule.head.ground_values({})
        return

    positions = range(len(rule.body)) if delta is not None else [None]
    for delta_position in positions:
        def backtrack(index: int, assignment: Dict[Variable, object]) -> Iterator[Dict[Variable, object]]:
            if index == len(rule.body):
                yield assignment
                return
            literal = rule.body[index]
            restriction = None
            if delta is not None and index == delta_position:
                restriction = delta.get(literal.predicate, set())
            yield from (
                result
                for extension in _match_literal(literal, database, assignment, restriction)
                for result in backtrack(index + 1, extension)
            )

        for assignment in backtrack(0, {}):
            yield rule.head.ground_values(assignment)


def evaluate_program(
    program: Program,
    edb: Mapping[str, Iterable[Tuple[object, ...]]],
) -> Database:
    """Compute the least fixpoint of ``program`` over the extensional facts.

    Returns a new database containing the extensional facts plus every
    derived intensional fact.
    """
    database: Database = {
        predicate: {tuple(row) for row in rows} for predicate, rows in edb.items()
    }

    # Naive first round (facts and rules applied once over the EDB).
    delta: Dict[str, Set[Tuple[object, ...]]] = {}
    for rule in program:
        for derived in _rule_derivations(rule, database):
            existing = database.setdefault(rule.head.predicate, set())
            if derived not in existing:
                existing.add(derived)
                delta.setdefault(rule.head.predicate, set()).add(derived)

    # Semi-naive iterations.
    while delta:
        new_delta: Dict[str, Set[Tuple[object, ...]]] = {}
        for rule in program:
            if rule.is_fact:
                continue
            body_predicates = {literal.predicate for literal in rule.body}
            if not body_predicates & set(delta):
                continue
            for derived in _rule_derivations(rule, database, delta):
                existing = database.setdefault(rule.head.predicate, set())
                if derived not in existing:
                    existing.add(derived)
                    new_delta.setdefault(rule.head.predicate, set()).add(derived)
        delta = new_delta
    return database


def query_database(
    database: Mapping[str, Set[Tuple[object, ...]]],
    goal: Literal,
) -> FrozenSet[Tuple[object, ...]]:
    """Answers to a single-literal goal over an evaluated database.

    Returns the projections of matching facts on the goal's variables, in
    first-occurrence order of the variables.
    """
    answers: Set[Tuple[object, ...]] = set()
    goal_variables = goal.variables
    for assignment in _match_literal(goal, database, {}):
        answers.add(tuple(assignment[variable] for variable in goal_variables))
    return frozenset(answers)
